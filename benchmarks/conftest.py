"""Benchmark harness configuration.

Every benchmark regenerates the numeric series behind one paper table or
figure via :mod:`repro.exps` and times it with pytest-benchmark.  The
experiment scale comes from the environment:

* default          -> ``tiny``  (seconds per artifact, shape-preserving)
* ``REPRO_SCALE=small``  -> minutes per artifact
* ``REPRO_FULL_SCALE=1`` -> the paper's full configuration (hours)

Each run prints the regenerated table (run pytest with ``-s`` to see it)
and writes it as CSV into ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exps import EXPERIMENTS
from repro.exps.common import current_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return current_scale(default="tiny")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_experiment(benchmark, name: str, scale: str, results_dir: Path):
    """Time one experiment once and persist/print its table."""
    runner = EXPERIMENTS[name]
    result = benchmark.pedantic(runner, args=(scale,), rounds=1, iterations=1)
    (results_dir / f"{name}_{scale}.csv").write_text(result.to_csv() + "\n")
    print()
    print(result)
    return result
