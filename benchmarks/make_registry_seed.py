#!/usr/bin/env python3
"""Generate a synthetic bench-record registry for the regression sentinel.

``repro regress`` needs history to chew on; real history takes dozens of
``repro bench`` invocations to accumulate.  This script fabricates a
deterministic registry of ``kind="bench"`` run records — suite
throughput, host-phase ledgers, memory peaks and digest chains with
realistic ±1.5% noise — optionally with a step regression injected at a
chosen run:

    PYTHONPATH=src python benchmarks/make_registry_seed.py \
        --out runs/registry-seed                      # noise-only fixture
    PYTHONPATH=src python benchmarks/make_registry_seed.py \
        --out /tmp/stepped --step-at 20 --step-frac 0.2 --culprit rc_va

A stepped registry models a routing-layer slowdown: from ``--step-at``
onward every case's cycles/sec drops by ``--step-frac`` and the extra
host time is attributed to ``--culprit``, so the sentinel should flag a
changepoint near that run *and* name the culprit phase.  The committed
``runs/registry-seed/`` fixture is the noise-only variant; CI's
sentinel-smoke job regenerates both flavours from this script.

Records are written through :class:`repro.telemetry.RunStore` /
:class:`RunRecord`, so the fixture always matches the live schema.
Everything is seeded — same arguments, byte-identical registry.
"""

from __future__ import annotations

import argparse
import random
from datetime import datetime, timedelta, timezone
from pathlib import Path

from repro.telemetry.hostprof import ALL_PHASES
from repro.telemetry.runstore import RunRecord, RunStore

#: Per-case baseline throughput (cycles/sec) and peak heap (bytes) for the
#: three `repro bench` cases; loosely shaped like tiny-scale numbers.
CASE_BASELINES: dict[str, tuple[float, float]] = {
    "fig11_hetero_phy": (52_000.0, 230_000.0),
    "fig14_hetero_channel": (61_000.0, 210_000.0),
    "table3_parallel_mesh": (48_000.0, 260_000.0),
}

#: Baseline host-phase time split (fractions of total ns/cycle); sa_st
#: dominates like the real allocator does.
PHASE_SPLIT: dict[str, float] = {
    "inject": 0.08,
    "rc_va": 0.14,
    "sa_st": 0.30,
    "link": 0.10,
    "phy_rx": 0.07,
    "phy_tx": 0.07,
    "telemetry": 0.05,
    "stats": 0.04,
    "dispatch": 0.15,
}

BASE_STAMP = datetime(2026, 1, 1, 0, 0, 0, tzinfo=timezone.utc)
NOISE_FRAC = 0.015
CONFIG_HASH = "seedcfg000001"


def _host_block(total_ns_per_cycle: float, extra_ns: float, culprit: str,
                rng: random.Random) -> dict[str, object]:
    """A ``HostTimeLedger.record_summary``-shaped block for one case."""
    ns = {
        phase: total_ns_per_cycle * frac * rng.uniform(1 - NOISE_FRAC, 1 + NOISE_FRAC)
        for phase, frac in PHASE_SPLIT.items()
    }
    if extra_ns > 0.0:
        ns[culprit] = ns.get(culprit, 0.0) + extra_ns
    total = sum(ns.values())
    return {
        "stride": 64,
        "timed_cycles": 2000,
        "total_cycles": 2000,
        "conservation": 1.0,
        "ns_per_cycle": {phase: round(value, 1) for phase, value in ns.items()},
        "shares": {phase: round(value / total, 6) for phase, value in ns.items()},
    }


def _mem_block(peak_base: float, rng: random.Random) -> dict[str, object]:
    peak = int(peak_base * rng.uniform(1 - NOISE_FRAC, 1 + NOISE_FRAC))
    return {
        "schema_version": 1,
        "top_n": 10,
        "peak_bytes": peak,
        "current_bytes": int(peak * 0.4),
        "ru_maxrss_bytes": 48 * 1024 * 1024,
        "phases": {"rc_va": int(peak * 0.3), "sa_st": int(peak * 0.5),
                   "other": int(peak * 0.2)},
    }


def make_records(
    *,
    runs: int = 30,
    seed: int = 1,
    step_at: int | None = None,
    step_frac: float = 0.2,
    culprit: str = "rc_va",
) -> list[RunRecord]:
    """Build the synthetic bench records (oldest first), without writing."""
    if culprit not in ALL_PHASES:
        raise ValueError(f"culprit {culprit!r} is not a host phase {ALL_PHASES}")
    if step_at is not None and not 0 <= step_at < runs:
        raise ValueError(f"--step-at {step_at} outside [0, {runs})")
    rng = random.Random(seed)
    records: list[RunRecord] = []
    for i in range(runs):
        stepped = step_at is not None and i >= step_at
        bench: dict[str, object] = {}
        for case, (cps_base, mem_base) in CASE_BASELINES.items():
            cps = cps_base * rng.uniform(1 - NOISE_FRAC, 1 + NOISE_FRAC)
            total_ns = 1e9 / cps
            extra_ns = 0.0
            if stepped:
                # A step-frac throughput drop is the same run taking
                # 1/(1-frac) the host time; pin the surplus on the culprit
                # phase so its share visibly grows.
                slowed_ns = total_ns / (1.0 - step_frac)
                extra_ns = slowed_ns - total_ns
                cps *= 1.0 - step_frac
                total_ns = slowed_ns
            bench[case] = {
                "cps_median": round(cps, 1),
                "host": _host_block(total_ns - extra_ns, extra_ns, culprit, rng),
                "mem": _mem_block(mem_base, rng),
                "digest_final": f"{case}-chain-0001",
            }
        records.append(
            RunRecord(
                run_id=f"seed-{i:03d}",
                created=(BASE_STAMP + timedelta(minutes=i)).isoformat(
                    timespec="seconds"
                ),
                kind="bench",
                label="bench",
                scale="tiny",
                seed=seed,
                config_hash=CONFIG_HASH,
                git_rev=f"seed{i:04x}",
                bench=bench,
            )
        )
    return records


def write_registry(out_dir: str | Path, records: list[RunRecord]) -> Path:
    store = RunStore(out_dir)
    if store.path.exists():
        store.path.unlink()
    for record in records:
        store.append(record)
    return store.path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="runs/registry-seed",
                        help="registry directory to (re)write runs.jsonl into")
    parser.add_argument("--runs", type=int, default=30, help="number of suite runs")
    parser.add_argument("--seed", type=int, default=1, help="RNG seed")
    parser.add_argument("--step-at", type=int, default=None, metavar="RUN",
                        help="inject a step regression starting at this run index")
    parser.add_argument("--step-frac", type=float, default=0.2,
                        help="fractional cycles/sec drop of the step (default 0.2)")
    parser.add_argument("--culprit", default="rc_va", choices=sorted(ALL_PHASES),
                        help="host phase that absorbs the stepped time")
    args = parser.parse_args(argv)
    records = make_records(
        runs=args.runs,
        seed=args.seed,
        step_at=args.step_at,
        step_frac=args.step_frac,
        culprit=args.culprit,
    )
    path = write_registry(args.out, records)
    flavour = (
        f"step at run {args.step_at} ({args.step_frac:.0%}, culprit {args.culprit})"
        if args.step_at is not None
        else "noise-only"
    )
    print(f"wrote {len(records)} bench records to {path} [{flavour}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
