"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation varies exactly one mechanism of the hetero-IF design and
regenerates a small comparison table:

* ROB sizing — Eq (1) is a tight, sufficient bound.
* Parallel-PHY bypass — what queue-jumping buys priority traffic.
* Dispatch policy — performance vs balanced vs energy-efficient trade-off.
* Balanced-policy threshold — the Sec 7.3 half-full rule vs alternatives.
* Eq (5) subnetwork selection — vs always-mesh / always-cube.
* Channel adaptivity — Algorithm 1's adaptive channels vs escape-only.
"""

from __future__ import annotations

import math

from repro.core.phy import HeteroPhyLink
from repro.core.rob import rob_capacity
from repro.core.scheduling import BalancedPolicy
from repro.noc.flit import Packet
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.experiment import run_synthetic
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern

GRID = ChipletGrid(2, 2, 4, 4)
CYCLES = {"tiny": 2_000, "small": 6_000, "paper": 30_000}


def _config(scale: str) -> SimConfig:
    return SimConfig().scaled(CYCLES[scale])


def _run_with(spec, rate, *, policy=None, dispatch_factory=None, routing=None, seed=5):
    config = spec.config
    stats = Stats(measure_from=config.warmup_cycles)
    network = build_network(
        spec,
        stats,
        policy=policy,
        dispatch_policy_factory=dispatch_factory,
        routing=routing,
    )
    pattern = make_pattern("uniform", spec.grid.n_nodes)
    workload = SyntheticWorkload(
        pattern, spec.grid.n_nodes, rate, config.packet_length, until=config.sim_cycles, seed=seed
    )
    Engine(network, workload, stats).run(config.sim_cycles)
    return network, stats


def test_ablation_rob_sizing(benchmark, scale):
    """Eq (1) bounds the observed ROB occupancy; the peak approaches it."""

    def run():
        config = _config(scale)
        spec = build_system("hetero_phy_torus", GRID, config)
        network, stats = _run_with(spec, rate=0.35, policy="performance")
        bound = rob_capacity(
            config.parallel_bandwidth, config.serial_delay, config.parallel_delay
        )
        peak = max(
            link.rob.max_occupancy
            for link in network.links
            if isinstance(link, HeteroPhyLink)
        )
        return peak, bound, stats.avg_latency

    peak, bound, latency = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nROB peak occupancy {peak} / Eq(1) bound {bound} (lat {latency:.1f})")
    assert 0 < peak <= bound
    assert peak >= bound * 0.2  # the bound is not wildly oversized


def test_ablation_bypass(benchmark, scale):
    """Bypass reduces priority-packet latency under congestion."""

    class NoBypass(BalancedPolicy):
        bypass_enabled = False

    def run():
        results = {}
        for label, factory in (
            ("bypass", lambda: BalancedPolicy(threshold=16)),
            ("no-bypass", lambda: NoBypass(threshold=16)),
        ):
            config = _config(scale).halved()  # pressure on the parallel PHY
            spec = build_system("hetero_phy_torus", GRID, config)
            stats = Stats(measure_from=config.warmup_cycles)
            network = build_network(spec, stats, dispatch_policy_factory=factory)
            urgent_latencies: list[int] = []
            original = stats.note_packet_delivered

            def tap(packet, now, original=original, sink=urgent_latencies, stats=stats):
                if packet.priority > 0 and packet.create_cycle >= stats.measure_from:
                    sink.append(now - packet.create_cycle)
                original(packet, now)

            stats.note_packet_delivered = tap

            class Mixed:
                def __init__(self):
                    self.bulk = SyntheticWorkload(
                        make_pattern("uniform", GRID.n_nodes),
                        GRID.n_nodes,
                        0.3,
                        config.packet_length,
                        until=config.sim_cycles,
                        seed=3,
                    )
                    self.sync = SyntheticWorkload(
                        make_pattern("uniform", GRID.n_nodes),
                        GRID.n_nodes,
                        0.01,
                        1,
                        until=config.sim_cycles,
                        seed=4,
                    )

                def step(self, now):
                    out = list(self.bulk.step(now))
                    for packet in self.sync.step(now):
                        packet.priority = 5
                        out.append(packet)
                    return out

                def done(self, now):
                    return self.bulk.done(now) and self.sync.done(now)

            Engine(network, Mixed(), stats).run(config.sim_cycles)
            results[label] = sum(urgent_latencies) / max(1, len(urgent_latencies))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npriority-packet latency: {results}")
    assert results["bypass"] <= results["no-bypass"] * 1.05


def test_ablation_dispatch_policy(benchmark, scale):
    """Performance / balanced / energy-efficient span the latency-energy space."""

    def run():
        rows = {}
        config = _config(scale)
        for policy in ("performance", "balanced", "energy_efficient"):
            spec = build_system("hetero_phy_torus", GRID, config)
            result = run_synthetic(spec, "uniform", 0.3, policy=policy, seed=6)
            rows[policy] = (
                result.avg_latency,
                result.stats.avg_energy_interface_pj,
                result.phy_split,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for policy, (lat, energy, split) in rows.items():
        print(f"{policy:18s} lat {lat:7.1f}  ifc energy {energy:7.0f} pJ  split {split}")
    # energy-efficient never touches the serial PHY; performance does.
    assert rows["energy_efficient"][2][1] == 0
    assert rows["performance"][2][1] > 0
    # and pays for it with energy
    assert rows["energy_efficient"][1] <= rows["performance"][1]


def test_ablation_balanced_threshold(benchmark, scale):
    """The half-full threshold (Sec 7.3) trades latency against energy."""

    def run():
        rows = {}
        config = _config(scale)
        for threshold in (4, 16, 28):
            spec = build_system("hetero_phy_torus", GRID, config)
            network, stats = _run_with(
                spec,
                rate=0.3,
                dispatch_factory=lambda t=threshold: BalancedPolicy(threshold=t),
            )
            serial = sum(
                link.flits_serial
                for link in network.links
                if isinstance(link, HeteroPhyLink)
            )
            total = serial + sum(
                link.flits_parallel
                for link in network.links
                if isinstance(link, HeteroPhyLink)
            )
            rows[threshold] = (stats.avg_latency, serial / max(1, total))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for threshold, (lat, share) in rows.items():
        print(f"threshold {threshold:2d}: lat {lat:7.1f}, serial share {share:.1%}")
    # a lower threshold pushes more traffic onto the serial PHY
    shares = [rows[t][1] for t in sorted(rows)]
    assert shares[0] >= shares[-1]


def test_ablation_eq5_selection(benchmark, scale):
    """Eq (5) beats both exclusive subnetwork choices on latency."""

    def run():
        rows = {}
        config = _config(scale)
        # 64 chiplets at a load where the flat mesh congests: the cube's
        # role is relieving the mesh's limited bisection (Sec 8.1.2).
        grid = ChipletGrid(8, 8, 2, 2)
        for policy in ("balanced", "mesh", "cube"):
            spec = build_system("hetero_channel", grid, config)
            result = run_synthetic(spec, "uniform", 0.30, policy=policy, seed=8)
            rows[policy] = result.avg_latency
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nsubnetwork selection latency @0.30: {rows}")
    assert rows["balanced"] <= rows["mesh"] * 1.02
    assert rows["balanced"] <= rows["cube"] * 1.02


def test_ablation_adaptivity(benchmark, scale):
    """Adaptive channels reduce latency vs escape-only routing at load."""

    def run():
        config = _config(scale)
        spec = build_system("hetero_phy_torus", GRID, config)
        full = run_synthetic(spec, "uniform", 0.35, seed=9)
        from repro.routing.functions import make_routing

        base = make_routing(spec)

        def escape_only(router, packet):
            return [c for c in base(router, packet) if c[2]]

        stats = Stats(measure_from=config.warmup_cycles)
        network = build_network(spec, stats, routing=escape_only)
        pattern = make_pattern("uniform", spec.grid.n_nodes)
        workload = SyntheticWorkload(
            pattern, spec.grid.n_nodes, 0.35, config.packet_length,
            until=config.sim_cycles, seed=9,
        )
        Engine(network, workload, stats).run(config.sim_cycles)
        return full.avg_latency, stats.avg_latency

    adaptive, escape_only = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nadaptive {adaptive:.1f} vs escape-only {escape_only:.1f}")
    assert not math.isnan(adaptive) and not math.isnan(escape_only)
    assert adaptive <= escape_only * 1.05
