"""Extension benchmark: channel diversity as fault tolerance (Sec 9).

The paper's analysis section argues hetero-IF's extra channel diversity
improves fault tolerance.  This benchmark quantifies it: as serial links
fail, the hetero-channel system degrades gracefully (its escape is the
untouched parallel mesh) while the uniform-serial hypercube — whose escape
runs over the same failed links — becomes unroutable.
"""

import pytest

from repro.routing.deadlock import analyse_escape
from repro.routing.fault import adaptive_link_indices, apply_faults, fail_random_links
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern

CYCLES = {"tiny": 2_000, "small": 6_000, "paper": 30_000}


def _run(network, stats, n_nodes, cycles):
    pattern = make_pattern("uniform", n_nodes)
    workload = SyntheticWorkload(pattern, n_nodes, 0.1, 16, until=cycles, seed=4)
    Engine(network, workload, stats).run(cycles)
    return stats


def test_fault_tolerance(benchmark, scale):
    grid = ChipletGrid(4, 4, 2, 2)
    config = SimConfig().scaled(CYCLES[scale])

    def run():
        rows = []
        for fraction in (0.0, 0.25, 0.5):
            spec = build_system("hetero_channel", grid, config)
            stats = Stats(measure_from=config.warmup_cycles)
            network = build_network(spec, stats)
            cube = adaptive_link_indices(network, spec)
            count = int(len(cube) * fraction)
            if count:
                fail_random_links(network, cube, count, seed=7)
            assert analyse_escape(network).deadlock_free
            _run(network, stats, grid.n_nodes, config.sim_cycles)
            rows.append((fraction, stats.avg_latency, stats.delivered_fraction))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for fraction, latency, delivered in rows:
        print(f"serial links failed {fraction:4.0%}: lat {latency:7.1f}, delivered {delivered:.1%}")
    # graceful degradation: still delivering with half the cube dark
    assert all(delivered > 0.9 for _f, _l, delivered in rows)
    latencies = [latency for _f, latency, _d in rows]
    assert latencies[-1] >= latencies[0] * 0.95  # no free lunch, but no cliff
    assert latencies[-1] <= latencies[0] * 2.0
