"""Fig 11: hetero-PHY networks on six synthetic traffic patterns."""

import math

from .conftest import run_experiment


def test_fig11(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig11", scale, results_dir)
    patterns = sorted(set(result.column("pattern")))
    assert len(patterns) == 6
    rates = sorted(set(result.column("rate")))
    low = rates[0]
    for pattern in patterns:
        by_net = {
            row[1]: row[3]
            for row in result.filtered(pattern=pattern, rate=low)
        }
        # low load: the serial torus pays its 20-cycle interface delay and
        # is the slowest full-bandwidth network (Sec 8.1.1).
        assert by_net["serial-torus"] > by_net["parallel-mesh"]
        assert by_net["hetero-phy-full"] < by_net["serial-torus"]
        # the pin-constrained variant sits between full hetero and serial
        assert by_net["hetero-phy-half"] <= by_net["serial-torus"] * 1.1
    # at the highest common rate the hetero network must not be the worst.
    high = rates[-1]
    for pattern in patterns:
        rows = {row[1]: row[3] for row in result.filtered(pattern=pattern, rate=high)}
        if len(rows) < 4 or any(math.isnan(v) for v in rows.values()):
            continue  # some baseline saturated and stopped sweeping - fine
        assert rows["hetero-phy-full"] <= max(rows.values())
