"""Fig 12: hetero-PHY networks replaying PARSEC (Netrace-like) traces."""

from .conftest import run_experiment


def test_fig12(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig12", scale, results_dir)
    apps = sorted(set(result.column("app")))
    for app in apps:
        lat = {row[1]: row[2] for row in result.filtered(app=app)}
        std = {row[1]: row[3] for row in result.filtered(app=app)}
        # At 64 nodes the serial interface delay dominates: the serial
        # torus is the worst network on every application (Sec 8.1.1).
        assert lat["serial-torus"] > lat["parallel-mesh"]
        assert lat["hetero-phy-full"] < lat["serial-torus"]
        assert lat["hetero-phy-half"] < lat["serial-torus"]
        # hetero-IF also reduces the latency variance vs the serial IF.
        assert std["hetero-phy-full"] < std["serial-torus"]
        # full and halved hetero are close (wraparound traffic is rare).
        assert abs(lat["hetero-phy-full"] - lat["hetero-phy-half"]) < 0.4 * lat["hetero-phy-full"]
