"""Fig 13: hetero-PHY networks replaying HPC traces (CNS, MOC)."""

from .conftest import run_experiment


def test_fig13(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig13", scale, results_dir)
    traces = sorted(set(result.column("trace")))
    assert len(traces) == 2
    networks = sorted(set(result.column("network")))
    scales = sorted(set(result.column("time_scale")))
    for trace in traces:
        for network in networks:
            rows = result.filtered(trace=trace, network=network)
            # latency grows (weakly) with the injection scale
            lat_by_scale = {row[2]: row[4] for row in rows}
            ordered = [lat_by_scale[s] for s in scales if s in lat_by_scale]
            assert all(b >= a * 0.9 for a, b in zip(ordered, ordered[1:]))
        low = scales[0]
        lat = {row[1]: row[4] for row in result.filtered(trace=trace, time_scale=low)}
        best_uniform = min(lat["serial-torus"], lat["parallel-mesh"])
        if scale == "tiny":
            # At 2x2 chiplets the wraparounds cannot shorten paths, so the
            # hetero network can only match, not beat, the best baseline.
            assert lat["hetero-phy-full"] <= best_uniform * 1.25
        else:
            # At >= 4x4 chiplets hetero-PHY is best or statistically tied
            # with the better baseline on both traces (CNS: strictly best;
            # MOC: within a few percent of the serial torus, paper Fig 13).
            assert lat["hetero-phy-full"] < lat["serial-torus"] * 1.05
            assert lat["hetero-phy-full"] < lat["parallel-mesh"] * 1.05
