"""Fig 14: hetero-channel networks on six synthetic traffic patterns."""

from .conftest import run_experiment


def test_fig14(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig14", scale, results_dir)
    patterns = sorted(set(result.column("pattern")))
    assert len(patterns) == 6
    rates = sorted(set(result.column("rate")))
    low = rates[0]
    for pattern in patterns:
        lat = {row[1]: row[3] for row in result.filtered(pattern=pattern, rate=low)}
        # The hetero-channel network is never worse than the serial-only
        # hypercube: approaching packets finish over the parallel mesh
        # (Sec 8.1.2).
        assert lat["hetero-channel-full"] <= lat["serial-hypercube"]
        # Halving the interfaces does not change the picture much: the
        # high-radix topology needs little per-link bandwidth.
        assert lat["hetero-channel-half"] <= lat["serial-hypercube"] * 1.25
