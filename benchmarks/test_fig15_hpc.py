"""Fig 15: hetero-channel networks replaying HPC traces (core-node ranks)."""

from .conftest import run_experiment


def test_fig15(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig15", scale, results_dir)
    traces = sorted(set(result.column("trace")))
    scales = sorted(set(result.column("time_scale")))
    low = scales[0]
    for trace in traces:
        lat = {row[1]: row[4] for row in result.filtered(trace=trace, time_scale=low)}
        deliv = {row[1]: row[5] for row in result.filtered(trace=trace, time_scale=low)}
        # every network must actually deliver the trace at the base scale
        assert all(v > 0.9 for v in deliv.values())
        # hetero-channel is never worse than the serial hypercube
        assert lat["hetero-channel-full"] <= lat["serial-hypercube"] * 1.05
