"""Fig 16: average packet energy on uniform traffic."""

from .conftest import run_experiment


def test_fig16(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig16", scale, results_dir)
    for group, serial_baseline, hetero in (
        ("hetero-phy", "serial-torus", "hetero-phy"),
        ("hetero-channel", "serial-hypercube", "hetero-channel"),
    ):
        rows = result.filtered(group=group)
        total = {}
        for row in rows:
            total.setdefault(row[1], {})[row[2]] = row[5]
        # the serial-IF baseline has the highest energy (2.4 pJ/bit links)
        serial = list(total[serial_baseline].values())[0]
        assert all(
            serial >= min(values.values())
            for net, values in total.items()
            if net != serial_baseline
        )
        # energy-efficient scheduling never increases hetero-IF energy
        hetero_rows = total[hetero]
        if "energy_efficient" in hetero_rows and "balanced" in hetero_rows:
            assert hetero_rows["energy_efficient"] <= hetero_rows["balanced"] * 1.02
