"""Fig 17: average packet energy on MOC traces."""

from .conftest import run_experiment


def test_fig17(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig17", scale, results_dir)
    for group, serial_baseline in (
        ("hetero-phy", "serial-torus"),
        ("hetero-channel", "serial-hypercube"),
    ):
        rows = result.filtered(group=group)
        total = {}
        for row in rows:
            total.setdefault(row[1], {})[row[2]] = row[5]
        serial = list(total[serial_baseline].values())[0]
        hetero_net = [n for n in total if n.startswith("hetero")][0]
        best_hetero = min(total[hetero_net].values())
        # hetero-IF with the right scheduling undercuts the serial baseline
        assert best_hetero < serial
