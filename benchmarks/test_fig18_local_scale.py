"""Fig 18: energy flexibility across local-communication scales."""

from .conftest import run_experiment


def test_fig18(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig18", scale, results_dir)
    spans = sorted(set(result.column("span")))
    assert len(spans) >= 2
    smallest = spans[0]
    local = {row[1]: row[2] for row in result.filtered(span=smallest)}
    # short-reach local traffic: the uniform-serial system wastes energy
    assert local["serial-torus"] >= local["parallel-mesh"]
    # hetero-IF matches the better system at the local scale
    assert local["hetero-phy-full"] <= local["serial-torus"] * 1.05
    # and across ALL scales hetero is never the single worst network
    for span in spans:
        rows = {row[1]: row[2] for row in result.filtered(span=span)}
        worst = max(rows.values())
        assert rows["hetero-phy-full"] < worst or all(
            abs(v - worst) < 1e-6 for v in rows.values()
        )
