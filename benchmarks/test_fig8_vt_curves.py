"""Fig 8: V-t curves of uniform vs heterogeneous interfaces (Eq 2)."""

from .conftest import run_experiment


def test_fig8(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "fig8", scale, results_dir)
    headers = result.headers
    i_par, i_ser = headers.index("parallel"), headers.index("serial")
    i_het, i_half = headers.index("hetero"), headers.index("hetero_half_pins")
    for row in result.rows:
        # the hetero fold dominates both components (Fig 8a)
        assert row[i_het] >= max(row[i_par], row[i_ser]) - 1e-9
        # the pin-constrained fold still dominates the halved parallel IF
        assert row[i_half] >= row[i_par] / 2 - 1e-9
    # serial eventually overtakes parallel in volume (slope beats intercept)
    last = result.rows[-1]
    assert last[i_ser] > last[i_par]
