"""Table 1: die-to-die interface specifications (reference data)."""

from .conftest import run_experiment


def test_table1(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "table1", scale, results_dir)
    assert len(result.rows) == 5
    # the serial/parallel trade-off that motivates hetero-IF:
    serdes = result.filtered(interface="SerDes")[0]
    aib = result.filtered(interface="AIB")[0]
    assert serdes[2] > aib[2]  # data rate
    assert serdes[4] > aib[4]  # power
    assert serdes[5] > aib[5]  # reach
