"""Table 3: average latency reduction of hetero-IF across system scales."""

import math

from .conftest import run_experiment


def test_table3(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "table3", scale, results_dir)
    assert result.rows
    for row in result.rows:
        label, hphy_p, hphy_s, hch_p, hch_s = row
        # hetero-PHY always reduces latency vs the uniform-serial torus
        assert hphy_s > 0, f"{label}: no reduction vs serial torus"
        if not math.isnan(hch_s):
            # hetero-channel always reduces latency vs the serial hypercube
            assert hch_s > 0, f"{label}: no reduction vs serial hypercube"
