"""Table 4: post-synthesis area/power/frequency of the circuit modules."""

import pytest

from .conftest import run_experiment


def test_table4(benchmark, scale, results_dir):
    result = run_experiment(benchmark, "table4", scale, results_dir)
    rows = {row[0]: row for row in result.rows}
    for name, row in rows.items():
        _, area, paper_area, power, paper_power, fmax, paper_fmax = row
        assert area == pytest.approx(paper_area, rel=0.15), name
        assert power == pytest.approx(paper_power, rel=0.15), name
    # headline overheads of the heterogeneous router (Sec 8.2)
    area_ratio = rows["hetero_router"][1] / rows["router"][1]
    power_ratio = rows["hetero_router"][3] / rows["router"][3]
    assert area_ratio == pytest.approx(1.45, abs=0.1)
    assert power_ratio == pytest.approx(1.33, abs=0.1)
