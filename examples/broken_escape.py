"""A broken escape discipline, certified broken end to end.

The repository's families break torus cycles with a dateline escape VC
(Sec 6.2).  This script deliberately installs the opposite: an
eastward-only *escape* ring on a 4-node torus row, i.e. a cyclic escape
channel-dependency graph.  It then walks the exact pipeline ``repro
prove`` automates:

1. the static CDG pass flags the cycle (``CDG-CYCLE``) — conservative:
   deadlock cannot be *ruled out*;
2. the bounded model checker does NOT refute it: best-first search over
   the credit/VC-occupancy space reaches a concrete deadlock state and
   emits a :class:`~repro.analysis.modelcheck.CounterexampleTrace` of
   injections;
3. replaying that trace in the cycle-accurate simulator reproduces a real
   :class:`~repro.sim.stats.DeadlockError` (and, with ``--forensics-dir``,
   captures a postmortem bundle you can render with ``repro postmortem``).

Contrast with the shipped families, where step 2 *refutes* every cycle
the wormhole-mode CDG reports and certification succeeds — see
``docs/analysis.md`` (Certification) and ``tests/test_prove.py``.
"""

import argparse
import sys

from repro.analysis import (
    build_cdg,
    check_network,
    cycle_feed_pool,
    replay_counterexample,
)
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system

#: 2x1 chiplets of 2x1 nodes: one 4-node torus row.
RING_GRID = ChipletGrid(2, 1, 2, 1)


def ring_routing(router, packet):
    """Eastward-only ring routing offered as the *escape* discipline."""
    if packet.dst == router.node:
        return [(0, 0, True)]
    by_tag = router.out_port_by_tag
    port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
    if port is None:
        port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
    return [(port, 0, True)]


def build_broken_network(stats=None):
    """A serial-torus row with the cyclic escape ring installed."""
    spec = build_system("serial_torus", RING_GRID, SimConfig())
    return spec, build_network(spec, stats or Stats(), routing=ring_routing)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--forensics-dir",
        default=None,
        metavar="DIR",
        help="also capture a postmortem bundle of the replayed deadlock",
    )
    parser.add_argument("--max-states", type=int, default=4_000)
    args = parser.parse_args(argv)

    spec, network = build_broken_network()
    packet_length = spec.config.packet_length

    graph = build_cdg(network, "vct")
    cycle = graph.cycle()
    if not cycle:
        print("escape CDG is acyclic — nothing to refute (unexpected)",
              file=sys.stderr)
        return 1
    shown = " -> ".join(f"(link {link}, vc {vc})" for link, vc in cycle)
    print(f"[1/3] CDG pass: escape cycle {shown}")

    pool = cycle_feed_pool(network, cycle, packet_length=packet_length)
    result = check_network(
        network,
        packet_length=packet_length,
        pool=pool,
        focus_cycle=cycle,
        max_states=args.max_states,
    )
    if not result.deadlock:
        print(f"model checker refuted the cycle ({result.verdict}) — "
              "the ring survived (unexpected)", file=sys.stderr)
        return 1
    trace = result.counterexample
    print(f"[2/3] model checker: deadlock realized after exploring "
          f"{result.explored} state(s)")
    print(trace.render())

    session = None
    stats = Stats()
    _spec, replay_network = build_broken_network(stats)
    if args.forensics_dir:
        from repro.telemetry.forensics import ForensicsConfig, ForensicsSession

        session = ForensicsSession(
            replay_network, ForensicsConfig(bundle_dir=args.forensics_dir)
        )
    outcome = replay_counterexample(
        replay_network, stats, trace, forensics=session
    )
    if not outcome.deadlocked:
        print("replay did not wedge the simulator (unexpected)", file=sys.stderr)
        return 1
    print(f"[3/3] replay: DeadlockError at cycle {outcome.cycles} — "
          "the counterexample is real")
    if outcome.bundle_path:
        print(f"postmortem bundle: {outcome.bundle_path}")
        print(f"inspect it with: repro postmortem {outcome.bundle_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
