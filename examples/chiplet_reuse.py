"""Chiplet reuse: one hetero-IF chiplet serving three different systems.

This example reproduces Motivation 1 (Fig 2 / Sec 3.1 "exclusive usage")
end to end:

1. **Interconnect flexibility** — the *same* chiplet design (a 4x4-node
   mesh with hetero-IF edge nodes) is instantiated in three systems: a
   small low-power tablet package (parallel-IF-only 2D-mesh), a desktop
   package (hetero-PHY torus, collaborative mode), and a large
   substrate-based server fabric (serial-IF hypercube) — three different
   topologies and packaging classes from one tapeout.

2. **Performance flexibility** — each system is simulated under the
   workload it was built for, showing the chosen interface mode fits.

3. **Economic flexibility** — the Chiplet-Actuary-style cost model
   quantifies what reuse saves versus taping out one uniform-IF chiplet
   per system class (Sec 4.3: "flexibility itself is the most significant
   cost saving").

Run with::

    python examples/chiplet_reuse.py
"""

from repro import ChipletGrid, SimConfig, build_system, run_synthetic
from repro.cost.reuse import SystemClass, portfolio_cost, reuse_savings


def simulate_systems() -> None:
    config = SimConfig().scaled(cycles=4_000)
    scenarios = [
        # (description, family, chiplet grid, workload rate)
        ("tablet: 2x2 chiplets, parallel-IF only (exclusive mode)",
         "parallel_mesh", ChipletGrid(2, 2, 4, 4), 0.05),
        ("desktop: 4x4 chiplets, hetero-PHY torus (collaborative mode)",
         "hetero_phy_torus", ChipletGrid(4, 4, 4, 4), 0.15),
        ("server: 16 chiplets, serial-IF hypercube (exclusive mode)",
         "serial_hypercube", ChipletGrid(4, 4, 4, 4), 0.10),
    ]
    print("one chiplet design, three systems")
    print("-" * 64)
    for description, family, grid, rate in scenarios:
        spec = build_system(family, grid, config)
        result = run_synthetic(spec, "uniform", rate, seed=7)
        stats = result.stats
        print(f"{description}")
        print(
            f"  {grid.n_nodes} nodes, rate {rate}: "
            f"avg latency {stats.avg_latency:.1f} cy, "
            f"{stats.avg_energy_pj:.0f} pJ/packet, "
            f"{stats.delivered_fraction:.0%} delivered"
        )
    print()


def cost_comparison() -> None:
    portfolio = [
        SystemClass("tablet", n_chiplets=4, volume=2_000_000, needs_interposer=True),
        SystemClass("desktop", n_chiplets=16, volume=500_000, needs_interposer=True),
        SystemClass("server", n_chiplets=16, volume=80_000, needs_interposer=False),
    ]
    chiplet_area_mm2 = 70.0
    uniform = portfolio_cost(portfolio, chiplet_area_mm2, strategy="uniform")
    hetero = portfolio_cost(portfolio, chiplet_area_mm2, strategy="hetero")
    savings = reuse_savings(portfolio, chiplet_area_mm2)

    print("portfolio cost: dedicated uniform-IF tapeouts vs one hetero-IF chiplet")
    print("-" * 64)
    for label, cost in (("uniform (3 tapeouts)", uniform), ("hetero-IF (1 tapeout)", hetero)):
        print(
            f"{label:24s} NRE ${cost.nre_usd / 1e6:7.1f}M   "
            f"silicon ${cost.silicon_usd / 1e6:8.1f}M   "
            f"package ${cost.package_usd / 1e6:7.1f}M   "
            f"total ${cost.total_usd / 1e6:8.1f}M"
        )
    print(
        f"\nreuse saves ${savings['saving_usd'] / 1e6:.1f}M "
        f"({savings['saving_fraction']:.1%} of the uniform strategy), despite the "
        f"~6% die-area overhead of carrying both PHYs."
    )


def main() -> None:
    simulate_systems()
    cost_comparison()


if __name__ == "__main__":
    main()
