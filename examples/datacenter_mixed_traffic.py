"""Datacenter scenario: mixed traffic with application-aware scheduling.

Motivation 2 of the paper: modern systems carry *mixed* traffic — latency-
critical coherence/synchronization messages and bandwidth-hungry bulk
transfers — simultaneously, and no uniform interface handles both well.

This example builds a 16-chiplet hetero-channel system and offers it a
mixed workload:

* ``sync``  — short (1-flit) high-priority messages between random pairs,
* ``bulk``  — long multi-packet transfers (all-reduce-like exchanges),

under the ``application_aware`` policy (Sec 5.3.2): priority packets take
the low-latency parallel PHY (and may use the bypass), bulk packets prefer
the high-throughput serial PHY.  The same workload on the uniform-IF
baselines shows the paper's point: each baseline serves one class well and
the other poorly; hetero-IF serves both.

Run with::

    python examples/datacenter_mixed_traffic.py
"""

from repro import ChipletGrid, Engine, SimConfig, Stats, build_network, build_system
from repro.noc.flit import Packet

import numpy as np


class MixedWorkload:
    """Random mix of high-priority sync packets and bulk transfers."""

    def __init__(self, n_nodes: int, sync_rate: float, bulk_rate: float, seed: int = 3):
        self.n_nodes = n_nodes
        self.sync_rate = sync_rate
        self.bulk_rate = bulk_rate
        self.rng = np.random.default_rng(seed)

    def _pair(self):
        src = int(self.rng.integers(self.n_nodes))
        dst = int(self.rng.integers(self.n_nodes - 1))
        return src, dst if dst < src else dst + 1

    def step(self, now):
        packets = []
        for _ in range(self.rng.poisson(self.sync_rate * self.n_nodes)):
            src, dst = self._pair()
            packets.append(
                Packet(src, dst, 1, now, priority=5, msg_class="sync", ordered=False)
            )
        for _ in range(self.rng.poisson(self.bulk_rate * self.n_nodes)):
            src, dst = self._pair()
            packets.append(Packet(src, dst, 16, now, msg_class="bulk"))
        return packets

    def done(self, now):
        return False


def run_system(family: str, policy: str, grid: ChipletGrid, config: SimConfig):
    spec = build_system(family, grid, config)
    stats = Stats(measure_from=config.warmup_cycles)
    network = build_network(spec, stats, policy=policy)
    # Collect per-class latency by hooking delivery.
    per_class: dict[str, list[int]] = {"sync": [], "bulk": []}
    original = stats.note_packet_delivered

    def tap(packet, now):
        if packet.create_cycle >= stats.measure_from:
            per_class[packet.msg_class].append(now - packet.create_cycle)
        original(packet, now)

    stats.note_packet_delivered = tap
    workload = MixedWorkload(grid.n_nodes, sync_rate=0.02, bulk_rate=0.016)
    Engine(network, workload, stats).run(config.sim_cycles)
    return {
        cls: (sum(lat) / len(lat) if lat else float("nan"))
        for cls, lat in per_class.items()
    }, stats


def main() -> None:
    grid = ChipletGrid(4, 4, 4, 4)
    config = SimConfig().scaled(cycles=5_000)
    contenders = [
        ("uniform-parallel mesh", "parallel_mesh", "balanced"),
        ("uniform-serial hypercube", "serial_hypercube", "balanced"),
        ("hetero-channel (app-aware)", "hetero_channel", "application_aware"),
    ]
    print("mixed datacenter traffic: 1-flit sync (priority) + 16-flit bulk")
    print(f"{'system':28s} {'sync lat':>9s} {'bulk lat':>9s} {'pJ/pkt':>8s}")
    rows = {}
    for name, family, policy in contenders:
        per_class, stats = run_system(family, policy, grid, config)
        rows[name] = per_class
        print(
            f"{name:28s} {per_class['sync']:9.1f} {per_class['bulk']:9.1f} "
            f"{stats.avg_energy_pj:8.0f}"
        )
    print(
        "\nThe serial hypercube taxes every sync message with SerDes latency"
        "\nand its few long-reach links congest under this mix; the parallel"
        "\nmesh holds up but queues bulk transfers on its narrow links.  The"
        "\nhetero-channel system with application-aware scheduling beats both"
        "\non both traffic classes: sync rides the parallel mesh (with the"
        "\nbypass), bulk spreads over mesh and hypercube."
    )


if __name__ == "__main__":
    main()
