"""Force a routing deadlock and capture a postmortem forensics bundle.

Eastward-only ring routing on a torus row builds a cyclic channel
dependency (the textbook deadlock the paper's escape-VC discipline
exists to break).  Under saturating load the ring wedges within a few
hundred cycles; the engine's deadlock detector fires, the attached
:class:`~repro.telemetry.forensics.ForensicsSession` captures a bundle
(network snapshot, in-flight packet table, wait-for graph with the
blocking cycle, flight-recorder tail), and this script prints its path.

Render the bundle afterwards with::

    python examples/forced_deadlock.py --bundle-dir forensics
    repro postmortem forensics/BUNDLE_deadlock_<cycle>.json --html report.html

The same wedge is cross-checked against the *static* channel-dependency
graph in ``tests/test_forensics.py``: the dynamic wait-for cycle names
exactly the channels the CDG analysis predicts.
"""

import argparse
import sys

from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.stats import DeadlockError, Stats
from repro.telemetry.forensics import ForensicsConfig, ForensicsSession
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system
from repro.traffic import SyntheticWorkload
from repro.traffic.patterns import make_pattern


def ring_routing(router, packet):
    """Eastward-only ring routing: cyclic, therefore deadlock-prone."""
    if packet.dst == router.node:
        return [(0, 0, True)]
    by_tag = router.out_port_by_tag
    port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
    if port is None:
        port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
    return [(port, 0, True)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bundle-dir",
        default="forensics",
        help="where the postmortem bundle goes (default: forensics/)",
    )
    parser.add_argument("--cycles", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    grid = ChipletGrid(2, 1, 2, 2)
    config = SimConfig(sim_cycles=args.cycles, warmup_cycles=0)
    spec = build_system("serial_torus", grid, config)
    stats = Stats()
    network = build_network(spec, stats, routing=ring_routing)

    session = ForensicsSession(
        network,
        ForensicsConfig(
            bundle_dir=args.bundle_dir,
            flight_recorder=True,
            recorder_window=2_048,
            health=True,
            health_every=250,
            health_stream=sys.stderr,
        ),
    )
    engine = Engine(network, _workload(grid, config, args.seed), stats,
                    deadlock_threshold=300)
    engine.forensics = session

    print(f"running eastward ring routing on {spec.name} at rate 1.0 ...")
    try:
        engine.run(args.cycles)
    except DeadlockError as exc:
        print(f"deadlock detected at cycle {exc.cycle}: "
              f"{exc.buffered} flits wedged")
        print(f"postmortem bundle: {exc.bundle_path}")
        print(f"inspect it with: repro postmortem {exc.bundle_path}")
        return 0
    print("no deadlock occurred — the ring survived (unexpected)", file=sys.stderr)
    return 1


def _workload(grid, config, seed):
    pattern = make_pattern("uniform", grid.n_nodes)
    return SyntheticWorkload(
        pattern, grid.n_nodes, 1.0, config.packet_length, seed=seed
    )


if __name__ == "__main__":
    sys.exit(main())
