"""HPC trace replay: CNS and MOC programs on chiplet fabrics (Fig 13).

Generates DUMPI-substitute traces for the two HPC programs the paper
evaluates — CNS (compressible Navier-Stokes, neighbour-dominated halo
exchange) and MOC (method of characteristics, long-range sweeps) — embeds
the MPI ranks onto a multi-chiplet system, and replays them on the four
hetero-PHY contenders at increasing injection scales.

Run with::

    python examples/hpc_trace_replay.py
"""

from repro import (
    ChipletGrid,
    SimConfig,
    build_system,
    embed_ranks,
    generate_cns_trace,
    generate_moc_trace,
    run_trace,
)


def main() -> None:
    grid = ChipletGrid(4, 4, 4, 4)  # 256 nodes
    config = SimConfig().scaled(cycles=8_000)
    ranks = 256

    traces = {
        "CNS (halo exchange + allreduce)": embed_ranks(
            generate_cns_trace(ranks, iterations=4), grid
        ),
        "MOC (long-range sweeps)": embed_ranks(
            generate_moc_trace(ranks, iterations=3), grid
        ),
    }
    systems = {
        "parallel-mesh": build_system("parallel_mesh", grid, config),
        "serial-torus": build_system("serial_torus", grid, config),
        "hetero-phy": build_system("hetero_phy_torus", grid, config),
        "hetero-phy/2": build_system("hetero_phy_torus", grid, config.halved()),
    }

    for name, base in traces.items():
        print(f"\n=== {name}: {len(base)} packets, {base.total_flits} flits ===")
        print(f"{'scale':>6s} {'load':>7s}", end="")
        for system in systems:
            print(f" {system:>14s}", end="")
        print()
        for time_scale in (0.5, 1.0, 2.0):
            trace = base.scaled(time_scale)
            load = trace.offered_load(grid.n_nodes)
            print(f"{time_scale:6.1f} {load:7.3f}", end="")
            for system, spec in systems.items():
                result = run_trace(spec, trace, strict=False)
                latency = result.stats.avg_latency
                mark = "" if result.stats.delivered_fraction > 0.95 else "*"
                print(f" {latency:13.1f}{mark or ' '}", end="")
            print()
    print("\n(* = network failed to drain the trace: saturated)")
    print(
        "CNS keeps traffic between neighbouring ranks, so the parallel mesh"
        "\nholds up until the scale grows; MOC's long-range sweeps reward the"
        "\ntorus wraparounds.  The hetero-PHY fabric tracks the best baseline"
        "\nin each regime."
    )


if __name__ == "__main__":
    main()
