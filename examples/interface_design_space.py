"""Interface design-space exploration with the V-t model (Fig 8).

Uses the analytic Eq (2) model to answer a designer's question before any
simulation: *given a fixed I/O pin budget, how should lanes be split
between a parallel and a serial PHY?*  The script

1. prints the V-t curves of the Table 1 technologies (AIB-like parallel,
   SerDes-like serial, BoW-like compromised) and the hetero-PHY fold,
2. sweeps the pin split of a pin-constrained hetero-PHY interface and
   reports the delivery time of small (latency-critical) and large
   (bandwidth-critical) transfers, and
3. cross-checks one point of the analytic model against a cycle-accurate
   simulation of the corresponding hetero-PHY link.

Run with::

    python examples/interface_design_space.py
"""

import numpy as np

from repro import (
    ChipletGrid,
    SimConfig,
    VTCurve,
    build_system,
    hetero_curve,
    pin_constrained_hetero,
    run_synthetic,
)

PARALLEL = VTCurve(bandwidth=2, delay=5, name="parallel (AIB-like)")
SERIAL = VTCurve(bandwidth=4, delay=20, name="serial (SerDes-like)")
COMPROMISED = VTCurve(bandwidth=3, delay=10, name="compromised (BoW-like)")


def ascii_curves() -> None:
    """A small text rendering of Fig 8(a)."""
    hetero = hetero_curve(PARALLEL, SERIAL)
    curves = [PARALLEL, SERIAL, COMPROMISED, hetero]
    t_grid = np.arange(0, 41, 4)
    print("V(t): volume delivered by time t (flits)")
    print(f"{'t':>4s}", *(f"{c.name.split()[0]:>12s}" for c in curves))
    for t in t_grid:
        print(f"{t:4d}", *(f"{float(c.volume(float(t))):12.0f}" for c in curves))
    print()


def pin_split_sweep() -> None:
    print("pin-constrained hetero-PHY: lane-split sweep (Fig 8b)")
    print(f"{'parallel share':>15s} {'8-flit xfer':>12s} {'512-flit xfer':>14s}")
    best_small = best_large = None
    for share in (0.1, 0.25, 0.5, 0.75, 0.9):
        curve = pin_constrained_hetero(PARALLEL, SERIAL, share)
        small = curve.time_to_deliver(8)
        large = curve.time_to_deliver(512)
        print(f"{share:15.2f} {small:12.1f} {large:14.1f}")
        if best_small is None or small < best_small[1]:
            best_small = (share, small)
        if best_large is None or large < best_large[1]:
            best_large = (share, large)
    print(
        f"\nlatency-critical traffic favours a parallel-heavy split "
        f"(best at {best_small[0]:.0%}); bulk transfers favour serial lanes "
        f"(best at {best_large[0]:.0%}) - Sec 5.1's ratio adjustment.\n"
    )


def cross_check_with_simulation() -> None:
    print("cross-check: analytic V-t vs cycle-accurate simulation")
    grid = ChipletGrid(2, 1, 2, 2)  # two chiplets joined by hetero-PHY links
    config = SimConfig(sim_cycles=3_000, warmup_cycles=300, packet_length=16)
    spec = build_system("hetero_phy_torus", grid, config)
    result = run_synthetic(spec, "uniform", 0.05, policy="performance", seed=1)
    hetero = hetero_curve(PARALLEL, SERIAL)
    analytic = hetero.time_to_deliver(config.packet_length)
    print(
        f"  analytic time to push one {config.packet_length}-flit packet "
        f"through the interface: {analytic:.1f} cycles"
    )
    print(
        f"  simulated end-to-end latency (includes on-chip hops and "
        f"router pipelines): {result.avg_latency:.1f} cycles"
    )
    assert result.avg_latency > analytic  # end-to-end includes more stages


def main() -> None:
    ascii_curves()
    pin_split_sweep()
    cross_check_with_simulation()


if __name__ == "__main__":
    main()
