"""Visualize a hetero-channel system: floorplan, hot links, latency curve.

Renders (as plain text — no plotting stack required):

1. the floorplan and channel census of a 16-chiplet hetero-channel system,
2. a per-node forwarded-traffic heatmap after a uniform-traffic run,
3. the busiest links (watch the serial hypercube links light up for
   long-range traffic),
4. an ASCII latency-vs-injection-rate curve comparing the hetero-channel
   network to the flat mesh (the Fig 14 story in one chart).

Run with::

    python examples/network_visualization.py
"""

from repro import ChipletGrid, SimConfig, Stats, build_network, build_system
from repro.sim.engine import Engine
from repro.sim.experiment import latency_rate_sweep
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern
from repro.viz import (
    ascii_curve,
    link_utilization_table,
    render_topology,
    utilization_heatmap,
)


def main() -> None:
    grid = ChipletGrid(4, 4, 4, 4)
    config = SimConfig().scaled(cycles=4_000)
    spec = build_system("hetero_channel", grid, config)

    print(render_topology(spec))
    print()

    # One run at moderate load, instrumented for utilization.
    stats = Stats(measure_from=config.warmup_cycles)
    network = build_network(spec, stats)
    workload = SyntheticWorkload(
        make_pattern("uniform", grid.n_nodes),
        grid.n_nodes,
        0.2,
        config.packet_length,
        until=config.sim_cycles,
        seed=11,
    )
    Engine(network, workload, stats).run(config.sim_cycles)
    print(utilization_heatmap(network, spec, config.sim_cycles))
    print()
    print(link_utilization_table(network, config.sim_cycles, top=8))
    print()

    # Trace one far packet's route: watch it ride a hypercube shortcut.
    from repro.noc.flit import Packet
    from repro.noc.tracing import RouteTracer
    from repro.viz import render_path

    stats2 = Stats()
    network2 = build_network(spec, stats2)
    tracer = RouteTracer(network2)
    probe = Packet(0, grid.n_nodes - 1, 16, 0)  # corner to corner

    class OneShot:
        sent = False

        def step(self, now):
            if not self.sent:
                self.sent = True
                return [probe]
            return []

        def done(self, now):
            return True

    Engine(network2, OneShot(), stats2).run(600)
    print(tracer.describe(probe))
    print(render_path(spec, tracer.nodes_of(probe)))
    print()

    # Latency curves: hetero-channel vs flat parallel mesh.
    rates = [0.05, 0.1, 0.2, 0.3, 0.4]
    mesh = build_system("parallel_mesh", grid, config)
    for label, system in (("parallel-mesh", mesh), ("hetero-channel", spec)):
        points = latency_rate_sweep(system, "uniform", rates)
        xs = [p.rate for p in points]
        ys = [p.avg_latency for p in points]
        print(ascii_curve(xs, ys, label=f"{label}: avg latency vs injection rate"))
        print()


if __name__ == "__main__":
    main()
