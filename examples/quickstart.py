"""Quickstart: build a hetero-IF multi-chiplet system and simulate it.

Builds the paper's three hetero-PHY contenders (uniform-parallel mesh,
uniform-serial torus, hetero-PHY torus) at a 256-node scale, runs uniform
random traffic through each, and prints a side-by-side comparison of
latency, energy and PHY utilization.

Run with::

    python examples/quickstart.py
"""

from repro import ChipletGrid, SimConfig, build_system, run_synthetic


def main() -> None:
    # 4x4 chiplets, each a 4x4-node mesh NoC => 256 nodes (Fig 11 scale).
    grid = ChipletGrid(chiplets_x=4, chiplets_y=4, nodes_x=4, nodes_y=4)

    # Table 2 parameters with a short horizon for a quick demo.
    config = SimConfig().scaled(cycles=5_000)

    systems = {
        "uniform-parallel 2D-mesh": build_system("parallel_mesh", grid, config),
        "uniform-serial 2D-torus": build_system("serial_torus", grid, config),
        "hetero-PHY 2D-torus": build_system("hetero_phy_torus", grid, config),
    }

    rate = 0.25  # flits/cycle/node - past the mesh's comfort zone
    print(f"uniform random traffic at {rate} flits/cycle/node, {grid.n_nodes} nodes\n")
    print(f"{'system':28s} {'avg lat':>8s} {'p99':>8s} {'pJ/pkt':>8s} {'delivered':>9s}")
    for name, spec in systems.items():
        result = run_synthetic(spec, "uniform", rate, seed=42)
        stats = result.stats
        print(
            f"{name:28s} {stats.avg_latency:8.1f} {stats.latency_percentile(99):8.0f} "
            f"{stats.avg_energy_pj:8.0f} {stats.delivered_fraction:8.1%}"
        )
        parallel, serial = result.phy_split
        if parallel or serial:
            share = serial / (parallel + serial)
            print(
                f"{'':28s} hetero-PHY dispatch: {parallel} flits parallel, "
                f"{serial} serial ({share:.0%} serial)"
            )
    print(
        "\nThe serial torus pays its 20-cycle interface everywhere; the mesh"
        "\nis close to saturation at this rate; the hetero-PHY torus keeps"
        "\nthe parallel PHY's latency and absorbs the load with the serial PHY."
    )


if __name__ == "__main__":
    main()
