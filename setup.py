"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot run the PEP 517
editable build; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` on older pips) fall
back to the setuptools develop path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
