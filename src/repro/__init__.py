"""repro — heterogeneous die-to-die interfaces for chiplet systems.

A from-scratch reproduction of *"Heterogeneous Die-to-Die Interfaces:
Enabling More Flexible Chiplet Interconnection Systems"* (MICRO 2023):
a cycle-accurate multi-chiplet NoC simulator with hetero-PHY and
hetero-channel interface models, deadlock-free adaptive routing
(Algorithm 1), scheduling policies, workload generators and the full
evaluation harness.

Quickstart::

    from repro import ChipletGrid, SimConfig, build_system, run_synthetic

    grid = ChipletGrid(chiplets_x=2, chiplets_y=2, nodes_x=4, nodes_y=4)
    config = SimConfig().scaled(cycles=20_000)
    system = build_system("hetero_phy_torus", grid, config)
    result = run_synthetic(system, "uniform", rate=0.1)
    print(result.avg_latency, result.avg_energy_pj)
"""

from .core.interfaces import AIB, BOW, SERDES, TABLE1, UCIE_ADVANCED, UCIE_STANDARD, InterfaceSpec
from .core.phy import HeteroPhyLink, hetero_phy_link_factory
from .core.rob import ReorderBuffer, rob_capacity
from .core.scheduling import (
    ApplicationAwarePolicy,
    BalancedPolicy,
    EnergyEfficientPolicy,
    PerformanceFirstPolicy,
    make_dispatch_policy,
)
from .core.vt_model import HeteroVTCurve, VTCurve, hetero_curve, pin_constrained_hetero
from .core.weighted_path import HopCostModel, make_cost_model
from .noc.channel import ChannelKind, ChannelSpec, PhyParams
from .noc.flit import FLIT_BITS, Flit, Packet
from .noc.network import Network
from .noc.router import Router
from .routing.deadlock import analyse_escape
from .routing.functions import make_routing
from .sim.build import build_network
from .sim.config import DEFAULT_CONFIG, SimConfig
from .sim.engine import Engine
from .sim.experiment import (
    RunResult,
    SweepPoint,
    latency_rate_sweep,
    run_synthetic,
    run_trace,
    saturation_rate,
)
from .sim.stats import DeadlockError, Stats
from .telemetry import (
    ChromeTraceBuilder,
    EpochMetrics,
    ProgressReporter,
    TelemetryBus,
    TelemetryConfig,
    TelemetrySession,
)
from .topology.grid import ChipletGrid
from .topology.multipackage import build_hetero_channel_packages
from .topology.system import FAMILIES, SystemSpec, build_system
from .traffic.hpc import embed_ranks, generate_cns_trace, generate_moc_trace
from .traffic.injection import SyntheticWorkload
from .traffic.reqreply import RequestReplyWorkload
from .traffic.parsec import PARSEC_PROFILES, generate_parsec_trace
from .traffic.patterns import PATTERNS, make_pattern
from .traffic.trace import Trace, TraceRecord, TraceWorkload

__version__ = "1.0.0"

__all__ = [
    "AIB",
    "BOW",
    "SERDES",
    "TABLE1",
    "UCIE_ADVANCED",
    "UCIE_STANDARD",
    "ApplicationAwarePolicy",
    "BalancedPolicy",
    "ChannelKind",
    "ChannelSpec",
    "ChipletGrid",
    "ChromeTraceBuilder",
    "DEFAULT_CONFIG",
    "DeadlockError",
    "EnergyEfficientPolicy",
    "Engine",
    "EpochMetrics",
    "FAMILIES",
    "FLIT_BITS",
    "Flit",
    "HeteroPhyLink",
    "HeteroVTCurve",
    "HopCostModel",
    "InterfaceSpec",
    "Network",
    "PARSEC_PROFILES",
    "PATTERNS",
    "Packet",
    "PerformanceFirstPolicy",
    "PhyParams",
    "ProgressReporter",
    "ReorderBuffer",
    "RequestReplyWorkload",
    "Router",
    "RunResult",
    "SimConfig",
    "Stats",
    "SweepPoint",
    "SyntheticWorkload",
    "SystemSpec",
    "TelemetryBus",
    "TelemetryConfig",
    "TelemetrySession",
    "Trace",
    "TraceRecord",
    "TraceWorkload",
    "VTCurve",
    "analyse_escape",
    "build_hetero_channel_packages",
    "build_network",
    "build_system",
    "embed_ranks",
    "generate_cns_trace",
    "generate_moc_trace",
    "generate_parsec_trace",
    "hetero_curve",
    "hetero_phy_link_factory",
    "latency_rate_sweep",
    "make_cost_model",
    "make_dispatch_policy",
    "make_pattern",
    "make_routing",
    "pin_constrained_hetero",
    "rob_capacity",
    "run_synthetic",
    "run_trace",
    "saturation_rate",
]
