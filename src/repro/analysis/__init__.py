"""Static verification, certification and runtime sanitizing.

Four layers (see ``docs/analysis.md``):

* **static verification** — :func:`verify_network` / :func:`verify_family`
  run the topology/config linter, the (extended) channel-dependency-graph
  deadlock check and the routing-state livelock check over a built system
  and return a :class:`Report`;
* **certification** — :func:`prove_family` / :func:`prove_all` stack the
  interface-contract checker, exhaustive reachability proofs (including
  the single-link fault-mask sweep) and a bounded explicit-state model
  checker on top, adjudicate CDG cycles (realize with a replayable
  counterexample, or refute) and emit schema-versioned
  :class:`Certificate` artifacts;
* **runtime sanitizer** — :class:`InvariantChecker` instruments a network
  and asserts flow-control invariants while a simulation runs;
* **CLI** — ``repro check`` exposes the static passes and ``repro prove``
  the certification engine, both with non-zero exit codes for CI gating.
"""

from .cdg import MODES, ChannelDependencyGraph, build_cdg, split_candidates
from .certificate import (
    CERT_SCHEMA_VERSION,
    Certificate,
    CertificateError,
    certificate_dir,
    load_certificate,
    load_certificates,
    write_certificate,
)
from .contracts import check_contracts
from .lint import lint_network, lint_spec
from .livelock import LivelockAnalysis, analyse_livelock
from .modelcheck import (
    CounterexampleTrace,
    ModelCheckResult,
    ReplayResult,
    check_network,
    cycle_feed_pool,
    replay_counterexample,
)
from .prove import ProveResult, prove_all, prove_family, prove_network
from .reachability import (
    FaultSweep,
    ReachabilityAnalysis,
    analyse_reachability,
    reachability_pass,
    sweep_fault_masks,
)
from .report import Finding, Report, Severity
from .sanitizer import InvariantChecker, InvariantViolation
from .verifier import (
    DEFAULT_CHIPLETS,
    DEFAULT_NODES,
    verify_all,
    verify_family,
    verify_network,
)

__all__ = [
    "MODES",
    "ChannelDependencyGraph",
    "build_cdg",
    "split_candidates",
    "CERT_SCHEMA_VERSION",
    "Certificate",
    "CertificateError",
    "certificate_dir",
    "load_certificate",
    "load_certificates",
    "write_certificate",
    "check_contracts",
    "lint_network",
    "lint_spec",
    "LivelockAnalysis",
    "analyse_livelock",
    "CounterexampleTrace",
    "ModelCheckResult",
    "ReplayResult",
    "check_network",
    "cycle_feed_pool",
    "replay_counterexample",
    "ProveResult",
    "prove_all",
    "prove_family",
    "prove_network",
    "FaultSweep",
    "ReachabilityAnalysis",
    "analyse_reachability",
    "reachability_pass",
    "sweep_fault_masks",
    "Finding",
    "Report",
    "Severity",
    "InvariantChecker",
    "InvariantViolation",
    "DEFAULT_CHIPLETS",
    "DEFAULT_NODES",
    "verify_all",
    "verify_family",
    "verify_network",
]
