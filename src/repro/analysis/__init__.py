"""Static verification and runtime sanitizing for chiplet systems.

Three layers (see ``docs/analysis.md``):

* **static verification** — :func:`verify_network` / :func:`verify_family`
  run the topology/config linter, the (extended) channel-dependency-graph
  deadlock check and the routing-state livelock check over a built system
  and return a :class:`Report`;
* **runtime sanitizer** — :class:`InvariantChecker` instruments a network
  and asserts flow-control invariants while a simulation runs;
* **CLI** — ``repro check`` exposes the static passes with a non-zero
  exit code on violations, for CI gating.
"""

from .cdg import MODES, ChannelDependencyGraph, build_cdg, split_candidates
from .lint import lint_network, lint_spec
from .livelock import LivelockAnalysis, analyse_livelock
from .report import Finding, Report, Severity
from .sanitizer import InvariantChecker, InvariantViolation
from .verifier import (
    DEFAULT_CHIPLETS,
    DEFAULT_NODES,
    verify_all,
    verify_family,
    verify_network,
)

__all__ = [
    "MODES",
    "ChannelDependencyGraph",
    "build_cdg",
    "split_candidates",
    "lint_network",
    "lint_spec",
    "LivelockAnalysis",
    "analyse_livelock",
    "Finding",
    "Report",
    "Severity",
    "InvariantChecker",
    "InvariantViolation",
    "DEFAULT_CHIPLETS",
    "DEFAULT_NODES",
    "verify_all",
    "verify_family",
    "verify_network",
]
