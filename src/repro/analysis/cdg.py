"""Generalized channel-dependency-graph construction.

:mod:`repro.routing.deadlock` verifies Lemma 1 under the *virtual
cut-through* shortcut: a packet holds at most its current channel while
requesting the next one, so only **direct** dependencies between
consecutive escape channels matter.  This module generalizes that to
Duato's full condition for wormhole switching, where a blocked packet
holds every channel back to its tail: an escape channel then also acquires
**indirect** (extended) dependencies on every escape channel the packet
may request after crossing a chain of adaptive (non-escape) channels.

Two modes:

``"vct"``
    Direct dependencies only — exact for the repository's routers, which
    enforce whole-packet (virtual cut-through) buffer allocation.
``"wormhole"``
    Direct plus indirect dependencies — Duato's extended channel
    dependency graph of the escape subfunction R0.  Acyclicity of this
    graph proves deadlock freedom even for plain wormhole flow control.

Vertices are ``(link index, virtual channel)`` pairs, as in the VCT
analyser; both analyses therefore interoperate (and share the public
:attr:`repro.noc.link.Link.index` property).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.routing.deadlock import EscapeChannel, find_cycle

#: Analysis modes understood by :func:`build_cdg`.
MODES = ("vct", "wormhole")


@dataclass
class ChannelDependencyGraph:
    """Escape-channel dependency graph with direct/indirect edge split."""

    #: vertex -> all successors (direct + indirect).
    edges: dict[EscapeChannel, set[EscapeChannel]] = field(default_factory=dict)
    #: vertex -> successors reached only through an adaptive chain.
    indirect: dict[EscapeChannel, set[EscapeChannel]] = field(default_factory=dict)
    mode: str = "vct"

    @property
    def n_channels(self) -> int:
        return len(self.edges)

    @property
    def n_direct(self) -> int:
        total = sum(len(v) for v in self.edges.values())
        return total - self.n_indirect

    @property
    def n_indirect(self) -> int:
        return sum(len(v) for v in self.indirect.values())

    def cycle(self) -> list[EscapeChannel]:
        """A dependency cycle, or ``[]`` if the graph is acyclic."""
        return find_cycle(self.edges)

    def cycle_uses_indirect(self, cycle: list[EscapeChannel]) -> bool:
        """True if the given cycle needs at least one indirect edge."""
        for a, b in zip(cycle, cycle[1:]):
            if b in self.indirect.get(a, ()):
                return True
        return False


def _probe(node: int, dst: int, *, banned: bool = False) -> Packet:
    """A throwaway packet used to query a routing function."""
    packet = Packet(node, dst, length=1, create_cycle=0)
    packet.adaptive_banned = banned
    return packet


def split_candidates(
    network: Network, node: int, dst: int, *, banned: bool = False
) -> tuple[list[EscapeChannel], list[EscapeChannel]]:
    """(escape, adaptive) channels offered at ``node`` for ``dst``.

    Ejection candidates are dropped; each entry is a ``(link index, vc)``
    vertex.  ``banned`` queries the post-fallback candidate set (the
    livelock rule of Sec 6.2 restricts adaptive candidates after a packet
    falls back to escape under congestion).
    """
    router = network.routers[node]
    if node == dst:
        return [], []
    escape: list[EscapeChannel] = []
    adaptive: list[EscapeChannel] = []
    for port, vc, is_escape in router.routing_fn(router, _probe(node, dst, banned=banned)):
        link = router.outputs[port].link
        if link is None:  # ejection
            continue
        (escape if is_escape else adaptive).append((link.index, vc))
    return escape, adaptive


def build_cdg(network: Network, mode: str = "vct") -> ChannelDependencyGraph:
    """The (extended) channel dependency graph of the escape subfunction.

    For every destination the per-node escape and adaptive candidate sets
    are enumerated once (in both the banned and unbanned routing states —
    their union over-approximates any reachable packet state, so
    acyclicity of the result is a sound certificate).  Direct dependencies
    connect an escape channel to the escape channels offered at its
    downstream node; in ``wormhole`` mode, indirect dependencies
    additionally connect it to escape channels offered at any node
    reachable from there through one or more adaptive hops.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    n = network.n_nodes
    links = network.links
    graph = ChannelDependencyGraph(mode=mode)
    edges = graph.edges
    for dst in range(n):
        escape_at: dict[int, list[EscapeChannel]] = {}
        adaptive_next: dict[int, set[int]] = {}
        for node in range(n):
            if node == dst:
                escape_at[node] = []
                adaptive_next[node] = set()
                continue
            esc_plain, adapt_plain = split_candidates(network, node, dst)
            esc_banned, adapt_banned = split_candidates(network, node, dst, banned=True)
            escape_at[node] = list(dict.fromkeys(esc_plain + esc_banned))
            adaptive_next[node] = {
                links[link_idx].dst_router.node
                for link_idx, _vc in adapt_plain + adapt_banned
            }
        for node in range(n):
            if node == dst:
                continue
            for channel in escape_at[node]:
                deps = edges.setdefault(channel, set())
                downstream = links[channel[0]].dst_router.node
                deps.update(escape_at[downstream])
                if mode == "wormhole":
                    for via in _adaptive_reachable(adaptive_next, downstream, dst):
                        offered = escape_at[via]
                        fresh = [c for c in offered if c not in deps]
                        if fresh:
                            deps.update(fresh)
                            graph.indirect.setdefault(channel, set()).update(fresh)
    return graph


def _adaptive_reachable(
    adaptive_next: dict[int, set[int]], start: int, dst: int
) -> set[int]:
    """Nodes reachable from ``start`` via >= 1 adaptive hop (``dst`` excluded)."""
    seen: set[int] = set()
    frontier = [n for n in adaptive_next[start] if n != dst]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(n for n in adaptive_next[node] if n != dst and n not in seen)
    return seen
