"""Schema-versioned certification artifacts (``runs/certificates/``).

A :class:`Certificate` is the durable output of one ``repro prove`` run
over one (system, mode) pair: the verdict, every finding, the pass
metrics, the fault-mask sweep summary and the model checker's verdict —
including the concrete counterexample trace when a deadlock was realized.
Downstream consumers (the future fast-kernel differential tests, topology
generators, CI) gate on ``certified`` without re-running the passes and
can re-validate a counterexample by replaying its trace.

Certificates are JSON files named ``CERT_<system>_<mode>.json`` under the
runs registry directory, so they travel with the ``runs.jsonl`` ledger.
The schema is versioned independently of the run-record schema;
:func:`load_certificate` rejects foreign versions rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from .report import Report

#: Bump on incompatible changes to the certificate layout.
CERT_SCHEMA_VERSION = 1

#: Subdirectory of the runs registry holding certificates.
CERT_SUBDIR = "certificates"


class CertificateError(RuntimeError):
    """A certificate could not be read (corrupt file or schema mismatch)."""


@dataclass
class Certificate:
    """The machine-checkable outcome of one certification run."""

    schema_version: int = CERT_SCHEMA_VERSION
    system: str = ""
    family: str = ""
    mode: str = "vct"
    #: (chiplets_x, chiplets_y, nodes_x, nodes_y) of the proved instance.
    grid: list[int] = field(default_factory=list)
    created: str = ""
    git_rev: str = "unknown"
    #: ``system_digest`` of the proved spec — consumers match on this.
    config_hash: str = ""
    certified: bool = False
    #: Full verification report (``Report.to_dict`` schema).
    report: dict[str, Any] = field(default_factory=dict)
    #: Fault sweep: {"swept": n, "links": [...], "broken": [...]}.
    fault_masks: dict[str, Any] = field(default_factory=dict)
    #: Model checker: {"verdict", "explored", "exhaustive", "cycle",
    #: "counterexample", "replay"} — empty when no CDG cycle needed
    #: adjudication.
    modelcheck: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "system": self.system,
            "family": self.family,
            "mode": self.mode,
            "grid": list(self.grid),
            "created": self.created,
            "git_rev": self.git_rev,
            "config_hash": self.config_hash,
            "certified": self.certified,
            "report": self.report,
            "fault_masks": self.fault_masks,
            "modelcheck": self.modelcheck,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Certificate":
        version = data.get("schema_version")
        if version != CERT_SCHEMA_VERSION:
            raise CertificateError(
                f"certificate schema v{version!r} is not supported "
                f"(this build reads v{CERT_SCHEMA_VERSION})"
            )
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise CertificateError(
                f"certificate has unknown fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    @property
    def report_obj(self) -> Report:
        """The embedded report, rehydrated."""
        return Report.from_dict(self.report)

    def filename(self) -> str:
        return f"CERT_{self.system}_{self.mode}.json"


def certificate_dir(runs_dir: str | Path) -> Path:
    return Path(runs_dir) / CERT_SUBDIR


def write_certificate(cert: Certificate, runs_dir: str | Path) -> Path:
    """Persist one certificate; returns the file path."""
    directory = certificate_dir(runs_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / cert.filename()
    path.write_text(
        json.dumps(cert.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_certificate(path: str | Path) -> Certificate:
    """Read one certificate back, validating the schema."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CertificateError(f"{path}: unreadable certificate: {exc}") from None
    if not isinstance(data, dict):
        raise CertificateError(f"{path}: certificate is not a JSON object")
    try:
        return Certificate.from_dict(data)
    except TypeError as exc:
        raise CertificateError(f"{path}: malformed certificate: {exc}") from None


def load_certificates(runs_dir: str | Path) -> list[Certificate]:
    """All readable certificates under a runs directory, sorted by name."""
    directory = certificate_dir(runs_dir)
    if not directory.is_dir():
        return []
    certs = []
    for path in sorted(directory.glob("CERT_*.json")):
        certs.append(load_certificate(path))
    return certs
