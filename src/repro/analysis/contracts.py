"""Static interface-contract checking across link endpoint pairs.

The linter (:mod:`repro.analysis.lint`) checks each channel in isolation.
Interfaces fail pairwise: a transmitter provisioned with more credits than
the receiver has buffer slots overflows silently, endpoints disagreeing on
the VC count corrupt flit-to-buffer steering, and an asymmetric link pair
starves the credit return path.  This pass verifies the *contract between
the two endpoints* of every built link — and between each directed
channel and its reverse — for hetero-PHY and hetero-channel systems as
well as the uniform ones:

``CONTRACT-VC``
    The transmitting output port, the receiving input port and the
    channel spec must agree on the virtual-channel count.
``CONTRACT-CREDIT``
    At rest, the transmitter's credit counter per VC must equal the
    receiver's buffer depth — more credits overflow the buffer, fewer
    strand capacity (the Sec 7.1 slack is part of the *depth*, so the
    equality must hold after provisioning).
``CONTRACT-CAPACITY``
    Every VC must hold at least one whole packet, or virtual cut-through
    allocation can never grant it (Lemma 1's premise).
``CONTRACT-WIDTH``
    Every directed interface channel needs a reverse channel of the same
    kind and flit width (total bandwidth) between the same two nodes;
    request/response and credit traffic assume the symmetric pair.
``CONTRACT-ROB``
    Each built hetero-PHY reorder buffer must cover the worst-case
    parallel/serial skew of its own link (Eq 1 applied to the *built*
    PHYs, not the configured ones).

Run this on a freshly built network: the credit equality is a rest-state
property (in-flight traffic legitimately lowers the counters, so occupied
VCs are skipped).
"""

from __future__ import annotations

from repro.core.phy import HeteroPhyLink
from repro.core.rob import rob_capacity
from repro.noc.network import Network
from repro.topology.system import SystemSpec
from .report import Report


def check_contracts(spec: SystemSpec, network: Network, report: Report) -> None:
    """Verify all endpoint-pair contracts of a built network."""
    _check_endpoint_agreement(network, report)
    _check_capacity(spec, network, report)
    _check_pair_symmetry(spec, report)
    _check_built_robs(network, report)


def _check_endpoint_agreement(network: Network, report: Report) -> None:
    """CONTRACT-VC / CONTRACT-CREDIT: both link endpoints, one contract."""
    for link in network.links:
        channel = link.spec
        src_router = link.src_router
        dst_router = link.dst_router
        assert src_router is not None and dst_router is not None
        out = src_router.outputs[link.src_port]
        in_port = dst_router.inputs[link.dst_port]
        target = f"link {link.index} ({channel.src}->{channel.dst})"
        if not (out.n_vcs == len(in_port.vcs) == channel.n_vcs):
            report.error(
                "CONTRACT-VC",
                target,
                f"VC count disagreement: transmitter has {out.n_vcs}, "
                f"receiver has {len(in_port.vcs)}, spec says {channel.n_vcs}",
            )
            continue
        for vc in range(out.n_vcs):
            if out.vc_owner[vc] is not None:
                continue  # in use; rest-state equality does not apply
            in_flight = len(in_port.vcs[vc].queue)
            if out.credits[vc] + in_flight > in_port.buffer_depth:
                report.error(
                    "CONTRACT-CREDIT",
                    f"{target} vc {vc}",
                    f"transmitter holds {out.credits[vc]} credits but the "
                    f"receiving buffer has {in_port.buffer_depth} slots "
                    f"({in_flight} occupied); overflow is possible",
                )
            elif out.credits[vc] + in_flight < in_port.buffer_depth:
                report.warning(
                    "CONTRACT-CREDIT",
                    f"{target} vc {vc}",
                    f"transmitter holds {out.credits[vc]} credits for "
                    f"{in_port.buffer_depth} buffer slots; capacity is stranded",
                )


def _check_capacity(spec: SystemSpec, network: Network, report: Report) -> None:
    """CONTRACT-CAPACITY: each VC must admit one whole packet under VCT."""
    packet_length = spec.config.packet_length
    for link in network.links:
        src_router = link.src_router
        assert src_router is not None
        out = src_router.outputs[link.src_port]
        for vc in range(out.n_vcs):
            if out.vc_owner[vc] is None and out.credits[vc] < packet_length:
                report.error(
                    "CONTRACT-CAPACITY",
                    f"link {link.index} vc {vc}",
                    f"{out.credits[vc]} credits < packet length {packet_length}; "
                    "virtual cut-through can never allocate this VC",
                )


def _check_pair_symmetry(spec: SystemSpec, report: Report) -> None:
    """CONTRACT-WIDTH: directed interface channels come in matched pairs."""
    by_endpoints: dict[tuple[int, int], list[int]] = {}
    for idx, channel in enumerate(spec.channels):
        by_endpoints.setdefault((channel.src, channel.dst), []).append(idx)
    for idx, channel in enumerate(spec.channels):
        if not channel.is_interface:
            continue
        target = f"channel {idx} ({channel.src}->{channel.dst})"
        reverse = [
            spec.channels[j]
            for j in by_endpoints.get((channel.dst, channel.src), [])
            if spec.channels[j].kind is channel.kind
        ]
        if not reverse:
            report.error(
                "CONTRACT-WIDTH",
                target,
                f"no reverse {channel.kind.value} channel "
                f"{channel.dst}->{channel.src}; the credit/response path "
                "of this interface is missing",
            )
            continue
        if not any(
            r.total_bandwidth == channel.total_bandwidth
            and r.n_vcs == channel.n_vcs
            and r.buffer_depth == channel.buffer_depth
            for r in reverse
        ):
            other = reverse[0]
            report.error(
                "CONTRACT-WIDTH",
                target,
                f"asymmetric interface pair: forward is "
                f"{channel.total_bandwidth} flits/cycle x {channel.n_vcs} VCs "
                f"x depth {channel.buffer_depth}, reverse is "
                f"{other.total_bandwidth} x {other.n_vcs} x "
                f"depth {other.buffer_depth}",
            )


def _check_built_robs(network: Network, report: Report) -> None:
    """CONTRACT-ROB: built reorder buffers cover the built PHY skew."""
    for link in network.links:
        if not isinstance(link, HeteroPhyLink):
            continue
        required = rob_capacity(
            link.parallel.bandwidth, link.serial.delay, link.parallel.delay
        )
        if link.rob.capacity < required:
            report.error(
                "CONTRACT-ROB",
                f"link {link.index}",
                f"reorder buffer holds {link.rob.capacity} flits but the "
                f"parallel/serial skew needs {required} "
                f"(B_p={link.parallel.bandwidth}, "
                f"D_s-D_p={link.serial.delay - link.parallel.delay})",
            )
