"""Static topology / configuration linter.

Catches mis-specified systems *before* a simulation burns minutes on
them.  Two layers:

* :func:`lint_spec` works on the pure :class:`SystemSpec` description —
  channel endpoint ranges, duplicate directed channels, missing routing
  tags, virtual cut-through buffer sizing, hetero-PHY reorder-buffer
  sizing against Eq (1), and family-specific VC requirements.
* :func:`lint_network` works on the built network — every routing
  candidate must name a real output port and a virtual channel that
  exists on it, ejection must only be offered at the destination, every
  output VC must start with non-zero credits, and each built hetero-PHY
  reorder buffer must cover the parallel/serial skew.

Both append findings to a :class:`~repro.analysis.report.Report` and are
pure checks: nothing is mutated.
"""

from __future__ import annotations

from repro.core.phy import HeteroPhyLink
from repro.core.rob import rob_capacity
from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.topology.system import SystemSpec
from .report import Report


def lint_spec(spec: SystemSpec, report: Report) -> None:
    """Static checks on the system description and its configuration."""
    config = spec.config
    n_nodes = spec.grid.n_nodes
    seen: dict[tuple[int, int], int] = {}
    for idx, channel in enumerate(spec.channels):
        target = f"channel {idx} ({channel.src}->{channel.dst})"
        if not (0 <= channel.src < n_nodes and 0 <= channel.dst < n_nodes):
            report.error(
                "CHAN-ENDPOINT", target, f"endpoint outside the {n_nodes}-node grid"
            )
        if channel.tag is None:
            report.warning(
                "CHAN-UNTAGGED", target, "untagged channel is invisible to routing"
            )
        key = (channel.src, channel.dst)
        prev = seen.get(key)
        if prev is not None and spec.channels[prev].tag == channel.tag:
            report.error(
                "CHAN-DUPLICATE",
                target,
                f"duplicate of channel {prev} (same endpoints and tag "
                f"{channel.tag!r}); router tags would collide",
            )
        seen[key] = idx
        if channel.kind is ChannelKind.HETERO_PHY:
            _lint_rob_sizing(spec, idx, report)
    # Virtual cut-through: Lemma 1's argument needs whole-packet buffers.
    if config.onchip_buffer < config.packet_length:
        report.error(
            "VCT-BUFFER",
            "config.onchip_buffer",
            f"{config.onchip_buffer} flits < packet length "
            f"{config.packet_length}; virtual cut-through allocation impossible",
        )
    if config.interface_buffer < config.packet_length:
        report.error(
            "VCT-BUFFER",
            "config.interface_buffer",
            f"{config.interface_buffer} flits < packet length {config.packet_length}",
        )
    if spec.family == "serial_hypercube" and config.n_vcs < 2:
        report.error(
            "VC-COUNT",
            "config.n_vcs",
            "minus-first routing needs >= 2 VCs for its phase-split escape",
        )


def _lint_rob_sizing(spec: SystemSpec, idx: int, report: Report) -> None:
    """Eq (1): the reorder buffer must cover the parallel/serial skew."""
    channel = spec.channels[idx]
    assert channel.serial_phy is not None
    required = rob_capacity(
        channel.phy.bandwidth, channel.serial_phy.delay, channel.phy.delay
    )
    configured = spec.config.rob_capacity
    if configured is not None and configured < required:
        report.error(
            "ROB-UNDERSIZED",
            f"channel {idx} ({channel.src}->{channel.dst})",
            f"configured reorder buffer {configured} < Eq (1) bound {required} "
            f"(B_p={channel.phy.bandwidth}, "
            f"D_s-D_p={channel.serial_phy.delay - channel.phy.delay})",
        )
    if channel.serial_phy.delay < channel.phy.delay:
        report.warning(
            "PHY-SKEW",
            f"channel {idx} ({channel.src}->{channel.dst})",
            "serial PHY is faster than the parallel PHY; Eq (1) sizing "
            "assumes the opposite skew",
        )


def lint_network(spec: SystemSpec, network: Network, report: Report) -> None:
    """Checks that need the built network and its installed routing."""
    _lint_credits(network, report)
    _lint_built_robs(spec, network, report)
    _lint_candidates(network, report)


def _lint_credits(network: Network, report: Report) -> None:
    for node, router in enumerate(network.routers):
        for out in router.outputs:
            for vc, credits in enumerate(out.credits):
                if credits <= 0:
                    report.error(
                        "CREDIT-ZERO",
                        f"node {node} port {out.index} vc {vc}",
                        "output VC starts with no credits; it can never be used",
                    )


def _lint_built_robs(spec: SystemSpec, network: Network, report: Report) -> None:
    for link in network.links:
        if not isinstance(link, HeteroPhyLink):
            continue
        required = rob_capacity(
            link.parallel.bandwidth, link.serial.delay, link.parallel.delay
        )
        if link.rob.capacity < required:
            report.error(
                "ROB-UNDERSIZED",
                f"link {link.index}",
                f"built reorder buffer {link.rob.capacity} < Eq (1) bound {required}",
            )


def _lint_candidates(network: Network, report: Report) -> None:
    """Every candidate of every (node, dst, ban-state) must be well-formed."""
    n = network.n_nodes
    bad = 0
    for node in range(n):
        router = network.routers[node]
        n_ports = len(router.outputs)
        for dst in range(n):
            if node == dst:
                continue
            for banned in (False, True):
                probe = Packet(node, dst, length=1, create_cycle=0)
                probe.adaptive_banned = banned
                try:
                    candidates = router.routing_fn(router, probe)
                except Exception as exc:  # noqa: BLE001 - surfaced as a finding
                    report.error(
                        "ROUTE-RAISES",
                        f"node {node} -> dst {dst} (banned={banned})",
                        f"routing function raised {exc!r}",
                    )
                    continue
                if not candidates:
                    report.error(
                        "ROUTE-EMPTY",
                        f"node {node} -> dst {dst} (banned={banned})",
                        "routing returned no candidates; the packet would strand",
                    )
                    continue
                for port, vc, _is_escape in candidates:
                    if not 0 <= port < n_ports:
                        report.error(
                            "CAND-PORT",
                            f"node {node} -> dst {dst}",
                            f"candidate names output port {port}; router has "
                            f"ports 0..{n_ports - 1}",
                        )
                        bad += 1
                        continue
                    out = router.outputs[port]
                    if out.link is None and node != dst:
                        report.error(
                            "CAND-EJECT",
                            f"node {node} -> dst {dst}",
                            "ejection offered away from the destination",
                        )
                        bad += 1
                    if not 0 <= vc < out.n_vcs:
                        report.error(
                            "CAND-VC",
                            f"node {node} -> dst {dst} port {port}",
                            f"candidate names VC {vc}; port has {out.n_vcs} VCs",
                        )
                        bad += 1
                if bad > 32:  # enough evidence; keep the report readable
                    report.warning(
                        "CAND-TRUNCATED",
                        "linter",
                        "further malformed-candidate findings suppressed",
                    )
                    return
