"""Static livelock analysis: bounded misroutes from the routing policies.

The routing functions guarantee livelock freedom through two mechanisms
(Sec 6.2 / 8.1.2 of the paper): adaptive candidates are *profitable*
(they strictly decrease a per-family progress measure), and a packet that
falls back to escape under congestion is *banned* from further free
adaptive use.  This module checks both mechanically, per destination, on
the **routing state graph**:

    vertex  = (node, banned?, subnetwork choice)
    edge    = one candidate hop, carrying the packet state forward

Ban transitions follow the VC allocator exactly: taking an escape
candidate while adaptive candidates were on offer sets ``banned`` (that
is the only way escape is used in that situation — adaptive candidates
win allocation whenever one is free).  The hetero-channel subnetwork
choice rides along in the state, so the absorbing cube->mesh switch of
Eq (5) is modelled faithfully rather than approximated.

If every destination's state graph is acyclic, **no packet can revisit a
routing state**, so hop counts are bounded by the longest path through
the graph; the analysis reports that bound and the worst-case *misroute
slack* (bound minus shortest achievable distance).  A cycle is reported
with its witness states — a potential livelock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.routing.deadlock import find_cycle

#: A routing state: (node, adaptive_banned, subnet_choice).
RoutingState = tuple[int, bool, Optional[str]]


@dataclass
class LivelockAnalysis:
    """Result of the state-graph livelock check on one network."""

    bounded: bool
    #: Worst-case hops of any packet, over all (src, dst) pairs; -1 if unbounded.
    max_hops: int
    #: Worst-case (hop bound - shortest path) over all pairs; -1 if unbounded.
    max_misroute: int
    #: Witness cycle of routing states, when unbounded.
    cycle: list[RoutingState] = field(default_factory=list)
    #: Destination whose state graph contains the witness cycle.
    cycle_dst: int = -1
    n_states: int = 0


def _probe(node: int, dst: int, state: RoutingState) -> Packet:
    packet = Packet(node, dst, length=1, create_cycle=0)
    packet.adaptive_banned = state[1]
    packet.subnet_choice = state[2]
    return packet


def _state_graph(
    network: Network, dst: int
) -> dict[RoutingState, set[RoutingState]]:
    """Reachable routing-state graph for one destination.

    Exploration starts from the fresh-injection state of every source and
    follows candidates, updating the ban flag and any subnetwork choice
    the routing function writes into the probe.  States whose node is the
    destination are terminal (the packet ejects).
    """
    graph: dict[RoutingState, set[RoutingState]] = {}
    frontier: list[RoutingState] = [
        (src, False, None) for src in range(network.n_nodes) if src != dst
    ]
    while frontier:
        state = frontier.pop()
        if state in graph:
            continue
        successors: set[RoutingState] = set()
        graph[state] = successors
        node, banned, _choice = state
        router = network.routers[node]
        probe = _probe(node, dst, state)
        candidates = router.routing_fn(router, probe)
        choice_after = probe.subnet_choice
        # Routing itself may ban the packet (fault-detour livelock rule).
        route_banned = banned or probe.adaptive_banned
        saw_adaptive = any(not is_escape for _p, _v, is_escape in candidates)
        for port, _vc, is_escape in candidates:
            link = router.outputs[port].link
            if link is None:  # ejection: terminal
                continue
            next_node = link.dst_router.node
            # Escape is taken alongside live adaptive candidates only when
            # every adaptive candidate is blocked — which bans the packet.
            next_banned = route_banned or (is_escape and saw_adaptive)
            succ = (next_node, next_banned, choice_after)
            if next_node == dst:
                succ = (dst, next_banned, choice_after)  # terminal vertex
            successors.add(succ)
            if next_node != dst and succ not in graph:
                frontier.append(succ)
    return graph


def _longest_paths(
    graph: dict[RoutingState, set[RoutingState]], dst: int
) -> dict[RoutingState, int]:
    """Longest hop count from each state to ejection (graph must be a DAG)."""
    depth: dict[RoutingState, int] = {}

    def resolve(state: RoutingState) -> int:
        if state[0] == dst:
            return 0
        known = depth.get(state)
        if known is not None:
            return known
        # Iterative post-order to survive deep graphs without recursion.
        stack = [state]
        while stack:
            current = stack[-1]
            if current[0] == dst or current in depth:
                stack.pop()
                continue
            missing = [
                s for s in graph.get(current, ()) if s[0] != dst and s not in depth
            ]
            if missing:
                stack.extend(missing)
                continue
            best = 0
            for succ in graph.get(current, ()):
                best = max(best, (0 if succ[0] == dst else depth[succ]) + 1)
            depth[current] = best
            stack.pop()
        return depth[state]

    for state in graph:
        resolve(state)
    return depth


def _shortest_hops(network: Network, dst: int) -> dict[int, int]:
    """BFS shortest hop counts to ``dst`` over the full candidate edge set."""
    forward: dict[int, set[int]] = {}
    for node in range(network.n_nodes):
        if node == dst:
            continue
        router = network.routers[node]
        nexts: set[int] = set()
        probe = _probe(node, dst, (node, False, None))
        for port, _vc, _esc in router.routing_fn(router, probe):
            link = router.outputs[port].link
            if link is not None:
                nexts.add(link.dst_router.node)
        forward[node] = nexts
    dist = {dst: 0}
    frontier = [dst]
    reverse: dict[int, set[int]] = {}
    for node, nexts in forward.items():
        for nxt in nexts:
            reverse.setdefault(nxt, set()).add(node)
    while frontier:
        nxt_frontier: list[int] = []
        for node in frontier:
            for prev in reverse.get(node, ()):
                if prev not in dist:
                    dist[prev] = dist[node] + 1
                    nxt_frontier.append(prev)
        frontier = nxt_frontier
    return dist


def analyse_livelock(network: Network) -> LivelockAnalysis:
    """Run the bounded-misroute check over every destination."""
    max_hops = 0
    max_misroute = 0
    n_states = 0
    for dst in range(network.n_nodes):
        graph = _state_graph(network, dst)
        n_states += len(graph)
        cycle = find_cycle(graph)
        if cycle:
            return LivelockAnalysis(
                bounded=False,
                max_hops=-1,
                max_misroute=-1,
                cycle=cycle,
                cycle_dst=dst,
                n_states=n_states,
            )
        depth = _longest_paths(graph, dst)
        shortest = _shortest_hops(network, dst)
        for src in range(network.n_nodes):
            if src == dst:
                continue
            bound = depth.get((src, False, None), 0)
            max_hops = max(max_hops, bound)
            minimum = shortest.get(src)
            if minimum is not None:
                max_misroute = max(max_misroute, bound - minimum)
    return LivelockAnalysis(
        bounded=True,
        max_hops=max_hops,
        max_misroute=max_misroute,
        n_states=n_states,
    )
