"""Bounded explicit-state model checking of the credit/VC state space.

The CDG passes (:mod:`repro.analysis.cdg`) are *conservative*: a cycle in
the (extended) dependency graph means deadlock **cannot be ruled out** by
Duato's condition, not that one is reachable.  Under plain-wormhole
assumptions most adaptive families report extended cycles even though the
routers' virtual cut-through allocation makes those cycles unrealizable.
This module adjudicates: it exhaustively explores (up to explicit bounds)
an abstract credit/VC-occupancy state space of the built network and
either

* **realizes** a deadlock — emitting a :class:`CounterexampleTrace` of
  concrete packet injections that replays in the cycle-accurate simulator
  and reproduces a :class:`~repro.sim.stats.DeadlockError`; or
* **refutes** the cycle — ``refuted-exhaustive`` when the bounded state
  space was explored completely, ``refuted-bounded`` when an exploration
  cap was hit first.

Abstraction (sound for counterexample *generation*, since every trace is
re-validated by replay): each ``(link, vc)`` pair is a FIFO **channel**
holding whole packets, with capacity ``credits // packet_length`` — the
router's virtual cut-through allocation rule (`needed = packet.length`)
made exact.  A packet at the head of a channel sits at the link's
downstream router and moves by the real VC-allocator's preference: any
free adaptive target first; the escape fallback only when no adaptive
target has room, setting ``adaptive_banned`` exactly like
``Router._try_vc_allocate``.  A state is a **deadlock** when some packet
is buffered and no channel head can move (ejection included).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.routing.deadlock import EscapeChannel
from repro.sim.stats import DeadlockError, Stats

#: Abstract packet: (destination node, adaptive_banned, subnet_choice).
AbstractPacket = tuple[int, bool, Optional[str]]
#: Channel occupancies: one FIFO tuple of abstract packets per channel.
State = tuple[tuple[AbstractPacket, ...], ...]

VERDICT_DEADLOCK = "deadlock"
VERDICT_REFUTED_EXHAUSTIVE = "refuted-exhaustive"
VERDICT_REFUTED_BOUNDED = "refuted-bounded"


@dataclass
class CounterexampleTrace:
    """A concrete injection sequence driving the network into deadlock.

    Replaying the injections (in order, all at cycle 0) in the
    cycle-accurate simulator reproduces the deadlock as a
    :class:`~repro.sim.stats.DeadlockError`; see
    :func:`replay_counterexample`.
    """

    #: (src, dst) per injected packet, in injection order.
    injections: list[tuple[int, int]]
    packet_length: int
    #: Occupied channels of the deadlock state: (link, vc, n_packets).
    deadlock_channels: list[tuple[int, int, int]]

    def to_dict(self) -> dict:
        return {
            "injections": [list(pair) for pair in self.injections],
            "packet_length": self.packet_length,
            "deadlock_channels": [list(c) for c in self.deadlock_channels],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CounterexampleTrace":
        return cls(
            injections=[(int(s), int(d)) for s, d in data["injections"]],
            packet_length=int(data["packet_length"]),
            deadlock_channels=[
                (int(link), int(vc), int(n))
                for link, vc, n in data["deadlock_channels"]
            ],
        )

    def render(self) -> str:
        """Forensics-style multi-line description of the counterexample."""
        lines = [
            f"== deadlock counterexample: {len(self.injections)} packet(s), "
            f"{self.packet_length} flits each =="
        ]
        lines.extend(
            f"  inject #{i}: node {src} -> node {dst}"
            for i, (src, dst) in enumerate(self.injections)
        )
        lines.append("  wedged channels (link, vc, packets):")
        lines.extend(
            f"    link {link} vc {vc}: {n} packet(s)"
            for link, vc, n in self.deadlock_channels
        )
        return "\n".join(lines)


@dataclass
class ModelCheckResult:
    """Outcome of one bounded exploration."""

    verdict: str
    explored: int
    #: True iff the frontier emptied before any cap was hit.
    exhaustive: bool
    max_states: int
    max_packets: int
    counterexample: Optional[CounterexampleTrace] = None
    #: Channels whose occupancy the search prioritized (the CDG cycle).
    focus: list[EscapeChannel] = field(default_factory=list)

    @property
    def deadlock(self) -> bool:
        return self.verdict == VERDICT_DEADLOCK


class _Model:
    """Cached view of the network used by the explorer."""

    def __init__(self, network: Network, packet_length: int) -> None:
        self.network = network
        self.packet_length = packet_length
        self.n_channels = 0
        #: (link, vc) -> channel id, and the inverses.
        self.channel_id: dict[EscapeChannel, int] = {}
        self.channel_key: list[EscapeChannel] = []
        self.capacity: list[int] = []
        #: channel id -> node holding the channel's head packet.
        self.holder: list[int] = []
        for link in network.links:
            assert link.src_router is not None and link.dst_router is not None
            out = link.src_router.outputs[link.src_port]
            for vc in range(out.n_vcs):
                cid = self.n_channels
                self.n_channels += 1
                self.channel_id[(link.index, vc)] = cid
                self.channel_key.append((link.index, vc))
                self.capacity.append(max(0, out.credits[vc] // packet_length))
                self.holder.append(link.dst_router.node)
        #: (node, dst, banned, choice) -> ([(channel, is_escape)], choice',
        #: banned') — routing may itself set the ban (fault detours).
        self._routes: dict[
            tuple[int, int, bool, Optional[str]],
            tuple[list[tuple[int, bool]], Optional[str], bool],
        ] = {}

    def routes(
        self, node: int, dst: int, banned: bool, choice: Optional[str]
    ) -> tuple[list[tuple[int, bool]], Optional[str], bool]:
        key = (node, dst, banned, choice)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        router = self.network.routers[node]
        probe = Packet(node, dst, length=1, create_cycle=0)
        probe.adaptive_banned = banned
        probe.subnet_choice = choice
        targets: list[tuple[int, bool]] = []
        for port, vc, is_escape in router.routing_fn(router, probe):
            link = router.outputs[port].link
            if link is None:
                continue
            targets.append((self.channel_id[(link.index, vc)], is_escape))
        result = (targets, probe.subnet_choice, probe.adaptive_banned)
        self._routes[key] = result
        return result


def _allocable(
    model: _Model, state: State, targets: list[tuple[int, bool]], banned: bool
) -> tuple[list[int], bool]:
    """Channels the VC allocator could grant, plus the resulting ban flag.

    Mirrors ``Router._try_vc_allocate``: adaptive targets with room are
    preferred (all are explored — the credit-count tiebreak is
    nondeterminism here); the escape fallback applies only when no
    adaptive target has room and bans the packet if adaptive candidates
    existed at all.
    """
    adaptive = [
        cid
        for cid, is_escape in targets
        if not is_escape and len(state[cid]) < model.capacity[cid]
    ]
    if adaptive:
        return adaptive, banned
    saw_adaptive = any(not is_escape for _cid, is_escape in targets)
    escape = [
        cid
        for cid, is_escape in targets
        if is_escape and len(state[cid]) < model.capacity[cid]
    ]
    return escape, banned or saw_adaptive


#: A move: ("hop", src_channel, dst_channel) | ("eject", channel) |
#:         ("inject", src, dst, first_channel).
Move = tuple


def _channel_moves(model: _Model, state: State) -> list[Move]:
    moves: list[Move] = []
    for cid, fifo in enumerate(state):
        if not fifo:
            continue
        dst, banned, choice = fifo[0]
        node = model.holder[cid]
        if node == dst:
            moves.append(("eject", cid))
            continue
        targets, _choice_after, route_banned = model.routes(node, dst, banned, choice)
        allocable, _new_banned = _allocable(model, state, targets, route_banned)
        moves.extend(("hop", cid, target) for target in allocable)
    return moves


def _apply(model: _Model, state: State, move: Move) -> State:
    channels = list(state)
    if move[0] == "eject":
        cid = move[1]
        channels[cid] = channels[cid][1:]
        return tuple(channels)
    if move[0] == "hop":
        src_cid, dst_cid = move[1], move[2]
        dst, banned, choice = channels[src_cid][0]
        node = model.holder[src_cid]
        targets, choice_after, route_banned = model.routes(node, dst, banned, choice)
        _allocable_targets, new_banned = _allocable(model, state, targets, route_banned)
        channels[src_cid] = channels[src_cid][1:]
        channels[dst_cid] = channels[dst_cid] + ((dst, new_banned, choice_after),)
        return tuple(channels)
    # ("inject", src, dst, first_channel)
    _kind, src, dst, cid = move
    targets, choice_after, route_banned = model.routes(src, dst, False, None)
    _allocable_targets, inject_banned = _allocable(model, state, targets, route_banned)
    channels[cid] = channels[cid] + ((dst, inject_banned, choice_after),)
    return tuple(channels)


def cycle_feed_pool(
    network: Network, cycle: Sequence[EscapeChannel], *, packet_length: int
) -> list[tuple[int, int]]:
    """(src, dst) pairs whose very first hop can land on a cycle channel.

    This is the injection pool used when adjudicating a CDG cycle: traffic
    that cannot even enter the suspect channels cannot be part of a
    minimal deadlock over them.
    """
    model = _Model(network, packet_length)
    focus = {model.channel_id[c] for c in cycle if c in model.channel_id}
    pool: list[tuple[int, int]] = []
    for src in range(network.n_nodes):
        for dst in range(network.n_nodes):
            if src == dst:
                continue
            targets, _choice, _banned = model.routes(src, dst, False, None)
            if any(cid in focus for cid, _esc in targets):
                pool.append((src, dst))
    return pool


def check_network(
    network: Network,
    *,
    packet_length: int,
    pool: Optional[Sequence[tuple[int, int]]] = None,
    focus_cycle: Sequence[EscapeChannel] = (),
    max_states: int = 20_000,
    max_packets: Optional[int] = None,
) -> ModelCheckResult:
    """Bounded best-first search for a reachable deadlock state.

    ``pool`` is the set of (src, dst) injections the adversary may use
    (default: every pair — prefer :func:`cycle_feed_pool` when
    adjudicating a specific CDG cycle).  ``focus_cycle`` steers the search
    toward states that fill the given channels.  ``max_packets`` bounds
    simultaneous in-network packets; ``None`` sizes it from the focus
    cycle — a deadlock over the cycle needs every cycle channel full, so
    the bound must at least cover their summed capacity (falling back to
    64 without a focus).  ``max_states`` bounds explored states.
    Injections are replenishable, so a state is fully described by its
    channel occupancies.
    """
    model = _Model(network, packet_length)
    if max_packets is None:
        in_focus = [
            model.capacity[model.channel_id[c]]
            for c in focus_cycle
            if c in model.channel_id
        ]
        max_packets = sum(in_focus) + 2 if in_focus else 64
    if pool is None:
        pool = [
            (s, d)
            for s in range(network.n_nodes)
            for d in range(network.n_nodes)
            if s != d
        ]
    focus = [model.channel_id[c] for c in focus_cycle if c in model.channel_id]
    initial: State = tuple(() for _ in range(model.n_channels))

    def priority(state: State) -> tuple[int, int]:
        focus_fill = sum(len(state[cid]) for cid in focus)
        total = sum(len(fifo) for fifo in state)
        return (-focus_fill, -total)

    # Tie-break newest-first: among equally full states the search dives
    # (depth-first) instead of sweeping the whole equal-priority plateau,
    # which is what actually reaches "all suspect channels full" states.
    counter = 0
    frontier: list[tuple[tuple[int, int], int, State]] = [
        (priority(initial), -counter, initial)
    ]
    seen: set[State] = {initial}
    parents: dict[State, tuple[State, Move]] = {}
    explored = 0
    truncated = False
    while frontier:
        if explored >= max_states:
            truncated = True
            break
        _prio, _tick, state = heapq.heappop(frontier)
        explored += 1
        moves = _channel_moves(model, state)
        occupancy = sum(len(fifo) for fifo in state)
        if occupancy and not moves:
            trace = _build_trace(model, state, parents)
            return ModelCheckResult(
                verdict=VERDICT_DEADLOCK,
                explored=explored,
                exhaustive=False,
                max_states=max_states,
                max_packets=max_packets,
                counterexample=trace,
                focus=list(focus_cycle),
            )
        if occupancy < max_packets:
            for src, dst in pool:
                targets, _choice, route_banned = model.routes(src, dst, False, None)
                allocable, _banned = _allocable(model, state, targets, route_banned)
                moves.extend(("inject", src, dst, cid) for cid in allocable)
        for move in moves:
            successor = _apply(model, state, move)
            if successor in seen:
                continue
            seen.add(successor)
            parents[successor] = (state, move)
            counter += 1
            heapq.heappush(frontier, (priority(successor), -counter, successor))
    return ModelCheckResult(
        verdict=VERDICT_REFUTED_BOUNDED if truncated else VERDICT_REFUTED_EXHAUSTIVE,
        explored=explored,
        exhaustive=not truncated,
        max_states=max_states,
        max_packets=max_packets,
        focus=list(focus_cycle),
    )


def _build_trace(
    model: _Model, deadlock: State, parents: dict[State, tuple[State, Move]]
) -> CounterexampleTrace:
    moves: list[Move] = []
    state = deadlock
    while state in parents:
        state, move = parents[state]
        moves.append(move)
    moves.reverse()
    injections = [
        (move[1], move[2]) for move in moves if move[0] == "inject"
    ]
    occupied = [
        (*model.channel_key[cid], len(fifo))
        for cid, fifo in enumerate(deadlock)
        if fifo
    ]
    return CounterexampleTrace(
        injections=injections,
        packet_length=model.packet_length,
        deadlock_channels=occupied,
    )


# -- replay ------------------------------------------------------------------


class _TraceWorkload:
    """Re-issues the counterexample's injection pattern for ``rounds`` cycles.

    The abstract deadlock state fixes *which* packets occupy *which*
    channels, but the cycle-accurate simulator schedules arrivals itself —
    a single-shot injection need not land in the adversarial FIFO order.
    Sustained pressure does not have that problem: repeating the pattern
    keeps the suspect channels saturated, so a network that can wedge on
    this pattern does, while a sound escape discipline keeps draining it.
    """

    def __init__(self, trace: CounterexampleTrace, rounds: int) -> None:
        self._trace = trace
        self._rounds = rounds

    def step(self, now: int) -> list[Packet]:
        if now >= self._rounds:
            return []
        return [
            Packet(src, dst, self._trace.packet_length, now)
            for src, dst in self._trace.injections
        ]

    def done(self, now: int) -> bool:
        return now >= self._rounds


@dataclass
class ReplayResult:
    """Outcome of replaying a counterexample in the real simulator."""

    deadlocked: bool
    cycles: int
    error: Optional[DeadlockError] = None
    #: Path of the forensics bundle, when a session captured one.
    bundle_path: Optional[str] = None


def replay_counterexample(
    network: Network,
    stats: Stats,
    trace: CounterexampleTrace,
    *,
    rounds: int = 50,
    deadlock_threshold: int = 500,
    max_cycles: int = 50_000,
    forensics=None,
) -> ReplayResult:
    """Replay a counterexample trace in the cycle-accurate simulator.

    Returns whether the network actually wedged (``DeadlockError``) — the
    ground truth the model checker's verdict is validated against.  Pass a
    ``ForensicsSession`` as ``forensics`` to capture a postmortem bundle
    of the wedged state, exactly like a production deadlock would.
    """
    from repro.sim.engine import Engine

    engine = Engine(
        network,
        _TraceWorkload(trace, rounds),
        stats,
        deadlock_threshold=deadlock_threshold,
    )
    if forensics is not None:
        engine.forensics = forensics
    from repro.sim.stats import DrainTimeoutError

    try:
        engine.run_until_drained(max_cycles)
    except DrainTimeoutError:
        # Traffic still moving at the deadline: slow, but not a deadlock.
        return ReplayResult(deadlocked=False, cycles=engine.cycle)
    except DeadlockError as exc:
        return ReplayResult(
            deadlocked=True,
            cycles=engine.cycle,
            error=exc,
            bundle_path=getattr(exc, "bundle_path", None),
        )
    return ReplayResult(deadlocked=False, cycles=engine.cycle)
