"""Certification orchestration: the ``repro prove`` backend.

One :func:`prove_network` run stacks every static pass the repository has
over one built system and adjudicates the result into a
:class:`~repro.analysis.certificate.Certificate`:

1. the ``repro check`` passes (lint, deadlock/CDG, livelock) via
   :func:`~repro.analysis.verifier.verify_network`;
2. interface contracts (:mod:`repro.analysis.contracts`);
3. exhaustive reachability (:mod:`repro.analysis.reachability`), repeated
   under every single-link fault mask of the family's safe-to-fail links;
4. bounded model checking (:mod:`repro.analysis.modelcheck`) whenever the
   CDG pass reported a cycle: the cycle is either **realized** — a
   concrete counterexample trace, validated by replaying it in the
   cycle-accurate simulator, keeps the report failing — or **refuted**,
   which downgrades the CDG error to a ``CDG-CYCLE-REFUTED`` warning.

The refutation step is what lets ``repro prove --all`` certify the
adaptive families under the ``wormhole`` assumption: their extended CDGs
are cyclic (``repro check --mode wormhole`` reports that faithfully), but
the cycles are unrealizable under the routers' virtual cut-through
allocation, and the model checker proves exactly that on the instance at
hand.  ``repro check`` semantics are unchanged — only ``prove``
adjudicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.network import Network
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.stats import Stats
from repro.telemetry.runstore import git_revision, system_digest, utc_now_iso
from repro.topology.grid import ChipletGrid
from repro.topology.system import FAMILIES, SystemSpec, build_system
from .cdg import MODES, build_cdg
from .certificate import Certificate
from .contracts import check_contracts
from .modelcheck import (
    ModelCheckResult,
    check_network,
    cycle_feed_pool,
    replay_counterexample,
)
from .reachability import fold_reachability, reachability_pass, sweep_fault_masks
from .report import Finding, Report, Severity
from .verifier import DEFAULT_CHIPLETS, DEFAULT_NODES, verify_network

#: CDG findings the model checker may adjudicate.
_CYCLE_CODES = ("CDG-CYCLE", "CDG-CYCLE-EXTENDED")


@dataclass
class ProveResult:
    """Everything one certification run produced."""

    report: Report
    certificate: Certificate
    modelcheck: Optional[ModelCheckResult] = None

    @property
    def certified(self) -> bool:
        return self.certificate.certified


def prove_network(
    spec: SystemSpec,
    factory: Callable[[], Network],
    *,
    mode: str = "vct",
    fault_masks: bool = True,
    max_states: int = 4_000,
    max_packets: Optional[int] = None,
    replay: bool = True,
) -> ProveResult:
    """Run every certification pass over one system and adjudicate.

    ``factory`` must build a fresh network per call (fault injection and
    counterexample replay both consume one).  ``fault_masks=False`` skips
    the per-link sweep; ``max_states`` / ``max_packets`` bound the model
    checker; ``replay=False`` trusts an abstract deadlock verdict without
    simulator validation (faster, used by tests that replay separately).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    network = factory()
    report = verify_network(spec, network, mode=mode)

    report.passes.append("contracts")
    check_contracts(spec, network, report)

    report.passes.append("reachability")
    analysis = reachability_pass(network, report)
    report.metrics["reach_states"] = analysis.n_states
    if analysis.max_hops >= 0:
        report.metrics["reach_max_hops"] = analysis.max_hops

    sweep_info: dict = {"swept": 0, "links": [], "broken": []}
    if fault_masks:
        report.passes.append("fault-sweep")
        sweep = sweep_fault_masks(factory, spec)
        sweep_info = {
            "swept": sweep.swept,
            "links": list(sweep.links),
            "broken": list(sweep.broken),
        }
        report.metrics["fault_masks"] = sweep.swept
        for link, masked in zip(sweep.links, sweep.analyses):
            if not masked.ok:
                fold_reachability(
                    masked, report, fault_target=f"fault link {link}: "
                )

    mc_result: Optional[ModelCheckResult] = None
    mc_info: dict = {}
    if any(f.code in _CYCLE_CODES for f in report.errors):
        report.passes.append("modelcheck")
        mc_result, mc_info = _adjudicate(
            spec,
            network,
            factory,
            report,
            mode=mode,
            max_states=max_states,
            max_packets=max_packets,
            replay=replay,
        )

    certificate = Certificate(
        system=spec.name,
        family=spec.family,
        mode=mode,
        grid=[
            spec.grid.chiplets_x,
            spec.grid.chiplets_y,
            spec.grid.nodes_x,
            spec.grid.nodes_y,
        ],
        created=utc_now_iso(),
        git_rev=git_revision(),
        config_hash=system_digest(spec),
        certified=report.ok,
        report=report.to_dict(),
        fault_masks=sweep_info,
        modelcheck=mc_info,
    )
    return ProveResult(report=report, certificate=certificate, modelcheck=mc_result)


def _adjudicate(
    spec: SystemSpec,
    network: Network,
    factory: Callable[[], Network],
    report: Report,
    *,
    mode: str,
    max_states: int,
    max_packets: Optional[int],
    replay: bool,
) -> tuple[ModelCheckResult, dict]:
    """Model-check the reported CDG cycle; downgrade it if refuted."""
    graph = build_cdg(network, mode)
    cycle = graph.cycle()
    packet_length = spec.config.packet_length
    pool = cycle_feed_pool(network, cycle, packet_length=packet_length)
    result = check_network(
        network,
        packet_length=packet_length,
        pool=pool,
        focus_cycle=cycle,
        max_states=max_states,
        max_packets=max_packets,
    )
    info: dict = {
        "verdict": result.verdict,
        "explored": result.explored,
        "exhaustive": result.exhaustive,
        "max_states": result.max_states,
        "max_packets": result.max_packets,
        "cycle": [list(c) for c in cycle],
        "pool_size": len(pool),
    }
    report.metrics["mc_explored"] = result.explored
    if result.deadlock:
        trace = result.counterexample
        assert trace is not None
        info["counterexample"] = trace.to_dict()
        replay_note = "replay not attempted"
        if replay:
            replay_network = factory()
            stats = replay_network.stats
            if not isinstance(stats, Stats):  # pragma: no cover - custom sinks
                stats = Stats()
                replay_network.stats = stats
                for router in replay_network.routers:
                    router._stats = stats
            outcome = replay_counterexample(replay_network, stats, trace)
            info["replay"] = {
                "deadlocked": outcome.deadlocked,
                "cycles": outcome.cycles,
            }
            if outcome.deadlocked:
                replay_note = (
                    f"replay wedged the simulator at cycle {outcome.cycles}"
                )
            else:
                replay_note = "replay did NOT wedge the simulator"
                report.warning(
                    "MC-UNCONFIRMED",
                    "modelcheck",
                    "abstract deadlock state was not reproduced by trace "
                    "replay; treating the CDG cycle as unresolved",
                )
        report.error(
            "MC-DEADLOCK",
            f"{len(trace.injections)}-packet trace",
            f"the reported CDG cycle is realizable: bounded search reached "
            f"a deadlock state after exploring {result.explored} states "
            f"({replay_note})",
        )
    else:
        _downgrade_cycle_findings(report, result)
    return result, info


def _downgrade_cycle_findings(report: Report, result: ModelCheckResult) -> None:
    """Replace CDG cycle errors with ``CDG-CYCLE-REFUTED`` warnings."""
    scope = (
        "the bounded state space was explored exhaustively"
        if result.exhaustive
        else f"no deadlock within {result.explored} explored states"
    )
    kept: list[Finding] = []
    for finding in report.findings:
        if finding.severity is Severity.ERROR and finding.code in _CYCLE_CODES:
            kept.append(
                Finding(
                    Severity.WARNING,
                    "CDG-CYCLE-REFUTED",
                    finding.target,
                    f"{finding.message} — refuted by the model checker: "
                    f"{scope}, so the cycle is unrealizable under the "
                    "routers' virtual cut-through allocation",
                )
            )
        else:
            kept.append(finding)
    report.findings[:] = kept


def prove_family(
    family: str,
    *,
    chiplets: tuple[int, int] = DEFAULT_CHIPLETS,
    nodes: tuple[int, int] = DEFAULT_NODES,
    config: Optional[SimConfig] = None,
    mode: str = "vct",
    fault_masks: bool = True,
    max_states: int = 4_000,
    max_packets: Optional[int] = None,
    routing=None,
) -> ProveResult:
    """Certify a representative instance of a registered family."""
    if family not in FAMILIES:
        raise ValueError(f"unknown system family {family!r}")
    config = config or SimConfig()
    grid = ChipletGrid(chiplets[0], chiplets[1], nodes[0], nodes[1])
    spec = build_system(family, grid, config)

    def factory() -> Network:
        return build_network(spec, Stats(), routing=routing)

    return prove_network(
        spec,
        factory,
        mode=mode,
        fault_masks=fault_masks,
        max_states=max_states,
        max_packets=max_packets,
    )


def prove_all(
    *,
    chiplets: tuple[int, int] = DEFAULT_CHIPLETS,
    nodes: tuple[int, int] = DEFAULT_NODES,
    config: Optional[SimConfig] = None,
    modes: tuple[str, ...] = MODES,
    fault_masks: bool = True,
    max_states: int = 4_000,
    max_packets: Optional[int] = None,
) -> list[ProveResult]:
    """Certify every registered family under every requested mode."""
    results = []
    for family in FAMILIES:
        for mode in modes:
            results.append(
                prove_family(
                    family,
                    chiplets=chiplets,
                    nodes=nodes,
                    config=config,
                    mode=mode,
                    fault_masks=fault_masks,
                    max_states=max_states,
                    max_packets=max_packets,
                )
            )
    return results
