"""Exhaustive reachability proofs over the routing function.

The livelock pass (:mod:`repro.analysis.livelock`) proves that no packet
can revisit a routing state.  That alone does not prove *delivery*: a
routing function could still strand a packet in a state with no usable
candidate (a dead-end), or leave a blocking state without an escape
candidate — in which case the Lemma 1 deadlock argument, which assumes
every blocked packet can always fall back to the escape subnetwork, does
not apply.  This pass closes both gaps by exhaustive exploration of every
reachable routing state

    state = (node, adaptive_banned, subnet_choice)

for every destination, proving three properties:

1. **no dead-ends** — every reachable non-terminal state offers at least
   one non-ejection candidate (and the routing function never raises);
2. **escape coverage** — every reachable non-terminal state offers at
   least one escape candidate, so a packet whose adaptive candidates are
   all blocked can always fall back to C0 (the premise of Theorem 1);
3. **delivery** — the reachable state graph is acyclic, which together
   with (1) bounds every packet's hop count by the longest path through
   the graph: every packet is delivered within ``max_hops`` hops.

:func:`sweep_fault_masks` repeats the proof under every single-link fault
mask (each safe-to-fail link from
:func:`repro.routing.fault.adaptive_link_indices` failed on its own),
which turns the paper's Sec 9 fault-tolerance claim — hetero interfaces
keep an intact escape under adaptive-link failures — into a certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.routing.deadlock import find_cycle
from repro.routing.fault import UnroutableError, adaptive_link_indices, apply_faults
from repro.topology.system import SystemSpec
from .report import Report

#: A routing state, as in :mod:`repro.analysis.livelock`.
RoutingState = tuple[int, bool, Optional[str]]

#: Builds a fresh network (routing functions are mutated by fault masks).
NetworkFactory = Callable[[], Network]


@dataclass
class ReachabilityAnalysis:
    """Result of the per-destination routing-state exploration."""

    n_states: int = 0
    #: Longest delivery path over all reachable states; -1 while unbounded.
    max_hops: int = -1
    #: (dst, state) pairs whose candidate set is empty or ejection-only.
    dead_ends: list[tuple[int, RoutingState]] = field(default_factory=list)
    #: (dst, state) pairs offering no escape candidate.
    uncovered: list[tuple[int, RoutingState]] = field(default_factory=list)
    #: (dst, state, error) triples where the routing function raised.
    failures: list[tuple[int, RoutingState, str]] = field(default_factory=list)
    #: Witness state cycle (delivery unprovable), when one exists.
    cycle: list[RoutingState] = field(default_factory=list)
    cycle_dst: int = -1

    @property
    def ok(self) -> bool:
        return not (self.dead_ends or self.uncovered or self.failures or self.cycle)


def _probe(node: int, dst: int, state: RoutingState) -> Packet:
    packet = Packet(node, dst, length=1, create_cycle=0)
    packet.adaptive_banned = state[1]
    packet.subnet_choice = state[2]
    return packet


def analyse_reachability(network: Network) -> ReachabilityAnalysis:
    """Explore every reachable routing state of every destination."""
    analysis = ReachabilityAnalysis()
    max_hops = 0
    bounded = True
    for dst in range(network.n_nodes):
        graph = _explore(network, dst, analysis)
        analysis.n_states += len(graph)
        if not analysis.cycle:
            cycle = find_cycle(graph)
            if cycle:
                analysis.cycle = cycle
                analysis.cycle_dst = dst
        if analysis.cycle:
            bounded = False
            continue
        max_hops = max(max_hops, _longest_path(graph, dst))
    if bounded:
        analysis.max_hops = max_hops
    return analysis


def _explore(
    network: Network, dst: int, analysis: ReachabilityAnalysis
) -> dict[RoutingState, set[RoutingState]]:
    """One destination's reachable state graph, recording violations."""
    graph: dict[RoutingState, set[RoutingState]] = {}
    frontier: list[RoutingState] = [
        (src, False, None) for src in range(network.n_nodes) if src != dst
    ]
    while frontier:
        state = frontier.pop()
        if state in graph:
            continue
        successors: set[RoutingState] = set()
        graph[state] = successors
        node, banned, _choice = state
        router = network.routers[node]
        probe = _probe(node, dst, state)
        try:
            candidates = router.routing_fn(router, probe)
        except UnroutableError as exc:
            analysis.dead_ends.append((dst, state))
            del exc
            continue
        except Exception as exc:  # noqa: BLE001 - surfaced as a finding
            analysis.failures.append((dst, state, repr(exc)))
            continue
        choice_after = probe.subnet_choice
        # Routing may itself ban the packet (fault detours, Sec 6.2).
        route_banned = banned or probe.adaptive_banned
        forwarding = [c for c in candidates if router.outputs[c[0]].link is not None]
        if not forwarding:
            analysis.dead_ends.append((dst, state))
            continue
        if not any(is_escape for _p, _v, is_escape in forwarding):
            analysis.uncovered.append((dst, state))
        saw_adaptive = any(not is_escape for _p, _v, is_escape in forwarding)
        for port, _vc, is_escape in forwarding:
            link = router.outputs[port].link
            assert link is not None
            next_node = link.dst_router.node
            next_banned = route_banned or (is_escape and saw_adaptive)
            succ = (next_node, next_banned, choice_after)
            successors.add(succ)
            if next_node != dst and succ not in graph:
                frontier.append(succ)
    return graph


def _longest_path(graph: dict[RoutingState, set[RoutingState]], dst: int) -> int:
    """Longest hop count from any state to ejection (graph must be a DAG)."""
    depth: dict[RoutingState, int] = {}
    for start in graph:
        stack = [start]
        while stack:
            current = stack[-1]
            if current[0] == dst or current in depth:
                stack.pop()
                continue
            missing = [
                s for s in graph.get(current, ()) if s[0] != dst and s not in depth
            ]
            if missing:
                stack.extend(missing)
                continue
            best = 0
            for succ in graph.get(current, ()):
                best = max(best, (0 if succ[0] == dst else depth[succ]) + 1)
            depth[current] = best
            stack.pop()
    return max(depth.values(), default=0)


@dataclass
class FaultSweep:
    """Reachability verdicts under every swept single-link fault mask."""

    #: Link indices swept (each failed on its own).
    links: list[int] = field(default_factory=list)
    #: Links whose failure broke a reachability property.
    broken: list[int] = field(default_factory=list)
    #: Per-link analyses, in :attr:`links` order.
    analyses: list[ReachabilityAnalysis] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.broken

    @property
    def swept(self) -> int:
        return len(self.links)


def sweep_fault_masks(
    factory: NetworkFactory,
    spec: SystemSpec,
    *,
    links: Optional[Sequence[int]] = None,
) -> FaultSweep:
    """Re-prove reachability with each safe-to-fail link failed on its own.

    ``factory`` must build a fresh network per mask (fault injection wraps
    the installed routing functions in place).  ``links`` overrides the
    default mask set of :func:`~repro.routing.fault.adaptive_link_indices`.
    """
    sweep = FaultSweep()
    if links is None:
        links = adaptive_link_indices(factory(), spec)
    for link in links:
        network = factory()
        apply_faults(network, [link])
        analysis = analyse_reachability(network)
        sweep.links.append(link)
        sweep.analyses.append(analysis)
        if not analysis.ok:
            sweep.broken.append(link)
    return sweep


def reachability_pass(
    network: Network,
    report: Report,
    *,
    fault_target: str = "",
) -> ReachabilityAnalysis:
    """Run :func:`analyse_reachability` and fold findings into ``report``.

    ``fault_target`` prefixes finding targets (e.g. ``"fault link 12: "``)
    so one report can hold the fault-free pass plus the whole mask sweep.
    """
    analysis = analyse_reachability(network)
    fold_reachability(analysis, report, fault_target=fault_target)
    return analysis


def fold_reachability(
    analysis: ReachabilityAnalysis,
    report: Report,
    *,
    fault_target: str = "",
) -> None:
    """Translate a :class:`ReachabilityAnalysis` into report findings."""
    for dst, state in analysis.dead_ends[:8]:
        report.error(
            "REACH-DEADEND",
            f"{fault_target}dst {dst} state {state}",
            "reachable routing state has no usable forwarding candidate; "
            "a packet in this state strands",
        )
    if len(analysis.dead_ends) > 8:
        report.warning(
            "REACH-TRUNCATED",
            f"{fault_target}reachability",
            f"{len(analysis.dead_ends) - 8} further dead-end states suppressed",
        )
    for dst, state in analysis.uncovered[:8]:
        report.error(
            "REACH-UNCOVERED",
            f"{fault_target}dst {dst} state {state}",
            "reachable routing state offers no escape candidate; the "
            "Lemma 1 fallback argument does not cover this blocking state",
        )
    for dst, state, error in analysis.failures[:8]:
        report.error(
            "REACH-RAISES",
            f"{fault_target}dst {dst} state {state}",
            f"routing function raised {error}",
        )
    if analysis.cycle:
        shown = " -> ".join(
            f"(node {node}, banned={banned})"
            for node, banned, _c in analysis.cycle[:8]
        )
        report.error(
            "REACH-CYCLE",
            f"{fault_target}dst {analysis.cycle_dst}",
            f"routing state cycle {shown}; delivery within a hop bound "
            "cannot be proven",
        )
