"""Findings and reports produced by the static verification passes.

Every analysis pass (deadlock, livelock, lint) appends :class:`Finding`
records to a shared :class:`Report`.  A finding carries a severity, a
stable machine-readable code (used by tests and CI gating), the entity it
concerns and a human-readable message.  ``Report.ok`` is the CI gate: a
report passes iff it contains no ERROR findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is.  Only ERROR findings fail a report."""

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    """One issue (or notable fact) surfaced by an analysis pass."""

    severity: Severity
    code: str  # stable identifier, e.g. "CDG-CYCLE" or "ROB-UNDERSIZED"
    target: str  # what the finding concerns, e.g. "link 12" or "node 3"
    message: str

    def __str__(self) -> str:
        return f"{self.severity.name:7s} {self.code:18s} {self.target}: {self.message}"


@dataclass
class Report:
    """Accumulated findings of all verification passes over one system."""

    system: str
    mode: str = "vct"
    findings: list[Finding] = field(default_factory=list)
    #: Names of the passes that ran (order preserved).
    passes: list[str] = field(default_factory=list)
    #: Headline numbers of the analyses (channel counts, hop bounds, ...).
    metrics: dict[str, int | float] = field(default_factory=dict)

    def add(self, severity: Severity, code: str, target: str, message: str) -> None:
        self.findings.append(Finding(severity, code, target, message))

    def error(self, code: str, target: str, message: str) -> None:
        self.add(Severity.ERROR, code, target, message)

    def warning(self, code: str, target: str, message: str) -> None:
        self.add(Severity.WARNING, code, target, message)

    def info(self, code: str, target: str, message: str) -> None:
        self.add(Severity.INFO, code, target, message)

    @property
    def ok(self) -> bool:
        """True iff no ERROR finding was recorded (the CI gate)."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def codes(self) -> set[str]:
        """Distinct finding codes (handy in tests)."""
        return {f.code for f in self.findings}

    def to_dict(self) -> dict:
        """JSON-serializable form (stable schema; see docs/analysis.md)."""
        return {
            "system": self.system,
            "mode": self.mode,
            "ok": self.ok,
            "passes": list(self.passes),
            "metrics": dict(self.metrics),
            "findings": [
                {
                    "severity": f.severity.name,
                    "code": f.code,
                    "target": f.target,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        """Inverse of :meth:`to_dict` (the derived ``ok`` field is ignored)."""
        report = cls(
            system=data["system"],
            mode=data.get("mode", "vct"),
            passes=list(data.get("passes", [])),
            metrics=dict(data.get("metrics", {})),
        )
        for entry in data.get("findings", []):
            report.add(
                Severity[entry["severity"]],
                entry["code"],
                entry["target"],
                entry["message"],
            )
        return report

    def render(self, *, verbose: bool = False) -> str:
        """Human-readable multi-line summary of the report."""
        lines = [f"== {self.system} [mode={self.mode}] =="]
        shown = (
            self.findings
            if verbose
            else [f for f in self.findings if f.severity is not Severity.INFO]
        )
        lines.extend(f"  {finding}" for finding in shown)
        if self.metrics:
            metrics = ", ".join(f"{k}={v}" for k, v in sorted(self.metrics.items()))
            lines.append(f"  metrics: {metrics}")
        n_err, n_warn = len(self.errors), len(self.warnings)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"  {verdict}: {len(self.passes)} passes, "
            f"{n_err} error(s), {n_warn} warning(s)"
        )
        return "\n".join(lines)
