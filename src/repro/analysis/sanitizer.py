"""Opt-in runtime invariant sanitizer for the cycle-level simulator.

Attach an :class:`InvariantChecker` to a built network (before injecting
traffic) and every invariant below is asserted as the simulation runs,
turning silent state corruption into an immediate
:class:`InvariantViolation` with a precise message:

* **credit conservation** — for every (link, VC): transmitter credits +
  flits inside the link + flits buffered downstream + credits in flight
  equals the provisioned buffer depth, every cycle;
* **buffer occupancy** — no input VC ever holds more flits than its
  provisioned depth;
* **per-VC flit ordering** — each input VC receives a head flit, then
  body flits, then the tail of the *same* packet (wormhole discipline
  survives links, adapters and reorder buffers);
* **packet conservation** — injected flits are always accounted for:
  delivered + buffered + in flight, no loss, no duplication;
* **no-progress watchdog** — flits buffered with no movement for longer
  than a threshold is reported as a runtime deadlock.

The checker subscribes to the network's telemetry bus (``packet_inject``,
``flit_recv``, ``flit_send``, ``packet_eject``, ``cycle_end``) — the same
seam the tracing and metric collectors use — so probes compose and the
hot path is untouched when no checker is attached.  Tests enable it
through the ``sanitize`` fixture in ``tests/conftest.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.noc.flit import Flit, Packet
from repro.noc.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.noc.router import Router


class InvariantViolation(AssertionError):
    """A simulator invariant was broken at runtime."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class _VcOrderState:
    """Head/body/tail discipline tracker for one input VC."""

    __slots__ = ("pid", "remaining")

    def __init__(self) -> None:
        self.pid = -1
        self.remaining = 0


class InvariantChecker:
    """Wires runtime invariant checks into a built network.

    Parameters
    ----------
    network:
        The built (finalized or about-to-be-finalized) network to guard.
    deadlock_threshold:
        Cycles without any flit movement (while flits are buffered) before
        the watchdog fires.  ``None`` disables the watchdog.
    check_every:
        Run the full state sweep every N network steps (event-driven
        checks — ordering, occupancy — always run).  1 checks every cycle.
    """

    def __init__(
        self,
        network: Network,
        *,
        deadlock_threshold: Optional[int] = 5_000,
        check_every: int = 1,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.network = network
        self.deadlock_threshold = deadlock_threshold
        self.check_every = check_every
        self.checks_run = 0
        self.flits_injected = 0
        self._completed_flits = 0
        self._live_packets: dict[int, Packet] = {}
        self._order: dict[tuple[int, int, int], _VcOrderState] = {}
        self._last_movement = 0
        self._steps = 0
        self._attached = False
        self._install()

    # -- instrumentation -----------------------------------------------------
    def _install(self) -> None:
        bus = self.network.telemetry
        bus.subscribe("packet_inject", self._on_inject)
        bus.subscribe("packet_eject", self._on_eject)
        bus.subscribe("flit_send", self._on_flit_send)
        bus.subscribe("flit_recv", self._on_flit_recv)
        bus.subscribe("cycle_end", self._on_cycle_end)
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe every check; the network reverts to full speed."""
        if not self._attached:
            return
        bus = self.network.telemetry
        bus.unsubscribe("packet_inject", self._on_inject)
        bus.unsubscribe("packet_eject", self._on_eject)
        bus.unsubscribe("flit_send", self._on_flit_send)
        bus.unsubscribe("flit_recv", self._on_flit_recv)
        bus.unsubscribe("cycle_end", self._on_cycle_end)
        self._attached = False

    # -- bus callbacks -------------------------------------------------------
    def _on_inject(self, network: Network, packet: Packet) -> None:
        self.flits_injected += packet.length
        self._live_packets[packet.pid] = packet

    def _on_eject(self, router: "Router", packet: Packet, now: int) -> None:
        live = self._live_packets.pop(packet.pid, None)
        if live is not None:
            self._completed_flits += packet.length

    def _on_flit_send(
        self, router: "Router", flit: Flit, out_port: int, out_vc: int, now: int
    ) -> None:
        self._last_movement = now

    def _on_flit_recv(
        self, router: "Router", port: int, vc_idx: int, flit: Flit, now: int
    ) -> None:
        self._check_order(router.node, port, vc_idx, flit)
        self._check_occupancy(router.node, port, vc_idx)

    def _on_cycle_end(self, network: Network, now: int) -> None:
        self._steps += 1
        if self._steps % self.check_every == 0:
            self.check(now)

    # -- event-driven checks -------------------------------------------------
    def _check_order(self, node: int, port: int, vc_idx: int, flit: Flit) -> None:
        state = self._order.setdefault((node, port, vc_idx), _VcOrderState())
        if state.remaining == 0:
            if not flit.is_head:
                raise InvariantViolation(
                    "VC-ORDER",
                    f"node {node} port {port} vc {vc_idx}: expected a head "
                    f"flit, received {flit!r}",
                )
            state.pid = flit.packet.pid
            state.remaining = flit.packet.length
        else:
            if flit.is_head:
                raise InvariantViolation(
                    "VC-ORDER",
                    f"node {node} port {port} vc {vc_idx}: head flit of packet "
                    f"{flit.packet.pid} interleaved into packet {state.pid} "
                    f"({state.remaining} flits outstanding)",
                )
            if flit.packet.pid != state.pid:
                raise InvariantViolation(
                    "VC-ORDER",
                    f"node {node} port {port} vc {vc_idx}: flit of packet "
                    f"{flit.packet.pid} interleaved into packet {state.pid}",
                )
        state.remaining -= 1
        if flit.is_tail and state.remaining != 0:
            raise InvariantViolation(
                "VC-ORDER",
                f"node {node} port {port} vc {vc_idx}: tail of packet "
                f"{state.pid} arrived with {state.remaining} flits missing",
            )

    def _check_occupancy(self, node: int, port: int, vc_idx: int) -> None:
        in_port = self.network.routers[node].inputs[port]
        held = len(in_port.vcs[vc_idx].queue)
        if held > in_port.buffer_depth:
            raise InvariantViolation(
                "BUF-OVERFLOW",
                f"node {node} port {port} vc {vc_idx}: {held} flits buffered, "
                f"depth {in_port.buffer_depth} (credit protocol broken)",
            )

    # -- state-sweep checks ----------------------------------------------------
    def check(self, now: int) -> None:
        """Run the full invariant sweep (called from the step hook)."""
        self.checks_run += 1
        self._check_credits()
        self._check_conservation()
        self._check_progress(now)

    def _check_credits(self) -> None:
        network = self.network
        for link in network.links:
            src_router = link.src_router
            dst_router = link.dst_router
            if src_router is None or dst_router is None:
                continue
            out = src_router.outputs[link.src_port]
            in_port = dst_router.inputs[link.dst_port]
            depth = in_port.buffer_depth
            for vc in range(out.n_vcs):
                credits = out.credits[vc]
                buffered = len(in_port.vcs[vc].queue)
                in_link = link.vc_flits(vc)
                returning = link.pending_credits(vc)
                total = credits + buffered + in_link + returning
                if total != depth:
                    raise InvariantViolation(
                        "CREDIT-LEAK",
                        f"link {link.index} vc {vc}: credits {credits} + "
                        f"buffered {buffered} + in-link {in_link} + returning "
                        f"{returning} = {total}, expected {depth} "
                        f"({depth - total:+d} credit(s) lost)",
                    )

    def _check_conservation(self) -> None:
        network = self.network
        delivered = self._completed_flits + sum(
            packet.flits_delivered for packet in self._live_packets.values()
        )
        in_network = network.buffered_flits() + network.in_flight_flits()
        if delivered + in_network != self.flits_injected:
            raise InvariantViolation(
                "FLIT-CONSERVATION",
                f"injected {self.flits_injected} flits but delivered "
                f"{delivered} + in-network {in_network} = "
                f"{delivered + in_network} "
                f"({self.flits_injected - delivered - in_network:+d} flit(s) "
                "unaccounted for)",
            )

    def _check_progress(self, now: int) -> None:
        threshold = self.deadlock_threshold
        if threshold is None:
            return
        if now - self._last_movement <= threshold:
            return
        buffered = self.network.buffered_flits()
        if buffered > 0:
            raise InvariantViolation(
                "NO-PROGRESS",
                f"{buffered} flits buffered with no movement for "
                f"{now - self._last_movement} cycles (runtime deadlock): "
                + self._describe_stall(now),
            )
        self._last_movement = now

    def _describe_stall(self, now: int) -> str:
        """Name the stalled routers and the oldest blocked flit.

        Gives the watchdog's one-line report enough detail to start
        debugging without a postmortem bundle: the routers holding the
        most flits, and where the longest-suffering packet is stuck.
        """
        stalled = sorted(
            (
                (router.buffered_flits(), router.node)
                for router in self.network.routers
            ),
            key=lambda pair: (-pair[0], pair[1]),
        )
        tops = [f"node {node}: {flits}" for flits, node in stalled[:4] if flits > 0]
        oldest: Optional[tuple[int, int, int, int, int]] = None
        for router in self.network.routers:
            for port in router.inputs:
                for ivc in port.vcs:
                    if not ivc.queue:
                        continue
                    packet = ivc.queue[0].packet
                    age = now - packet.create_cycle
                    if oldest is None or age > oldest[0]:
                        oldest = (age, router.node, port.index, ivc.index, packet.pid)
        detail = f"stalled routers [{', '.join(tops)}]"
        if oldest is not None:
            age, node, port_idx, vc_idx, pid = oldest
            detail += (
                f"; oldest blocked flit: packet {pid} at node {node} "
                f"port {port_idx} vc {vc_idx}, {age} cycles old"
            )
        return detail
