"""Verification pass orchestration and the `repro check` backend.

Runs the three static passes over a built network and folds their output
into one :class:`~repro.analysis.report.Report`:

1. **lint** — topology/config well-formedness (:mod:`repro.analysis.lint`);
2. **deadlock** — escape-subnetwork connectivity plus acyclicity of the
   channel dependency graph, direct-only under ``vct`` or Duato's
   extended graph under ``wormhole`` (:mod:`repro.analysis.cdg`);
3. **livelock** — acyclicity of the routing state graph and the implied
   worst-case hop / misroute bounds (:mod:`repro.analysis.livelock`).

:func:`verify_family` is the convenience entry point used by the CLI and
CI: it builds a representative small instance of a registered system
family and verifies it.  Passing a different grid verifies any other
instance; future topologies only need a ``SystemSpec`` to be checkable.
"""

from __future__ import annotations

from typing import Optional

from repro.noc.network import Network
from repro.routing.deadlock import escape_connectivity
from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import FAMILIES, SystemSpec, build_system
from .cdg import MODES, build_cdg
from .lint import lint_network, lint_spec
from .livelock import analyse_livelock
from .report import Report

#: Default verification geometry: smallest grid valid for every family
#: (hypercube families need a power-of-two chiplet count).
DEFAULT_CHIPLETS = (2, 2)
DEFAULT_NODES = (3, 3)


def verify_network(
    spec: SystemSpec, network: Network, *, mode: str = "vct"
) -> Report:
    """Run all static passes on a built network."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    report = Report(system=spec.name, mode=mode)

    report.passes.append("lint")
    lint_spec(spec, report)
    lint_network(spec, network, report)

    report.passes.append("deadlock")
    _deadlock_pass(network, mode, report)

    report.passes.append("livelock")
    _livelock_pass(network, report)
    return report


def _deadlock_pass(network: Network, mode: str, report: Report) -> None:
    unreachable = escape_connectivity(network)
    if unreachable:
        sample = ", ".join(f"{s}->{d}" for s, d in unreachable[:5])
        report.error(
            "ESC-UNREACHABLE",
            f"{len(unreachable)} node pair(s)",
            f"escape subnetwork is not connected (e.g. {sample}); "
            "Lemma 1's connectivity condition fails",
        )
    graph = build_cdg(network, mode)
    report.metrics["escape_channels"] = graph.n_channels
    report.metrics["direct_deps"] = graph.n_direct
    if mode == "wormhole":
        report.metrics["indirect_deps"] = graph.n_indirect
    cycle = graph.cycle()
    if cycle:
        shown = " -> ".join(f"(link {link}, vc {vc})" for link, vc in cycle[:8])
        if mode == "wormhole" and graph.cycle_uses_indirect(cycle):
            report.error(
                "CDG-CYCLE-EXTENDED",
                f"{len(cycle)}-channel cycle",
                f"extended dependency cycle {shown}; the escape discipline is "
                "deadlock-free only under virtual cut-through, not plain "
                "wormhole (an indirect dependency through adaptive channels "
                "closes the cycle)",
            )
        else:
            report.error(
                "CDG-CYCLE",
                f"{len(cycle)}-channel cycle",
                f"direct dependency cycle {shown}; Lemma 1's acyclicity "
                "condition fails",
            )


def _livelock_pass(network: Network, report: Report) -> None:
    analysis = analyse_livelock(network)
    report.metrics["routing_states"] = analysis.n_states
    if analysis.bounded:
        report.metrics["max_hops_bound"] = analysis.max_hops
        report.metrics["max_misroute"] = analysis.max_misroute
    else:
        shown = " -> ".join(
            f"(node {node}, banned={banned})"
            for node, banned, _choice in analysis.cycle[:8]
        )
        report.error(
            "LIVELOCK-CYCLE",
            f"dst {analysis.cycle_dst}",
            f"routing state cycle {shown}; a packet can revisit a routing "
            "state, so its hop count is unbounded",
        )


def verify_family(
    family: str,
    *,
    chiplets: tuple[int, int] = DEFAULT_CHIPLETS,
    nodes: tuple[int, int] = DEFAULT_NODES,
    config: Optional[SimConfig] = None,
    mode: str = "vct",
    routing=None,
) -> Report:
    """Build a representative instance of ``family`` and verify it.

    ``routing`` overrides the family's routing function (used by the
    negative-path tests to inject known-bad routing).
    """
    if family not in FAMILIES:
        raise ValueError(f"unknown system family {family!r}")
    config = config or SimConfig()
    grid = ChipletGrid(chiplets[0], chiplets[1], nodes[0], nodes[1])
    spec = build_system(family, grid, config)
    stats = Stats()
    network = build_network(spec, stats, routing=routing)
    return verify_network(spec, network, mode=mode)


def verify_all(
    *,
    chiplets: tuple[int, int] = DEFAULT_CHIPLETS,
    nodes: tuple[int, int] = DEFAULT_NODES,
    config: Optional[SimConfig] = None,
    mode: str = "vct",
) -> list[Report]:
    """Verify every registered system family (the `repro check --all` path)."""
    return [
        verify_family(family, chiplets=chiplets, nodes=nodes, config=config, mode=mode)
        for family in FAMILIES
    ]
