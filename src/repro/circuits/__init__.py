"""Circuit-level models: behavioural RTL twins and the Table 4 estimator."""

from .fifo import MultiWidthFifo, PortBudgetError
from .reorder_rx import RxReorderFifo
from .synthesis import (
    TABLE4_PAPER,
    SynthesisResult,
    synthesize_adapter_rx,
    synthesize_adapter_tx,
    synthesize_hetero_router,
    synthesize_router,
    table4,
)

__all__ = [
    "MultiWidthFifo",
    "PortBudgetError",
    "RxReorderFifo",
    "SynthesisResult",
    "TABLE4_PAPER",
    "synthesize_adapter_rx",
    "synthesize_adapter_tx",
    "synthesize_hetero_router",
    "synthesize_router",
    "table4",
]
