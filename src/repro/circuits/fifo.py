"""Behavioural model of the multi-width FIFO (Sec 7.3).

The hetero-PHY TX adapter is built around "a FIFO that can read/write
multiple flits in one cycle": the router side writes up to
``write_ports`` flits per cycle, and the dispatch logic reads up to
``read_ports`` flits per cycle (one per PHY lane issued).  This model is
cycle-synchronous: per-cycle port budgets reset on :meth:`tick`.

It exists both as documentation of the RTL prototype and as the subject of
the circuit-level unit/property tests (FIFO order, capacity, port limits).
"""

from __future__ import annotations

from collections import deque


class PortBudgetError(RuntimeError):
    """More accesses in one cycle than the module has ports."""


class MultiWidthFifo:
    """Synchronous FIFO with multiple concurrent read/write ports.

    The RTL prototype uses depth 16, 64-bit entries, and 3 concurrent
    read/write ports (Sec 8.2).
    """

    def __init__(self, depth: int = 16, read_ports: int = 3, write_ports: int = 3) -> None:
        if depth < 1 or read_ports < 1 or write_ports < 1:
            raise ValueError("depth and port counts must be >= 1")
        self.depth = depth
        self.read_ports = read_ports
        self.write_ports = write_ports
        self._entries: deque = deque()
        self._reads_left = read_ports
        self._writes_left = write_ports
        self.max_occupancy = 0

    def tick(self) -> None:
        """Advance one clock cycle: refresh the per-cycle port budgets."""
        self._reads_left = self.read_ports
        self._writes_left = self.write_ports

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def free(self) -> int:
        return self.depth - len(self._entries)

    @property
    def half_full(self) -> bool:
        """The balanced-policy threshold signal (Sec 7.3)."""
        return len(self._entries) * 2 >= self.depth

    def push(self, item) -> None:
        """Write one entry (consumes one write port)."""
        if self._writes_left <= 0:
            raise PortBudgetError(
                f"more than {self.write_ports} writes in one cycle"
            )
        if len(self._entries) >= self.depth:
            raise OverflowError("FIFO full")
        self._writes_left -= 1
        self._entries.append(item)
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)

    def pop(self):
        """Read one entry in FIFO order (consumes one read port)."""
        if self._reads_left <= 0:
            raise PortBudgetError(f"more than {self.read_ports} reads in one cycle")
        if not self._entries:
            raise IndexError("FIFO empty")
        self._reads_left -= 1
        return self._entries.popleft()

    def front(self):
        """Peek the oldest entry without consuming a port."""
        if not self._entries:
            raise IndexError("FIFO empty")
        return self._entries[0]

    def balanced_read_count(self) -> int:
        """Flits the balanced scheduling logic reads this cycle (Sec 7.3).

        Half-full or more: three flits (one to the parallel PHY, two to
        the serial PHY); otherwise one flit (parallel PHY only).  Bounded
        by the current occupancy.
        """
        want = 3 if self.half_full else 1
        return min(want, len(self._entries), self._reads_left)
