"""Behavioural model of the RX adapter's reorder stage (Sec 7.3).

The RTL prototype buffers flits arriving from the parallel PHY (data plus
sequence number) in a FIFO and waits for flits with earlier sequence
numbers to arrive from the serial PHY; the counting logic tracks the next
expected sequence number.  This mirrors that structure at entry
granularity — it is the circuit-level twin of
:class:`repro.core.rob.ReorderBuffer` and is exercised by the circuit
tests (including the one-extra-cycle forwarding latency noted in Sec 8.2).
"""

from __future__ import annotations


class RxReorderFifo:
    """Sequence-number reorder stage with a parallel-side wait FIFO.

    Entries are ``(sn, payload)``.  ``push_parallel`` / ``push_serial``
    model arrivals from the two PHYs; :meth:`pop_ready` emits entries in
    strict sequence-number order, at most one per call (one read port),
    one cycle after arrival (the extra reordering cycle of Sec 8.2).
    """

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self._wait: dict[int, object] = {}
        self._expected = 0
        self._arrival_cycle: dict[int, int] = {}
        self.max_occupancy = 0

    @property
    def occupancy(self) -> int:
        return len(self._wait)

    @property
    def expected_sn(self) -> int:
        return self._expected

    def _push(self, sn: int, payload, now: int) -> None:
        if sn < self._expected:
            raise ValueError(f"sequence number {sn} already released")
        if sn in self._wait:
            raise ValueError(f"duplicate sequence number {sn}")
        if len(self._wait) >= self.depth:
            raise OverflowError("reorder FIFO full")
        self._wait[sn] = payload
        self._arrival_cycle[sn] = now
        if len(self._wait) > self.max_occupancy:
            self.max_occupancy = len(self._wait)

    def push_parallel(self, sn: int, payload, now: int) -> None:
        """A flit arrives from the parallel PHY."""
        self._push(sn, payload, now)

    def push_serial(self, sn: int, payload, now: int) -> None:
        """A flit arrives from the serial PHY."""
        self._push(sn, payload, now)

    def pop_ready(self, now: int):
        """The next in-order payload, or None if it has not arrived yet.

        An entry becomes visible the cycle after its arrival (the
        reordering stage adds one cycle, Sec 8.2).
        """
        sn = self._expected
        if sn not in self._wait:
            return None
        if self._arrival_cycle[sn] >= now:
            return None
        payload = self._wait.pop(sn)
        del self._arrival_cycle[sn]
        self._expected = sn + 1
        return payload
