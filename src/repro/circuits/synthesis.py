"""Analytic post-synthesis estimator (Table 4 substitute).

The paper verifies the adapter and router circuits by synthesis at
TSMC-12nm.  Without access to the PDK and tools, this module estimates
area, power and maximum frequency *structurally* from the same
microarchitectural parameters (storage bits, port counts, crossbar size,
allocator radix), with technology constants calibrated once against the
paper's published Table 4.  Because the constants are shared by all
modules, relative overheads — e.g. the heterogeneous router's +45% area /
+33% power over the regular router — emerge from structure, not from
per-row fitting.

Calibration targets (Table 4):

=========  ========  ========  =================
Module     Area um2  Power mW  Critical path ns
=========  ========  ========  =================
RX adapter 1389      1.14      0.36 (1.85 GHz)
TX adapter 1849      0.78      0.37 (1.85 GHz)
Router     7007      2.19      0.65 (1.20 GHz)
Hetero rtr 10155     2.92      0.67 (1.16 GHz)
=========  ========  ========  =================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# -- calibrated 12nm technology constants ---------------------------------
#: Area of one storage bit (flip-flop + local wiring), um^2.
AREA_PER_BIT_UM2 = 1.05
#: Extra storage area per read/write port beyond the baseline 1R1W pair.
PORT_AREA_FACTOR = 0.15
#: Area of one NAND2-equivalent control gate, um^2.
AREA_PER_GATE_UM2 = 0.25
#: Crossbar area per crosspoint-bit, um^2.
AREA_PER_XPOINT_BIT_UM2 = 0.11
#: Dynamic power coefficient: mW per um^2 per GHz at activity 1.0.
POWER_COEF_MW_PER_UM2_GHZ = 2.15e-4
#: Clock-to-Q plus setup margin of the launching/capturing registers, ns.
T_CLK_Q_NS = 0.12
#: Delay of one logic level, ns.
T_GATE_NS = 0.03


@dataclass(frozen=True)
class SynthesisResult:
    """Estimated implementation figures for one module."""

    name: str
    area_um2: float
    power_mw: float
    critical_path_ns: float

    @property
    def fmax_ghz(self) -> float:
        return 1.0 / self.critical_path_ns

    @property
    def energy_fj_per_bit(self) -> float:
        """Dynamic energy per transferred bit at f_max, assuming the
        module moves 64 bits per cycle (the prototype's flit width)."""
        bits_per_second = 64 * self.fmax_ghz * 1e9
        return self.power_mw * 1e-3 / bits_per_second * 1e15


def _storage_area(bits: int, rw_ports: int) -> float:
    multiplier = 1.0 + PORT_AREA_FACTOR * max(0, rw_ports - 2)
    return bits * AREA_PER_BIT_UM2 * multiplier


def synthesize_adapter_rx(depth: int = 16, width: int = 64) -> SynthesisResult:
    """RX adapter: reorder FIFO (data + SN) and counting logic (Sec 7.3)."""
    bits = depth * width
    # 2 write ports (parallel + serial PHY), 1 read port.
    area = _storage_area(bits, rw_ports=3)
    ctrl_gates = 24 * depth + width  # SN comparators + expected counter
    area += ctrl_gates * AREA_PER_GATE_UM2
    path = T_CLK_Q_NS + 8 * T_GATE_NS
    freq = 1.0 / path
    power = area * POWER_COEF_MW_PER_UM2_GHZ * freq * 1.41  # counting always active
    return SynthesisResult("adapter_rx", area, power, path)


def synthesize_adapter_tx(
    depth: int = 16, width: int = 64, ports: int = 3
) -> SynthesisResult:
    """TX adapter: multi-width FIFO + balanced scheduling logic (Sec 7.3)."""
    bits = depth * width
    area = _storage_area(bits, rw_ports=2 * ports)
    ctrl_gates = 16 * depth  # occupancy threshold + read-count selection
    area += ctrl_gates * AREA_PER_GATE_UM2
    path = T_CLK_Q_NS + 8 * T_GATE_NS + T_GATE_NS * (math.ceil(math.log2(ports)) - 1)
    freq = 1.0 / path
    power = area * POWER_COEF_MW_PER_UM2_GHZ * freq * 0.86  # queue mostly shallow
    return SynthesisResult("adapter_tx", area, power, path)


def synthesize_router(
    radix: int = 5,
    vcs: int = 2,
    buffer_depth: int = 8,
    width: int = 64,
    name: str = "router",
) -> SynthesisResult:
    """Canonical VC router datapath + allocators [9, 13, 21]."""
    if radix < 2 or vcs < 1 or buffer_depth < 1:
        raise ValueError("radix >= 2, vcs >= 1, buffer_depth >= 1 required")
    storage_bits = radix * vcs * buffer_depth * width
    area = _storage_area(storage_bits, rw_ports=2)
    area += radix * radix * width * AREA_PER_XPOINT_BIT_UM2
    alloc_gates = 12 * radix * radix * vcs * vcs  # VC + switch allocators
    rc_gates = 20 * radix * 32  # per-port routing computation
    area += (alloc_gates + rc_gates) * AREA_PER_GATE_UM2
    logic_levels = 10 + 3.32 * math.log2(radix)
    path = T_CLK_Q_NS + logic_levels * T_GATE_NS
    freq = 1.0 / path
    power = area * POWER_COEF_MW_PER_UM2_GHZ * freq
    return SynthesisResult(name, area, power, path)


def synthesize_hetero_router(
    base_radix: int = 5,
    extra_ports: int = 2,
    vcs: int = 2,
    buffer_depth: int = 8,
    width: int = 64,
) -> SynthesisResult:
    """Heterogeneous router: extra concurrent serial-IF ports (Sec 4.1).

    The parallel IF keeps the original port; ``extra_ports`` concurrent
    ports (with their routing logic) are added for the serial IF, raising
    the crossbar radix — the prototype adds two (Sec 7.3).
    """
    return synthesize_router(
        base_radix + extra_ports, vcs, buffer_depth, width, name="hetero_router"
    )


#: Paper-reported Table 4 values for comparison in tests and benchmarks.
TABLE4_PAPER = {
    "adapter_rx": {"area_um2": 1389.0, "power_mw": 1.14, "critical_path_ns": 0.36},
    "adapter_tx": {"area_um2": 1849.0, "power_mw": 0.78, "critical_path_ns": 0.37},
    "router": {"area_um2": 7007.0, "power_mw": 2.19, "critical_path_ns": 0.65},
    "hetero_router": {"area_um2": 10155.0, "power_mw": 2.92, "critical_path_ns": 0.67},
}


def table4() -> dict[str, SynthesisResult]:
    """Estimate all four Table 4 modules with the prototype's parameters."""
    return {
        "adapter_rx": synthesize_adapter_rx(),
        "adapter_tx": synthesize_adapter_tx(),
        "router": synthesize_router(),
        "hetero_router": synthesize_hetero_router(),
    }
