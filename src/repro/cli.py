"""Command-line interface.

Run paper experiments and ad-hoc simulations from the shell::

    repro list                         # available experiments
    repro run fig11 --scale tiny       # regenerate one figure's data
    repro run all --scale small        # regenerate everything
    repro simulate --family hetero_phy_torus --chiplets 4x4 --nodes 4x4 \
                   --pattern uniform --rate 0.1 --seed 7
    repro simulate --metrics out/ --trace run.json --epoch 500 --profile
    repro check --all                  # statically verify every family
    repro check --family serial_torus --mode wormhole

Output is the plain-text table of the experiment (add ``--csv`` for CSV).
``repro check`` prints one findings report per verified system and exits
non-zero if any report contains an error — the CI deadlock/livelock/lint
gate (see docs/analysis.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from repro.topology.system import FAMILIES, build_system


def _parse_pair(text: str, what: str) -> tuple[int, int]:
    try:
        x, y = text.lower().split("x")
        return int(x), int(y)
    except ValueError:
        raise SystemExit(f"invalid {what} {text!r}; expected e.g. 4x4") from None


def _cmd_list(_args) -> int:
    from repro.exps import EXPERIMENTS

    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_run(args) -> int:
    from repro.exps import EXPERIMENTS

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")
    for name in names:
        start = time.time()
        result = EXPERIMENTS[name](args.scale)
        elapsed = time.time() - start
        if args.csv:
            print(result.to_csv())
        else:
            print(result)
            print(f"[{name} completed in {elapsed:.1f}s at scale={args.scale}]")
        print()
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.exps.report import summarize

    print(summarize(Path(args.results_dir), args.scale))
    return 0


def _cmd_simulate(args) -> int:
    chiplets = _parse_pair(args.chiplets, "--chiplets")
    nodes = _parse_pair(args.nodes, "--nodes")
    grid = ChipletGrid(chiplets[0], chiplets[1], nodes[0], nodes[1])
    config = SimConfig().scaled(args.cycles)
    if args.halved:
        config = config.halved()
    spec = build_system(args.family, grid, config)
    telemetry = None
    if args.metrics or args.trace or args.profile or args.progress:
        from repro.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(
            metrics_dir=args.metrics,
            trace_path=args.trace,
            epoch_length=args.epoch,
            progress=args.progress,
            profile=args.profile,
        )
    result = run_synthetic(
        spec,
        args.pattern,
        args.rate,
        policy=args.policy,
        seed=args.seed,
        telemetry=telemetry,
    )
    print(f"system   : {spec.name}")
    print(f"workload : {result.workload} ({grid.n_nodes} nodes, {args.cycles} cycles)")
    print(f"policy   : {result.policy}")
    print(f"seed     : {args.seed}")
    for key, value in result.stats.summary().items():
        if isinstance(value, int):
            print(f"{key:26s}: {value:d}")
        else:
            print(f"{key:26s}: {value:.3f}")
    par, ser = result.phy_split
    if par or ser:
        print(f"hetero-PHY flit split     : parallel {par}, serial {ser}")
    if result.telemetry is not None:
        for path in result.telemetry.written:
            print(f"wrote {path}")
        if result.telemetry.profile_text:
            print()
            print(result.telemetry.profile_text.rstrip())
    return 0


def _cmd_check(args) -> int:
    from repro.analysis import verify_family

    chiplets = _parse_pair(args.chiplets, "--chiplets")
    nodes = _parse_pair(args.nodes, "--nodes")
    families = list(FAMILIES) if args.all else [args.family]
    failed = 0
    for family in families:
        try:
            report = verify_family(
                family, chiplets=chiplets, nodes=nodes, mode=args.mode
            )
        except ValueError as exc:
            # e.g. a geometry the family cannot be built on; report and
            # keep sweeping the remaining families.
            print(f"== {family} ==\n  ERROR   BUILD-FAILED {exc}\n  FAIL: could not build")
            failed += 1
            continue
        print(report.render(verbose=args.verbose))
        if not report.ok:
            failed += 1
    if failed:
        print(f"\n{failed}/{len(families)} system(s) FAILED verification")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous die-to-die interfaces (MICRO 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="run a paper experiment (or 'all')")
    run_p.add_argument("experiment")
    run_p.add_argument("--scale", choices=("tiny", "small", "paper"), default="small")
    run_p.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    run_p.set_defaults(func=_cmd_run)

    report_p = sub.add_parser(
        "report", help="summarize benchmark CSVs against the paper's numbers"
    )
    report_p.add_argument("--results-dir", default="benchmarks/results")
    report_p.add_argument("--scale", choices=("tiny", "small", "paper"), default="small")
    report_p.set_defaults(func=_cmd_report)

    sim_p = sub.add_parser("simulate", help="run one ad-hoc simulation")
    sim_p.add_argument("--family", choices=FAMILIES, default="hetero_phy_torus")
    sim_p.add_argument("--chiplets", default="4x4", help="chiplet grid, e.g. 4x4")
    sim_p.add_argument("--nodes", default="4x4", help="per-chiplet mesh, e.g. 4x4")
    sim_p.add_argument("--pattern", default="uniform")
    sim_p.add_argument("--rate", type=float, default=0.1, help="flits/cycle/node")
    sim_p.add_argument("--cycles", type=int, default=10_000)
    sim_p.add_argument(
        "--policy",
        choices=(
            "performance",
            "balanced",
            "energy_efficient",
            "application_aware",
            "passive_aware",
        ),
        default=None,
    )
    sim_p.add_argument(
        "--halved", action="store_true", help="pin-constrained halved interfaces"
    )
    sim_p.add_argument(
        "--seed", type=int, default=1, help="workload RNG seed (default: 1)"
    )
    sim_p.add_argument(
        "--metrics",
        metavar="DIR",
        default=None,
        help="write per-epoch metric CSVs + metrics.json into DIR",
    )
    sim_p.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (load in Perfetto / about:tracing)",
    )
    sim_p.add_argument(
        "--epoch",
        type=int,
        default=1_000,
        help="epoch length in cycles for --metrics time series (default: 1000)",
    )
    sim_p.add_argument(
        "--profile",
        action="store_true",
        help="profile the run with cProfile and print the hottest functions",
    )
    sim_p.add_argument(
        "--progress",
        action="store_true",
        help="show a live progress line on stderr while simulating",
    )
    sim_p.set_defaults(func=_cmd_simulate)

    check_p = sub.add_parser(
        "check",
        help="statically verify system families (deadlock / livelock / lint)",
    )
    check_group = check_p.add_mutually_exclusive_group(required=True)
    check_group.add_argument("--family", choices=FAMILIES)
    check_group.add_argument(
        "--all", action="store_true", help="verify every registered family"
    )
    check_p.add_argument(
        "--mode",
        choices=("vct", "wormhole"),
        default="vct",
        help="flow-control assumption for the CDG analysis (default: vct, "
        "the discipline the routers actually enforce)",
    )
    check_p.add_argument("--chiplets", default="2x2", help="chiplet grid, e.g. 2x2")
    check_p.add_argument("--nodes", default="3x3", help="per-chiplet mesh, e.g. 3x3")
    check_p.add_argument(
        "--verbose", action="store_true", help="include INFO findings in reports"
    )
    check_p.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
