"""Command-line interface.

Run paper experiments and ad-hoc simulations from the shell::

    repro list                         # available experiments
    repro run fig11 --scale tiny       # regenerate one figure's data
    repro run all --scale small        # regenerate everything
    repro simulate --family hetero_phy_torus --chiplets 4x4 --nodes 4x4 \
                   --pattern uniform --rate 0.1 --seed 7
    repro simulate --metrics out/ --trace run.json --epoch 500 --profile
    repro check --all                  # statically verify every family
    repro check --family serial_torus --mode wormhole
    repro prove --all --json prove.json   # full certification, both modes
    repro prove --family serial_torus --mode wormhole --max-states 8000
    repro bench --scale tiny --reps 3  # standardized perf suite -> BENCH_<n>.json
    repro compare BENCH_0.json BENCH_1.json --strict
    repro compare BENCH_0.json BENCH_1.json BENCH_2.json --json compare.json
    repro regress --strict             # changepoint sentinel over runs/ history
    repro profile --mem                # heap peaks + allocation sites per phase
    repro simulate --digest            # record the run's event-digest chain
    repro golden record --scale tiny   # golden traces -> benchmarks/goldens/
    repro golden check                 # re-simulate goldens, verify digests
    repro diff "sim:family=hetero_phy_torus,chiplets=2x2,nodes=4x4,rate=0.15" \
               "sim:family=hetero_phy_torus,chiplets=2x2,nodes=4x4,rate=0.15,perturb=900"
    repro dashboard --out dashboard.html
    repro simulate --live              # stream a live feed while running
    repro watch --port 8631            # live fleet dashboard over runs/
    repro postmortem forensics/BUNDLE_deadlock_557.json --html report.html

Output is the plain-text table of the experiment (add ``--csv`` for CSV).
``repro check`` prints one findings report per verified system and exits
non-zero if any report contains an error — the CI deadlock/livelock/lint
gate (see docs/analysis.md).

``repro prove`` stacks the certification passes (interface contracts,
exhaustive reachability with the single-link fault-mask sweep, bounded
model checking of reported CDG cycles) on top of ``check`` and writes one
schema-versioned ``CERT_<system>_<mode>.json`` per (system, mode) pair
into the run registry's ``certificates/`` subdirectory.  ``--json PATH``
additionally writes every certificate into one machine-readable document.
Exit codes for both ``check`` and ``prove``: 0 — every system passed /
was certified; 1 — at least one system failed, was refused certification
or could not be built; 2 — usage error.

When a simulation wedges (deadlock, drain timeout, invariant violation),
``repro simulate`` writes a postmortem bundle into ``forensics/`` and
exits with status 3, printing the bundle path; ``repro postmortem``
renders a bundle as a report or self-contained HTML page (see
docs/observability.md).  ``--no-forensics`` disables the capture.

Every ``repro run`` / ``repro simulate`` appends one structured record to
the append-only run registry (``runs/runs.jsonl`` by default; ``--runs-dir``
to relocate, ``--no-record`` to skip) so results stay attributable to a
config hash, git revision and seed — see docs/perf.md.

``repro compare`` and ``repro regress`` exit 0 unless ``--strict`` is
given *and* at least one (gated) metric regressed; an empty or
bench-free registry makes ``regress`` print a clean message and exit 0
even under ``--strict``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from repro.topology.system import FAMILIES, build_system


def _parse_pair(text: str, what: str) -> tuple[int, int]:
    try:
        x, y = text.lower().split("x")
        return int(x), int(y)
    except ValueError:
        raise SystemExit(f"invalid {what} {text!r}; expected e.g. 4x4") from None


def _cmd_list(_args) -> int:
    from repro.exps import EXPERIMENTS

    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_run(args) -> int:
    from repro.exps import EXPERIMENTS
    from repro.telemetry.runstore import (
        RunRecord,
        RunStore,
        config_digest,
        git_revision,
        new_run_id,
        utc_now_iso,
    )

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")
    store = None if args.no_record else RunStore(args.runs_dir)
    git_rev = git_revision() if store else "unknown"
    for name in names:
        start = time.perf_counter()
        try:
            result = EXPERIMENTS[name](args.scale)
        except (RuntimeError, AssertionError) as exc:
            return _report_failure(name, exc)
        elapsed = time.perf_counter() - start
        if args.csv:
            print(result.to_csv())
        else:
            print(result)
            print(f"[{name} completed in {elapsed:.1f}s at scale={args.scale}]")
        if store is not None:
            store.append(
                RunRecord(
                    run_id=new_run_id(),
                    created=utc_now_iso(),
                    kind="experiment",
                    label=name,
                    scale=args.scale,
                    config_hash=config_digest(
                        {"experiment": name, "scale": args.scale}
                    ),
                    git_rev=git_rev,
                    wall_seconds=elapsed,
                    extras={"rows": float(len(result.rows))},
                )
            )
        print()
    return 0


def _report_failure(label: str, exc: BaseException) -> int:
    """Report a wedged run on stderr and return the failure exit status.

    Deadlocks, drain timeouts and invariant violations all land here; when
    the engine captured a postmortem bundle its path rides on the
    exception so the next command is obvious.
    """
    kind = type(exc).__name__
    print(f"{label}: {kind}: {exc}", file=sys.stderr)
    bundle = getattr(exc, "bundle_path", None)
    if bundle:
        print(f"postmortem bundle: {bundle}", file=sys.stderr)
        print(f"inspect it with: repro postmortem {bundle}", file=sys.stderr)
    return 3


def _require_results_dir(results_dir: Path) -> Path:
    if not results_dir.is_dir() or not any(results_dir.glob("*.csv")):
        raise SystemExit(
            f"no benchmark CSVs in {results_dir}/ — regenerate them with "
            "`pytest benchmarks/ --benchmark-only` (or pass --results-dir)"
        )
    return results_dir


def _cmd_report(args) -> int:
    from repro.exps.report import summarize

    results_dir = _require_results_dir(Path(args.results_dir))
    print(summarize(results_dir, args.scale))
    return 0


def _cmd_simulate(args) -> int:
    chiplets = _parse_pair(args.chiplets, "--chiplets")
    nodes = _parse_pair(args.nodes, "--nodes")
    grid = ChipletGrid(chiplets[0], chiplets[1], nodes[0], nodes[1])
    config = SimConfig().scaled(args.cycles)
    if args.halved:
        config = config.halved()
    spec = build_system(args.family, grid, config)
    telemetry = None
    if args.profile:
        print(
            "note: `repro simulate --profile` is deprecated — use "
            "`repro profile` for the phase table plus speedscope/flamegraph "
            "artifacts",
            file=sys.stderr,
        )
    breakdown_wanted = args.latency_breakdown or args.breakdown_csv
    epoch_wanted = bool(
        args.metrics or args.trace or args.profile or args.progress
        or breakdown_wanted or args.live
    )
    forensics_wanted = (
        not args.no_forensics or args.flight_recorder or args.health
    )
    if args.live and args.live_every < 1:
        raise SystemExit("--live-every must be >= 1")
    run_id = None
    if epoch_wanted or forensics_wanted or args.digest:
        from repro.telemetry import TelemetryConfig

        if args.live:
            # Allocate the registry run id up front so the live feed and
            # the run record join on one id in the fleet view.
            from repro.telemetry.runstore import new_run_id

            run_id = new_run_id()
        telemetry = TelemetryConfig(
            metrics_dir=args.metrics,
            trace_path=args.trace,
            epoch_length=args.epoch,
            progress=args.progress,
            profile=args.profile,
            latency_breakdown=bool(breakdown_wanted),
            breakdown_csv=args.breakdown_csv,
            # A forensics-only config must not attach the epoch collector:
            # plain runs stay zero-subscriber so same-seed invocations
            # keep printing byte-identical output.
            epoch_metrics=epoch_wanted,
            forensics=forensics_wanted,
            bundle_dir=args.forensics_dir,
            flight_recorder=args.flight_recorder,
            recorder_window=args.recorder_window,
            recorder_events=args.recorder_events,
            health=args.health,
            health_every=args.health_every,
            health_stream=sys.stderr if args.health else None,
            live=args.live,
            live_dir=Path(args.runs_dir) / "live",
            live_every=args.live_every,
            run_id=run_id,
            digest=args.digest,
        )
    try:
        result = run_synthetic(
            spec,
            args.pattern,
            args.rate,
            policy=args.policy,
            seed=args.seed,
            telemetry=telemetry,
        )
    except (RuntimeError, AssertionError) as exc:
        return _report_failure(spec.name, exc)
    print(f"system   : {spec.name}")
    print(f"workload : {result.workload} ({grid.n_nodes} nodes, {args.cycles} cycles)")
    print(f"policy   : {result.policy}")
    print(f"seed     : {args.seed}")
    for key, value in result.stats.summary().items():
        if isinstance(value, int):
            print(f"{key:26s}: {value:d}")
        else:
            print(f"{key:26s}: {value:.3f}")
    par, ser = result.phy_split
    if par or ser:
        print(f"hetero-PHY flit split     : parallel {par}, serial {ser}")
    if args.digest and result.telemetry is not None:
        collector = result.telemetry.digest
        print(
            f"digest   : {collector.final} "
            f"({collector.events_total} events, compare with `repro diff`)"
        )
    if breakdown_wanted and result.telemetry is not None:
        from repro.telemetry.attribution import render_breakdown

        print()
        print(render_breakdown(result.telemetry.ledger.summary()))
    artifacts: dict[str, str] = {}
    if args.metrics:
        artifacts["metrics_dir"] = str(args.metrics)
    if args.trace:
        artifacts["trace"] = str(args.trace)
    if args.breakdown_csv:
        artifacts["breakdown_csv"] = str(args.breakdown_csv)
    if result.telemetry is not None and result.telemetry.live is not None:
        artifacts["live"] = str(result.telemetry.live.path)
    if result.telemetry is not None:
        for path in result.telemetry.written:
            print(f"wrote {path}")
    telemetry_enabled = bool(artifacts) or bool(breakdown_wanted)
    if not args.no_record:
        from repro.telemetry.runstore import RunStore, record_from_result

        store = RunStore(args.runs_dir)
        record = record_from_result(
            result,
            kind="simulate",
            label=args.family,
            artifacts=artifacts,
            run_id=run_id,
        )
        record_path = store.append(record)
        artifacts["record"] = f"{record_path}#{record.run_id}"
    if telemetry_enabled:
        # One-line manifest so nobody has to re-read the flags to find
        # where this run's outputs went.  Plain runs stay manifest-free so
        # same-seed invocations print byte-identical output.
        manifest = " ".join(f"{key}={value}" for key, value in artifacts.items())
        print(f"artifacts : {manifest}")
    if result.telemetry is not None and result.telemetry.profile_text:
        print()
        print(result.telemetry.profile_text.rstrip())
    return 0


def _cmd_profile(args) -> int:
    from repro.telemetry import TelemetryConfig
    from repro.telemetry.hostprof import (
        HostprofError,
        render_host_table,
        write_speedscope,
    )

    chiplets = _parse_pair(args.chiplets, "--chiplets")
    nodes = _parse_pair(args.nodes, "--nodes")
    grid = ChipletGrid(chiplets[0], chiplets[1], nodes[0], nodes[1])
    config = SimConfig().scaled(args.cycles)
    if args.halved:
        config = config.halved()
    spec = build_system(args.family, grid, config)
    # Pass 1 — host-time ledger, no cProfile: the profiler's tracing hooks
    # would inflate the wall times the phase table reports.
    ledger_config = TelemetryConfig(
        host_time=True, host_stride=args.stride, epoch_metrics=False
    )
    try:
        result = run_synthetic(
            spec,
            args.pattern,
            args.rate,
            policy=args.policy,
            seed=args.seed,
            telemetry=ledger_config,
        )
    except (RuntimeError, AssertionError) as exc:
        return _report_failure(spec.name, exc)
    ledger = result.telemetry.hostprof
    try:
        ledger.check_conservation()
    except HostprofError as exc:
        print(f"warning: {exc}", file=sys.stderr)
    print(f"system   : {spec.name}")
    print(f"workload : {result.workload} ({grid.n_nodes} nodes, {args.cycles} cycles)")
    print(f"policy   : {result.policy}")
    print(f"seed     : {args.seed}")
    print(f"cycles/s : {result.cycles_per_second:,.0f}")
    print()
    summary = ledger.summary()
    print(render_host_table(summary))
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    host_path = out_dir / "profile.host.json"
    _write_json_doc(str(host_path), summary)
    # Pass 2 — cProfile (same seed, so the same run), folded into the
    # phase-rooted speedscope + collapsed-stack flamegraph artifacts.
    profile_config = TelemetryConfig(
        profile=True, profile_top=args.top, epoch_metrics=False
    )
    try:
        profiled = run_synthetic(
            spec,
            args.pattern,
            args.rate,
            policy=args.policy,
            seed=args.seed,
            telemetry=profile_config,
        )
    except (RuntimeError, AssertionError) as exc:
        return _report_failure(spec.name, exc)
    report = profiled.telemetry.profile_report
    doc = report.speedscope(name=f"{spec.name} {result.workload}")
    ss_path = write_speedscope(doc, out_dir / "profile.speedscope.json")
    print(f"wrote {ss_path}  (load at https://www.speedscope.app)")
    folded_path = out_dir / "profile.folded.txt"
    folded_path.write_text(report.collapsed(), encoding="utf-8")
    print(f"wrote {folded_path}  (flamegraph.pl / inferno collapsed stacks)")
    if args.mem:
        # Pass 3 — memory ledger (tracemalloc roughly doubles allocation
        # cost, so it gets its own untimed pass; same seed, same run).
        from repro.telemetry.memprof import MemLedger, render_mem_table

        with MemLedger(top_n=args.mem_top) as mem_ledger:
            try:
                run_synthetic(
                    spec,
                    args.pattern,
                    args.rate,
                    policy=args.policy,
                    seed=args.seed,
                )
            except (RuntimeError, AssertionError) as exc:
                return _report_failure(spec.name, exc)
        mem_block = mem_ledger.record_summary()
        print()
        print(render_mem_table(mem_block))
        _write_json_doc(str(out_dir / "profile.mem.json"), mem_block)
    if args.pstats:
        print()
        print(report.text().rstrip())
    return 0


def _cmd_postmortem(args) -> int:
    from repro.telemetry.forensics import (
        load_bundle,
        render_bundle_html,
        render_bundle_text,
    )

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load bundle {args.bundle}: {exc}") from None
    print(render_bundle_text(bundle, tail=args.tail))
    if args.html:
        out = Path(args.html)
        out.write_text(render_bundle_html(bundle), encoding="utf-8")
        print(f"wrote {out}")
    return 0


def _cmd_bench(args) -> int:
    from repro.telemetry.bench import CASES, render_bench, run_bench, write_bench

    cases = None
    if args.case:
        by_name = {case.name: case for case in CASES}
        unknown = [name for name in args.case if name not in by_name]
        if unknown:
            raise SystemExit(
                f"unknown bench case(s): {', '.join(unknown)}; "
                f"known: {', '.join(by_name)}"
            )
        cases = [by_name[name] for name in args.case]
    start = time.perf_counter()
    doc = run_bench(
        scale=args.scale,
        reps=args.reps,
        seed=args.seed,
        cases=cases,
        host_stride=args.host_stride,
        mem_top=args.mem_top,
    )
    elapsed = time.perf_counter() - start
    path = write_bench(doc, args.out_dir)
    print(render_bench(doc))
    print(f"wrote {path}")
    if not args.no_record:
        from repro.telemetry.runstore import (
            RunRecord,
            RunStore,
            config_digest,
            new_run_id,
        )

        # One registry record per suite run: the dashboard's "Host
        # performance" panel and the regression sentinel both read these.
        store = RunStore(args.runs_dir)
        # The registry keeps a slim mem block (no allocation sites — the
        # BENCH file has them); the sentinel only needs the peaks.
        bench_summary = {
            name: {
                "cps_median": case["cps"]["median"],
                "host": case.get("host"),
                "mem": {
                    k: v
                    for k, v in (case.get("mem") or {}).items()
                    if k != "top_sites"
                }
                or None,
                "digest_final": (case.get("digest") or {}).get("final"),
            }
            for name, case in doc["cases"].items()
        }
        record = RunRecord(
            run_id=new_run_id(),
            created=doc["created"],
            kind="bench",
            label=f"bench:{args.scale}",
            scale=args.scale,
            seed=args.seed,
            config_hash=config_digest(
                {"bench": sorted(doc["cases"]), "scale": args.scale, "seed": args.seed}
            ),
            git_rev=doc["git_rev"],
            wall_seconds=elapsed,
            artifacts={"bench": str(path)},
            bench=bench_summary,
        )
        record_path = store.append(record)
        print(f"recorded {record_path}#{record.run_id}")
    return 0


def _cmd_compare(args) -> int:
    from repro.telemetry.compare import (
        chain_report,
        compare_chain,
        regressions,
        render_chain,
    )
    from repro.telemetry.runstore import RunStoreError

    try:
        steps = compare_chain(args.paths, rel_floor=args.rel_floor, k=args.k)
    except (FileNotFoundError, ValueError, RunStoreError) as exc:
        raise SystemExit(str(exc)) from None
    print(render_chain(steps))
    if args.json:
        _write_json_doc(args.json, chain_report(steps, gate=args.gate))
    if args.strict:
        gated = [
            v
            for _, _, verdicts in steps
            for v in regressions(verdicts, gate=args.gate)
        ]
        if gated:
            if args.gate:
                names = ", ".join(sorted({f"{v.case}:{v.metric}" for v in gated}))
                print(f"gated regression(s): {names}", file=sys.stderr)
            return 1
    return 0


def _cmd_regress(args) -> int:
    from repro.telemetry.history import load_history
    from repro.telemetry.sentinel import (
        SentinelConfig,
        analyze_history,
        render_sentinel,
    )

    try:
        config = SentinelConfig(window=args.window, min_history=args.min_history)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    history = load_history(args.runs_dir, bench_dirs=args.bench_dir or [])
    report = analyze_history(history, config, metric_prefixes=args.metric or [])
    if not history.series:
        # An empty or bench-free registry is a fresh checkout, not an
        # error: degrade to a clean message and exit 0 (even --strict).
        print(
            f"no bench history under {args.runs_dir} — `repro bench` "
            "appends the records the sentinel watches."
        )
        if args.json:
            _write_json_doc(args.json, report.to_json())
        return 0
    print(render_sentinel(report))
    if history.skipped:
        noun = "source" if history.skipped == 1 else "sources"
        print(
            f"warning: skipped {history.skipped} unreadable {noun} "
            f"(registry lines / bench files)",
            file=sys.stderr,
        )
    if args.json:
        _write_json_doc(args.json, report.to_json())
    if args.strict and report.regressions():
        return 1
    return 0


def _cmd_diff(args) -> int:
    from repro.telemetry.diff import DiffError, diff_runs, load_diffable
    from repro.telemetry.digest import DigestError

    try:
        a = load_diffable(args.a)
        b = load_diffable(args.b)
        report = diff_runs(
            a, b, localize=not args.no_localize, context=args.context
        )
    except (DiffError, DigestError, OSError, RuntimeError) as exc:
        raise SystemExit(str(exc)) from None
    print(report.render())
    return report.exit_code


def _cmd_golden(args) -> int:
    from repro.telemetry.bench import CASES
    from repro.telemetry.diff import check_golden_file, record_golden_case
    from repro.telemetry.digest import DigestError, golden_files

    by_name = {case.name: case for case in CASES}
    if args.action == "record":
        names = args.case or list(by_name)
        unknown = [name for name in names if name not in by_name]
        if unknown:
            raise SystemExit(
                f"unknown case(s): {', '.join(unknown)}; known: {', '.join(by_name)}"
            )
        from repro.telemetry.runstore import git_revision, utc_now_iso

        git_rev = git_revision()
        created = utc_now_iso()
        for name in names:
            path = record_golden_case(
                by_name[name],
                scale=args.scale,
                seed=args.seed,
                directory=args.dir,
                git_rev=git_rev,
                created=created,
            )
            print(f"wrote {path}")
        return 0
    paths = [Path(p) for p in args.golden] or golden_files(args.dir)
    if not paths:
        raise SystemExit(
            f"no golden traces under {args.dir}/ — record them with "
            "`repro golden record`"
        )
    failed = 0
    for path in paths:
        try:
            ok, message, report = check_golden_file(
                path, localize=not args.no_localize
            )
        except (DigestError, OSError, ValueError, RuntimeError) as exc:
            print(f"{path}: ERROR: {exc}")
            failed += 1
            continue
        print(message)
        if not ok:
            failed += 1
            if report is not None:
                print(report.render())
    if failed:
        print(f"{failed}/{len(paths)} golden trace(s) FAILED")
        return 1
    return 0


def _cmd_dashboard(args) -> int:
    from repro.telemetry.dashboard import DashboardError, write_dashboard

    try:
        path = write_dashboard(
            args.out,
            args.results_dir,
            scale=args.scale,
            bench_dirs=args.bench_dir,
            runs_dir=args.runs_dir,
        )
    except DashboardError as exc:
        raise SystemExit(str(exc)) from None
    print(f"wrote {path}")
    from repro.telemetry.runstore import RunStore

    store = RunStore(args.runs_dir)
    store.load(strict=False)
    if store.skipped:
        noun = "line" if store.skipped == 1 else "lines"
        print(
            f"warning: skipped {store.skipped} unreadable registry {noun} "
            f"in {store.path}",
            file=sys.stderr,
        )
    return 0


def _cmd_watch(args) -> int:
    from repro.telemetry.server import WatchService, serve

    if args.once:
        service = WatchService(args.runs_dir, top_runs=args.top)
        state = service.fleet_state()
        print(json.dumps(state, indent=1, sort_keys=True))
        if state["skipped"]:
            noun = "line" if state["skipped"] == 1 else "lines"
            print(
                f"warning: skipped {state['skipped']} unreadable registry "
                f"{noun} in {Path(args.runs_dir) / 'runs.jsonl'}",
                file=sys.stderr,
            )
        return 0
    serve(
        args.runs_dir,
        host=args.host,
        port=args.port,
        poll_seconds=args.poll,
        top_runs=args.top,
    )
    return 0


def _write_json_doc(path: str, doc: dict) -> None:
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {path}")


def _cmd_check(args) -> int:
    from repro.analysis import verify_family

    chiplets = _parse_pair(args.chiplets, "--chiplets")
    nodes = _parse_pair(args.nodes, "--nodes")
    families = list(FAMILIES) if args.all else [args.family]
    if args.prove:
        # One-shot certification with check's single-mode semantics; use
        # `repro prove` for the durable certificate + run-registry flow.
        return _run_prove(
            families,
            (args.mode,),
            chiplets=chiplets,
            nodes=nodes,
            fault_masks=True,
            max_states=4_000,
            max_packets=None,
            verbose=args.verbose,
            json_path=args.json,
            runs_dir=None,
        )
    failed = 0
    payload: list[dict] = []
    for family in families:
        try:
            report = verify_family(
                family, chiplets=chiplets, nodes=nodes, mode=args.mode
            )
        except ValueError as exc:
            # e.g. a geometry the family cannot be built on; report and
            # keep sweeping the remaining families.
            print(f"== {family} ==\n  ERROR   BUILD-FAILED {exc}\n  FAIL: could not build")
            payload.append(
                {"system": family, "mode": args.mode, "ok": False, "error": str(exc)}
            )
            failed += 1
            continue
        print(report.render(verbose=args.verbose))
        payload.append(report.to_dict())
        if not report.ok:
            failed += 1
    if args.json:
        _write_json_doc(args.json, {"ok": failed == 0, "reports": payload})
    if failed:
        print(f"\n{failed}/{len(families)} system(s) FAILED verification")
        return 1
    return 0


def _run_prove(
    families: list[str],
    modes: tuple[str, ...],
    *,
    chiplets: tuple[int, int],
    nodes: tuple[int, int],
    fault_masks: bool,
    max_states: int,
    max_packets: int | None,
    verbose: bool,
    json_path: str | None,
    runs_dir: str | None,
) -> int:
    """Certify ``families`` x ``modes``; returns the process exit status.

    ``runs_dir=None`` skips both the certificate files and the
    run-registry append (the ``check --prove`` and ``--no-record`` paths);
    ``--json`` still captures every certificate either way.
    """
    from repro.analysis import prove_family, write_certificate
    from repro.telemetry.runstore import (
        RunRecord,
        RunStore,
        git_revision,
        new_run_id,
        utc_now_iso,
    )

    store = RunStore(runs_dir) if runs_dir is not None else None
    git_rev = git_revision() if store else "unknown"
    payload: list[dict] = []
    failed = 0
    total = 0
    for family in families:
        for mode in modes:
            total += 1
            start = time.perf_counter()
            try:
                result = prove_family(
                    family,
                    chiplets=chiplets,
                    nodes=nodes,
                    mode=mode,
                    fault_masks=fault_masks,
                    max_states=max_states,
                    max_packets=max_packets,
                )
            except ValueError as exc:
                print(
                    f"== {family} [mode={mode}] ==\n"
                    f"  ERROR   BUILD-FAILED {exc}\n  FAIL: could not build"
                )
                payload.append(
                    {
                        "family": family,
                        "mode": mode,
                        "certified": False,
                        "error": str(exc),
                    }
                )
                failed += 1
                continue
            elapsed = time.perf_counter() - start
            cert = result.certificate
            print(result.report.render(verbose=verbose))
            artifacts: dict[str, str] = {}
            if store is not None and runs_dir is not None:
                cert_path = write_certificate(cert, runs_dir)
                artifacts["certificate"] = str(cert_path)
                print(f"  certificate: {cert_path}")
                store.append(
                    RunRecord(
                        run_id=new_run_id(),
                        created=utc_now_iso(),
                        kind="prove",
                        label=f"{family}:{mode}",
                        config_hash=cert.config_hash,
                        git_rev=git_rev,
                        n_nodes=chiplets[0] * chiplets[1] * nodes[0] * nodes[1],
                        wall_seconds=elapsed,
                        artifacts=artifacts,
                        extras={
                            "certified": float(cert.certified),
                            "fault_masks": float(cert.fault_masks.get("swept", 0)),
                            "errors": float(len(result.report.errors)),
                            "warnings": float(len(result.report.warnings)),
                        },
                    )
                )
            verdict = "CERTIFIED" if cert.certified else "NOT CERTIFIED"
            print(f"  {verdict} in {elapsed:.1f}s")
            print()
            payload.append(cert.to_dict())
            if not cert.certified:
                failed += 1
    if json_path:
        _write_json_doc(
            json_path, {"certified": failed == 0, "certificates": payload}
        )
    if failed:
        print(f"{failed}/{total} certification(s) FAILED")
        return 1
    return 0


def _cmd_prove(args) -> int:
    families = list(FAMILIES) if args.all else [args.family]
    modes = ("vct", "wormhole") if args.mode == "both" else (args.mode,)
    return _run_prove(
        families,
        modes,
        chiplets=_parse_pair(args.chiplets, "--chiplets"),
        nodes=_parse_pair(args.nodes, "--nodes"),
        fault_masks=not args.no_fault_masks,
        max_states=args.max_states,
        max_packets=args.max_packets,
        verbose=args.verbose,
        json_path=args.json,
        runs_dir=None if args.no_record else args.runs_dir,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous die-to-die interfaces (MICRO 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    def add_record_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runs-dir",
            default="runs",
            help="run-registry directory (default: runs/)",
        )
        p.add_argument(
            "--no-record",
            action="store_true",
            help="do not append a record to the run registry",
        )

    run_p = sub.add_parser("run", help="run a paper experiment (or 'all')")
    run_p.add_argument("experiment")
    run_p.add_argument("--scale", choices=("tiny", "small", "paper"), default="small")
    run_p.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    add_record_args(run_p)
    run_p.set_defaults(func=_cmd_run)

    report_p = sub.add_parser(
        "report", help="summarize benchmark CSVs against the paper's numbers"
    )
    report_p.add_argument("--results-dir", default="benchmarks/results")
    report_p.add_argument("--scale", choices=("tiny", "small", "paper"), default="small")
    report_p.set_defaults(func=_cmd_report)

    sim_p = sub.add_parser("simulate", help="run one ad-hoc simulation")
    sim_p.add_argument("--family", choices=FAMILIES, default="hetero_phy_torus")
    sim_p.add_argument("--chiplets", default="4x4", help="chiplet grid, e.g. 4x4")
    sim_p.add_argument("--nodes", default="4x4", help="per-chiplet mesh, e.g. 4x4")
    sim_p.add_argument("--pattern", default="uniform")
    sim_p.add_argument("--rate", type=float, default=0.1, help="flits/cycle/node")
    sim_p.add_argument("--cycles", type=int, default=10_000)
    sim_p.add_argument(
        "--policy",
        choices=(
            "performance",
            "balanced",
            "energy_efficient",
            "application_aware",
            "passive_aware",
        ),
        default=None,
    )
    sim_p.add_argument(
        "--halved", action="store_true", help="pin-constrained halved interfaces"
    )
    sim_p.add_argument(
        "--seed", type=int, default=1, help="workload RNG seed (default: 1)"
    )
    sim_p.add_argument(
        "--metrics",
        metavar="DIR",
        default=None,
        help="write per-epoch metric CSVs + metrics.json into DIR",
    )
    sim_p.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (load in Perfetto / about:tracing)",
    )
    sim_p.add_argument(
        "--epoch",
        type=int,
        default=1_000,
        help="epoch length in cycles for --metrics time series (default: 1000)",
    )
    sim_p.add_argument(
        "--profile",
        action="store_true",
        help="deprecated: profile with cProfile and print the hottest "
        "functions (use `repro profile` instead)",
    )
    sim_p.add_argument(
        "--progress",
        action="store_true",
        help="show a live progress line on stderr while simulating",
    )
    sim_p.add_argument(
        "--latency-breakdown",
        action="store_true",
        help="attribute every measured packet's latency to pipeline stages "
        "and print the per-stage + bottleneck tables",
    )
    sim_p.add_argument(
        "--breakdown-csv",
        metavar="PATH",
        default=None,
        help="write the per-stage breakdown CSV here (implies "
        "--latency-breakdown)",
    )
    sim_p.add_argument(
        "--no-forensics",
        action="store_true",
        help="do not capture a postmortem bundle when the run wedges "
        "(deadlock / drain timeout / invariant violation)",
    )
    sim_p.add_argument(
        "--forensics-dir",
        metavar="DIR",
        default="forensics",
        help="where postmortem bundles go (default: forensics/)",
    )
    sim_p.add_argument(
        "--flight-recorder",
        action="store_true",
        help="keep a bounded ring buffer of recent telemetry events; its "
        "tail lands in the postmortem bundle",
    )
    sim_p.add_argument(
        "--recorder-window",
        type=int,
        default=4096,
        metavar="CYCLES",
        help="flight-recorder retention window in cycles (default: 4096)",
    )
    sim_p.add_argument(
        "--recorder-events",
        choices=("packet", "route", "full"),
        default="packet",
        help="flight-recorder event preset: 'packet' records the packet "
        "lifecycle + credit stalls (low overhead), 'route' adds per-hop "
        "routing/VC-allocation events, 'full' records every event "
        "(default: packet)",
    )
    sim_p.add_argument(
        "--health",
        action="store_true",
        help="probe throughput / stall rate / occupancy / oldest-packet "
        "age periodically and flag anomalies live on stderr",
    )
    sim_p.add_argument(
        "--health-every",
        type=int,
        default=2_000,
        metavar="CYCLES",
        help="health-probe period in cycles (default: 2000)",
    )
    sim_p.add_argument(
        "--live",
        action="store_true",
        help="stream run lifecycle / progress / epoch / health events to "
        "<runs-dir>/live/<run_id>.jsonl while the run is in flight — "
        "watch it with `repro watch`",
    )
    sim_p.add_argument(
        "--live-every",
        type=int,
        default=1_000,
        metavar="CYCLES",
        help="live-feed heartbeat period in cycles (default: 1000)",
    )
    sim_p.add_argument(
        "--digest",
        action="store_true",
        help="fold every telemetry event into a deterministic chained "
        "hash; the digest block lands on the run record and two runs "
        "can be compared with `repro diff`",
    )
    add_record_args(sim_p)
    sim_p.set_defaults(func=_cmd_simulate)

    prof_p = sub.add_parser(
        "profile",
        help="attribute host wall time to engine phases and emit "
        "speedscope + flamegraph artifacts",
    )
    prof_p.add_argument("--family", choices=FAMILIES, default="hetero_phy_torus")
    prof_p.add_argument(
        "--chiplets", default="2x2", help="chiplet grid, e.g. 2x2 (fig11 seed)"
    )
    prof_p.add_argument("--nodes", default="4x4", help="per-chiplet mesh, e.g. 4x4")
    prof_p.add_argument("--pattern", default="uniform")
    prof_p.add_argument("--rate", type=float, default=0.15, help="flits/cycle/node")
    prof_p.add_argument("--cycles", type=int, default=6_000)
    prof_p.add_argument(
        "--policy",
        choices=(
            "performance",
            "balanced",
            "energy_efficient",
            "application_aware",
            "passive_aware",
        ),
        default=None,
    )
    prof_p.add_argument(
        "--halved", action="store_true", help="pin-constrained halved interfaces"
    )
    prof_p.add_argument(
        "--seed", type=int, default=1, help="workload RNG seed (default: 1)"
    )
    prof_p.add_argument(
        "--stride",
        type=int,
        default=1,
        metavar="N",
        help="time every Nth cycle and extrapolate (default: 1 — every cycle)",
    )
    prof_p.add_argument(
        "--out-dir",
        default="profile-out",
        help="where profile.host.json / profile.speedscope.json / "
        "profile.folded.txt go (default: profile-out/)",
    )
    prof_p.add_argument(
        "--top",
        type=int,
        default=25,
        help="hottest-function count for --pstats (default: 25)",
    )
    prof_p.add_argument(
        "--pstats",
        action="store_true",
        help="also print the classic pstats table (cumulative-time sorted)",
    )
    prof_p.add_argument(
        "--mem",
        action="store_true",
        help="also run a tracemalloc pass: peak/current heap and top "
        "allocation sites folded to the phase taxonomy "
        "(profile.mem.json)",
    )
    prof_p.add_argument(
        "--mem-top",
        type=int,
        default=10,
        metavar="N",
        help="allocation sites kept by --mem (default: 10)",
    )
    prof_p.set_defaults(func=_cmd_profile)

    pm_p = sub.add_parser(
        "postmortem",
        help="render a forensics bundle captured from a wedged run",
    )
    pm_p.add_argument("bundle", help="BUNDLE_<reason>_<cycle>.json path")
    pm_p.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="also write a self-contained HTML report (wait-for graph, "
        "occupancy heatmap, recorder tail)",
    )
    pm_p.add_argument(
        "--tail",
        type=int,
        default=20,
        metavar="N",
        help="flight-recorder events to show in the text report (default: 20)",
    )
    pm_p.set_defaults(func=_cmd_postmortem)

    bench_p = sub.add_parser(
        "bench",
        help="run the standardized perf suite and write BENCH_<n>.json",
    )
    bench_p.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default="tiny"
    )
    bench_p.add_argument(
        "--reps", type=int, default=5, help="timed repetitions per case (default: 5)"
    )
    bench_p.add_argument("--seed", type=int, default=1)
    bench_p.add_argument(
        "--case",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the suite to one case (repeatable)",
    )
    bench_p.add_argument(
        "--out-dir", default=".", help="where BENCH_<n>.json goes (default: .)"
    )
    bench_p.add_argument(
        "--host-stride",
        type=int,
        default=4,
        metavar="N",
        help="host-time ledger sampling stride on the attribution "
        "repetition (default: 4)",
    )
    bench_p.add_argument(
        "--mem-top",
        type=int,
        default=10,
        metavar="N",
        help="allocation sites kept in each case's mem block (default: 10)",
    )
    add_record_args(bench_p)
    bench_p.set_defaults(func=_cmd_bench)

    cmp_p = sub.add_parser(
        "compare",
        help="noise-aware diff of bench files or run records "
        "(two or more, oldest first)",
    )
    cmp_p.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="two or more files of one kind, oldest first: BENCH_<n>.json, "
        "record JSON or runs.jsonl; N>2 chains adjacent pairs",
    )
    cmp_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any metric regressed in any step "
        "(default: warn only)",
    )
    cmp_p.add_argument(
        "--gate",
        action="append",
        default=None,
        metavar="METRIC",
        help="with --strict, only exit non-zero when one of these metrics "
        "regressed (exact name or dotted prefix, repeatable; e.g. "
        "cycles_per_second, events, host.sa_st, mem.peak_bytes)",
    )
    cmp_p.add_argument(
        "--rel-floor",
        type=float,
        default=0.05,
        help="relative floor below which a delta is noise (default: 0.05)",
    )
    cmp_p.add_argument(
        "--k",
        type=float,
        default=1.5,
        help="IQR multiplier of the noise threshold (default: 1.5)",
    )
    cmp_p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the verdicts as one machine-readable JSON document",
    )
    cmp_p.set_defaults(func=_cmd_compare)

    regress_p = sub.add_parser(
        "regress",
        help="regression sentinel: changepoint detection over the run "
        "registry's bench history",
    )
    regress_p.add_argument(
        "--runs-dir",
        default="runs",
        help="registry directory to analyze (default: runs)",
    )
    regress_p.add_argument(
        "--bench-dir",
        action="append",
        default=None,
        metavar="DIR",
        help="also harvest BENCH_<n>.json files from this directory "
        "(repeatable)",
    )
    regress_p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="PREFIX",
        help="only analyze metrics with this prefix (repeatable; e.g. "
        "cycles_per_second, host, mem, digest)",
    )
    regress_p.add_argument(
        "--window",
        type=int,
        default=8,
        metavar="N",
        help="sliding-window width of the changepoint test (default: 8)",
    )
    regress_p.add_argument(
        "--min-history",
        type=int,
        default=6,
        metavar="N",
        help="finite observations below which a metric reads "
        "insufficient-history (default: 6)",
    )
    regress_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any metric regressed (default: warn only)",
    )
    regress_p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the sentinel report as JSON",
    )
    regress_p.set_defaults(func=_cmd_regress)

    diff_p = sub.add_parser(
        "diff",
        help="differential oracle: compare two runs' event digests and "
        "localize the first divergent cycle",
    )
    diff_p.add_argument(
        "a",
        help="baseline: GOLDEN_*.json, run-record JSON, runs.jsonl"
        "[#run_id], or a 'sim:family=...,rate=...' re-simulation spec",
    )
    diff_p.add_argument("b", help="candidate (same accepted forms)")
    diff_p.add_argument(
        "--no-localize",
        action="store_true",
        help="stop at the summary/census/checkpoint granularities; do not "
        "re-simulate to name the exact divergent cycle",
    )
    diff_p.add_argument(
        "--context",
        type=int,
        default=12,
        metavar="N",
        help="flight-recorder events to print at the divergent cycle "
        "(default: 12)",
    )
    diff_p.set_defaults(func=_cmd_diff)

    golden_p = sub.add_parser(
        "golden",
        help="record/check golden digest traces for the canonical bench "
        "cases (benchmarks/goldens/)",
    )
    golden_p.add_argument("action", choices=("record", "check"))
    golden_p.add_argument(
        "golden",
        nargs="*",
        help="golden files to check (default: every GOLDEN_*.json under "
        "--dir)",
    )
    golden_p.add_argument(
        "--case",
        action="append",
        default=None,
        metavar="NAME",
        help="with record: restrict to one bench case (repeatable)",
    )
    golden_p.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default="tiny"
    )
    golden_p.add_argument("--seed", type=int, default=1)
    golden_p.add_argument(
        "--dir",
        default="benchmarks/goldens",
        help="golden-trace directory (default: benchmarks/goldens/)",
    )
    golden_p.add_argument(
        "--no-localize",
        action="store_true",
        help="with check: report mismatch without localizing the cycle",
    )
    golden_p.set_defaults(func=_cmd_golden)

    dash_p = sub.add_parser(
        "dashboard",
        help="render the static paper-figure + perf HTML dashboard",
    )
    dash_p.add_argument("--out", default="dashboard.html")
    dash_p.add_argument("--results-dir", default="benchmarks/results")
    dash_p.add_argument(
        "--scale", choices=("tiny", "small", "paper"), default="tiny"
    )
    dash_p.add_argument(
        "--bench-dir",
        action="append",
        default=None,
        help="directories scanned for BENCH_<n>.json (repeatable; default: .)",
    )
    dash_p.add_argument("--runs-dir", default="runs")
    dash_p.set_defaults(func=_cmd_dashboard)

    watch_p = sub.add_parser(
        "watch",
        help="serve the live fleet dashboard (in-flight --live runs, "
        "failures with postmortems, bench trajectory, run registry)",
    )
    watch_p.add_argument(
        "--port",
        type=int,
        default=8631,
        help="listen port (default: 8631; 0 picks a free port)",
    )
    watch_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    watch_p.add_argument(
        "--runs-dir",
        default="runs",
        help="run-registry directory to observe (default: runs/)",
    )
    watch_p.add_argument(
        "--poll",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="change-detection interval for the auto-updating pages "
        "(default: 1.0)",
    )
    watch_p.add_argument(
        "--top",
        type=int,
        default=20,
        help="rows in the recent-runs table (default: 20)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="print the fleet state as JSON and exit instead of serving "
        "(scriptable snapshot; also the CI smoke hook)",
    )
    watch_p.set_defaults(func=_cmd_watch)

    check_p = sub.add_parser(
        "check",
        help="statically verify system families (deadlock / livelock / lint)",
    )
    check_group = check_p.add_mutually_exclusive_group(required=True)
    check_group.add_argument("--family", choices=FAMILIES)
    check_group.add_argument(
        "--all", action="store_true", help="verify every registered family"
    )
    check_p.add_argument(
        "--mode",
        choices=("vct", "wormhole"),
        default="vct",
        help="flow-control assumption for the CDG analysis (default: vct, "
        "the discipline the routers actually enforce)",
    )
    check_p.add_argument(
        "--chiplets",
        "--grid",
        dest="chiplets",
        default="2x2",
        help="chiplet grid, e.g. 2x2 (--grid is an alias)",
    )
    check_p.add_argument("--nodes", default="3x3", help="per-chiplet mesh, e.g. 3x3")
    check_p.add_argument(
        "--verbose", action="store_true", help="include INFO findings in reports"
    )
    check_p.add_argument(
        "--prove",
        action="store_true",
        help="run the full certification passes (contracts, reachability, "
        "fault sweep, model checking) instead of the check passes alone",
    )
    check_p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the reports (or, with --prove, the certificates) "
        "as one JSON document",
    )
    check_p.set_defaults(func=_cmd_check)

    prove_p = sub.add_parser(
        "prove",
        help="certify families: interface contracts, exhaustive "
        "reachability, single-link fault sweep and bounded model checking "
        "on top of `check`",
    )
    prove_group = prove_p.add_mutually_exclusive_group(required=True)
    prove_group.add_argument("--family", choices=FAMILIES)
    prove_group.add_argument(
        "--all", action="store_true", help="certify every registered family"
    )
    prove_p.add_argument(
        "--mode",
        choices=("vct", "wormhole", "both"),
        default="both",
        help="flow-control assumption(s) to certify under (default: both)",
    )
    prove_p.add_argument(
        "--chiplets",
        "--grid",
        dest="chiplets",
        default="2x2",
        help="chiplet grid, e.g. 2x2 (--grid is an alias)",
    )
    prove_p.add_argument("--nodes", default="3x3", help="per-chiplet mesh, e.g. 3x3")
    prove_p.add_argument(
        "--no-fault-masks",
        action="store_true",
        help="skip the single-link fault-mask reachability sweep",
    )
    prove_p.add_argument(
        "--max-states",
        type=int,
        default=4_000,
        help="model-checker state budget per adjudicated cycle (default: 4000)",
    )
    prove_p.add_argument(
        "--max-packets",
        type=int,
        default=None,
        help="model-checker in-flight packet bound (default: sized from "
        "the adjudicated cycle's channel capacities)",
    )
    prove_p.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write every certificate into one JSON document",
    )
    prove_p.add_argument(
        "--verbose", action="store_true", help="include INFO findings in reports"
    )
    add_record_args(prove_p)
    prove_p.set_defaults(func=_cmd_prove)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
