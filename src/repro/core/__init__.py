"""The paper's contribution: heterogeneous die-to-die interfaces.

Interface technology records (Table 1), the hetero-PHY link with its
TX dispatch pipeline and RX reorder buffer (Sec 4.2, Eq 1), the dispatch
scheduling policies (Sec 5.3), the bandwidth-latency V-t model (Sec 5.1,
Eq 2) and the weighted path-length model (Sec 5.2, Eq 3/4).
"""

from .interfaces import AIB, BOW, SERDES, TABLE1, InterfaceSpec, lookup
from .phy import HeteroPhyLink, hetero_phy_link_factory
from .rob import ReorderBuffer, RobOverflowError, rob_capacity
from .scheduling import (
    ApplicationAwarePolicy,
    BalancedPolicy,
    DispatchPolicy,
    EnergyEfficientPolicy,
    PassiveApplicationAwarePolicy,
    PerformanceFirstPolicy,
    make_dispatch_policy,
)
from .vt_model import HeteroVTCurve, VTCurve, hetero_curve, pin_constrained_hetero
from .weighted_path import HopCostModel, make_cost_model

__all__ = [
    "AIB",
    "BOW",
    "SERDES",
    "TABLE1",
    "ApplicationAwarePolicy",
    "BalancedPolicy",
    "DispatchPolicy",
    "EnergyEfficientPolicy",
    "PassiveApplicationAwarePolicy",
    "HeteroPhyLink",
    "HeteroVTCurve",
    "HopCostModel",
    "InterfaceSpec",
    "PerformanceFirstPolicy",
    "ReorderBuffer",
    "RobOverflowError",
    "VTCurve",
    "hetero_curve",
    "hetero_phy_link_factory",
    "lookup",
    "make_cost_model",
    "make_dispatch_policy",
    "pin_constrained_hetero",
    "rob_capacity",
]
