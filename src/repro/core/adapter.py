"""Explicit hetero-PHY adapter pipeline model (Fig 7b, Sec 4.2).

The paper describes the adapter front-end like a superscalar pipeline:

* **Fetch** — concurrently receive multiple packets (flits) from the
  router's interface port;
* **Decode** — extract type/priority information from headers;
* **Issue/Dispatch** — reserve physical resources per the scheduling rules
  and hand each flit to its PHY.

:class:`repro.core.phy.HeteroPhyLink` implements this behaviourally inside
the network simulator (collapsed to one adapter cycle, matching the RTL's
measured overhead).  This module models the pipeline *stage by stage* for
microarchitectural study: latches between stages, per-stage width limits,
and cycle-by-cycle observability.  The circuit tests use it to check stage
occupancy and to cross-validate the collapsed model's timing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.noc.flit import Flit
from .scheduling import PARALLEL, SERIAL, DispatchPolicy


@dataclass
class DecodedFlit:
    """A flit annotated by the decode stage."""

    flit: Flit
    vc: int
    priority: int = 0
    msg_class: str = "data"
    ordered: bool = True

    @classmethod
    def from_flit(cls, flit: Flit, vc: int) -> "DecodedFlit":
        packet = flit.packet
        return cls(
            flit=flit,
            vc=vc,
            priority=packet.priority,
            msg_class=packet.msg_class,
            ordered=packet.ordered,
        )


@dataclass
class IssueRecord:
    """One flit leaving the adapter toward a PHY."""

    flit: Flit
    vc: int
    phy: str  # PARALLEL or SERIAL
    sequence_number: int
    cycle: int


@dataclass
class AdapterPipelineStats:
    """Per-stage occupancy peaks and totals."""

    fetched: int = 0
    decoded: int = 0
    issued_parallel: int = 0
    issued_serial: int = 0
    stalled_cycles: int = 0
    peak_dispatch_queue: int = 0


class TxAdapterPipeline:
    """Cycle-explicit Fetch -> Decode -> Dispatch/Issue pipeline.

    Parameters
    ----------
    policy:
        The dispatch policy deciding per-flit PHY assignment.
    fetch_width:
        Flits accepted from the router per cycle (the higher-radix
        crossbar's concurrency, Sec 4.1).
    parallel_width, serial_width:
        PHY lane widths in flits/cycle.
    queue_depth:
        Dispatch-queue capacity (the multi-width FIFO depth).
    """

    def __init__(
        self,
        policy: DispatchPolicy,
        *,
        fetch_width: int = 6,
        parallel_width: int = 2,
        serial_width: int = 4,
        queue_depth: int = 32,
    ) -> None:
        if min(fetch_width, parallel_width, serial_width, queue_depth) < 1:
            raise ValueError("widths and depth must be >= 1")
        self.policy = policy
        self.fetch_width = fetch_width
        self.parallel_width = parallel_width
        self.serial_width = serial_width
        self.queue_depth = queue_depth
        # Stage latches.
        self._fetch_latch: deque[tuple[Flit, int]] = deque()
        self._decode_latch: deque[DecodedFlit] = deque()
        self._dispatch_queue: deque[DecodedFlit] = deque()
        self._next_sn: dict[int, int] = {}
        self.stats = AdapterPipelineStats()

    # -- capacity queries ---------------------------------------------------
    @property
    def dispatch_occupancy(self) -> int:
        return len(self._dispatch_queue)

    def fetch_budget(self) -> int:
        """Flits the fetch stage can accept in the current cycle."""
        in_flight = (
            len(self._fetch_latch) + len(self._decode_latch) + len(self._dispatch_queue)
        )
        latch_room = self.fetch_width - len(self._fetch_latch)
        return max(0, min(latch_room, self.queue_depth - in_flight))

    # -- stage operations -----------------------------------------------------
    def fetch(self, flit: Flit, vc: int) -> None:
        """Stage 1: accept one flit from the router (this cycle)."""
        if len(self._fetch_latch) >= self.fetch_width:
            raise OverflowError("fetch latch full this cycle")
        self._fetch_latch.append((flit, vc))
        self.stats.fetched += 1

    def tick(self, now: int) -> list[IssueRecord]:
        """Advance one cycle; return the flits issued to the PHYs.

        Stage order within the cycle is back to front (issue before
        decode before fetch-latch movement) so a flit takes three cycles
        to traverse the empty pipeline — fetch at t, decode at t+1, issue
        at t+2.
        """
        issued = self._issue(now)
        # Decode -> dispatch queue.
        while self._decode_latch:
            self._dispatch_queue.append(self._decode_latch.popleft())
        # Fetch latch -> decode.
        while self._fetch_latch:
            flit, vc = self._fetch_latch.popleft()
            self._decode_latch.append(DecodedFlit.from_flit(flit, vc))
            self.stats.decoded += 1
        peak = len(self._dispatch_queue)
        if peak > self.stats.peak_dispatch_queue:
            self.stats.peak_dispatch_queue = peak
        return issued

    def _issue(self, now: int) -> list[IssueRecord]:
        queue = self._dispatch_queue
        queue_len = len(queue)
        par_free = self.parallel_width
        ser_free = self.serial_width
        issued: list[IssueRecord] = []
        while queue and (par_free > 0 or ser_free > 0):
            entry = queue[0]
            phy = self.policy.choose_phy(entry.flit, queue_len, par_free, ser_free)
            if phy is None:
                self.stats.stalled_cycles += 1
                break
            if phy == PARALLEL and par_free > 0:
                par_free -= 1
                self.stats.issued_parallel += 1
            elif phy == SERIAL and ser_free > 0:
                ser_free -= 1
                self.stats.issued_serial += 1
            else:
                break
            queue.popleft()
            sn = self._next_sn.get(entry.vc, 0)
            self._next_sn[entry.vc] = sn + 1
            issued.append(IssueRecord(entry.flit, entry.vc, phy, sn, now))
        return issued

    # -- introspection -----------------------------------------------------------
    def drained(self) -> bool:
        return not (
            self._fetch_latch or self._decode_latch or self._dispatch_queue
        )
