"""Die-to-die interface technology records (Table 1).

Four representative interface standards anchor the paper's analysis:

==========  =======  =============  ==========  =========
Spec        SerDes   AIB            BoW         UCIe
==========  =======  =============  ==========  =========
Data rate   112      6.4            32          32        (Gbps/lane)
Latency     5.5+     3.5            3+          2+        (ns, +digital/FEC)
Power       2        0.5            0.7         0.3/1.25  (pJ/bit)
Reach       50       10             50          2/25      (mm)
==========  =======  =============  ==========  =========

``to_phy`` converts a record into simulator link parameters (flits/cycle,
cycles of delay) at a given on-chip clock — the "behavioural digital
circuit in the same clock domain" modelling of Sec 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.channel import PhyParams
from repro.noc.flit import FLIT_BITS

#: Interface categories (Sec 2.2).
SERIAL = "serial"
PARALLEL = "parallel"
COMPROMISED = "compromised"


@dataclass(frozen=True)
class InterfaceSpec:
    """One die-to-die interface technology."""

    name: str
    category: str
    data_rate_gbps: float  # per lane
    latency_ns: float  # physical-layer latency, excluding digital/FEC
    digital_latency_ns: float  # L_D + FEC term where applicable
    power_pj_per_bit: float
    reach_mm: float

    @property
    def total_latency_ns(self) -> float:
        return self.latency_ns + self.digital_latency_ns

    def to_phy(self, clock_ghz: float, lanes: int) -> PhyParams:
        """Simulator link parameters at an on-chip clock frequency.

        Bandwidth is rounded down to whole flits/cycle (at least 1);
        delay is rounded up to whole cycles.
        """
        if clock_ghz <= 0 or lanes < 1:
            raise ValueError("clock_ghz must be > 0 and lanes >= 1")
        bits_per_cycle = self.data_rate_gbps * lanes / clock_ghz
        bandwidth = max(1, int(bits_per_cycle / FLIT_BITS))
        delay = max(1, -(-int(self.total_latency_ns * clock_ghz * 1000) // 1000))
        return PhyParams(bandwidth, delay, self.power_pj_per_bit)


#: Table 1 records.  UCIe power/reach are given for the advanced /
#: standard package variants; we record the standard-package figures and
#: keep the advanced ones as a separate entry.
SERDES = InterfaceSpec("SerDes", SERIAL, 112.0, 5.5, 2.0, 2.0, 50.0)
AIB = InterfaceSpec("AIB", PARALLEL, 6.4, 3.5, 0.0, 0.5, 10.0)
BOW = InterfaceSpec("BoW", COMPROMISED, 32.0, 3.0, 1.5, 0.7, 50.0)
UCIE_STANDARD = InterfaceSpec("UCIe-S", COMPROMISED, 32.0, 2.0, 1.0, 1.25, 25.0)
UCIE_ADVANCED = InterfaceSpec("UCIe-A", COMPROMISED, 32.0, 2.0, 1.0, 0.3, 2.0)

TABLE1 = (SERDES, AIB, BOW, UCIE_STANDARD, UCIE_ADVANCED)


def lookup(name: str) -> InterfaceSpec:
    """Find a Table 1 interface by (case-insensitive) name."""
    for spec in TABLE1:
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"no interface named {name!r}")
