"""Hetero-PHY link: one logical channel carried by two PHYs (Sec 3.1, 4.2).

The transmitter side models the adapter front-end (Fetch / Decode /
Dispatch / Issue): flits granted by the router's switch enter a TX FIFO;
each cycle the dispatch policy moves flits from the FIFO into the parallel
and/or serial PHY pipelines, assigning per-VC sequence numbers.  The
receiver side models the back-end: arriving flits pass through the
sequence-number reorder buffer, which releases them to the downstream
router strictly in per-VC transmit order (preserving wormhole semantics
across the two physical paths).

High-priority or unordered packets may use the *bypass* (Sec 4.2): their
flits jump the TX FIFO and dispatch on the parallel PHY ahead of queued
traffic.  Bypass is only allowed at the parallel interface; per-VC order
is still preserved because a packet is only admitted to the bypass queue
when no same-VC flits are queued behind it.

The adapter adds one pipeline cycle (FIFO traversal), matching the RTL
prototype's "reordering logic adds one extra cycle" (Sec 8.2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.noc.channel import ChannelKind, ChannelSpec
from repro.noc.flit import FLIT_BITS, Flit
from repro.noc.link import Link
from .rob import ReorderBuffer, rob_capacity
from .scheduling import PARALLEL, SERIAL, DispatchPolicy


class HeteroPhyLink(Link):
    """A directed hetero-PHY channel with its transmit/receive adapters."""

    def __init__(
        self,
        spec: ChannelSpec,
        policy: DispatchPolicy,
        *,
        tx_fifo_depth: int = 16,
        rob_capacity_override: Optional[int] = None,
    ) -> None:
        if spec.kind is not ChannelKind.HETERO_PHY:
            raise ValueError("HeteroPhyLink requires a HETERO_PHY channel spec")
        super().__init__(spec)
        if tx_fifo_depth < 1:
            raise ValueError("tx_fifo_depth must be >= 1")
        self.policy = policy
        self.tx_fifo_depth = tx_fifo_depth
        self.parallel = spec.phy
        self.serial = spec.serial_phy
        capacity = (
            rob_capacity_override
            if rob_capacity_override is not None
            else rob_capacity(
                self.parallel.bandwidth, self.serial.delay, self.parallel.delay
            )
        )
        self.rob = ReorderBuffer(capacity)
        self._par_energy_per_flit = FLIT_BITS * self.parallel.energy_pj_per_bit
        self._ser_energy_per_flit = FLIT_BITS * self.serial.energy_pj_per_bit
        self._txq: deque[tuple[Flit, int]] = deque()
        self._bypassq: deque[tuple[Flit, int]] = deque()
        self._txq_vc_count: dict[int, int] = {}
        self._bypass_vcs: set[int] = set()
        self._next_sn: dict[int, int] = {}
        self._par_pipe: deque[tuple[int, Flit, int]] = deque()
        self._ser_pipe: deque[tuple[int, Flit, int]] = deque()
        # Per-PHY flit counters (for utilization / ablation studies).
        self.flits_parallel = 0
        self.flits_serial = 0
        self.flits_bypassed = 0

    # -- transmit side ------------------------------------------------------
    def accept_budget(self, now: int) -> int:
        total_bw = self.parallel.bandwidth + self.serial.bandwidth
        free = self.tx_fifo_depth - len(self._txq) - len(self._bypassq)
        return min(total_bw, free) - self._accepted_in(now)

    def accept(self, flit: Flit, vc: int, now: int) -> None:
        self._note_accept(now)
        if self._telemetry.link_accept is not None:
            self._telemetry.link_accept(self, flit, vc, now)
        if flit.is_head:
            self._decide_bypass(flit, vc)
        if vc in self._bypass_vcs:
            flit.bypassed = True
            self._bypassq.append((flit, vc))
            if flit.is_tail:
                self._bypass_vcs.discard(vc)
        else:
            self._txq.append((flit, vc))
            self._txq_vc_count[vc] = self._txq_vc_count.get(vc, 0) + 1
        self.network.activate_link(self)

    def _decide_bypass(self, flit: Flit, vc: int) -> None:
        """Admit a whole packet to the bypass queue if safe and eligible."""
        packet = flit.packet
        eligible = self.policy.bypass_enabled and (
            packet.priority > 0 or not packet.ordered
        )
        if eligible and self._txq_vc_count.get(vc, 0) == 0:
            self._bypass_vcs.add(vc)

    # -- per-cycle operation ---------------------------------------------------
    def step(self, now: int) -> bool:
        self._receive(now)
        self._dispatch(now)
        self._deliver_credits(now)
        return self._holds_state()

    def step_timed(self, now: int, pc, phases: dict, t: int) -> tuple[bool, int]:
        """:meth:`step` with host wall-time attribution (lap-timer protocol).

        Same sub-step order; ``t`` is the caller's last clock reading and
        each sub-step charges ``pc() - t`` to its phase (see
        :meth:`repro.noc.link.Link.step_timed`).  Receive/reorder time
        (ROB insert + release + downstream delivery) lands in
        ``"phy_rx"``, serialize/dispatch and credit delivery in
        ``"phy_tx"``.  Phase keys sync with
        :data:`repro.telemetry.hostprof.PHASES`.
        """
        self._receive(now)
        t2 = pc()
        phases["phy_rx"] += t2 - t
        self._dispatch(now)
        self._deliver_credits(now)
        t3 = pc()
        phases["phy_tx"] += t3 - t2
        return self._holds_state(), t3

    def _holds_state(self) -> bool:
        """True while any queue, pipe, ROB slot or pending credit is live."""
        return bool(
            self._txq
            or self._bypassq
            or self._par_pipe
            or self._ser_pipe
            or self.rob.occupancy
            or self._credit_queue
        )

    def _dispatch(self, now: int) -> None:
        par_free = self.parallel.bandwidth
        ser_free = self.serial.bandwidth
        # Bypass first: parallel PHY only (Sec 4.2).
        while self._bypassq and par_free > 0:
            flit, vc = self._bypassq.popleft()
            self._issue(flit, vc, PARALLEL, now)
            par_free -= 1
            self.flits_bypassed += 1
        # Main dispatch queue: FIFO, policy chooses the PHY per flit.  The
        # queue length seen by the policy is the state at cycle start
        # (threshold logic samples the FIFO level, Sec 7.3).
        queue_len = len(self._txq)
        while self._txq and (par_free > 0 or ser_free > 0):
            flit, vc = self._txq[0]
            phy = self.policy.choose_phy(flit, queue_len, par_free, ser_free)
            if phy is None:
                break
            if phy == PARALLEL and par_free > 0:
                par_free -= 1
            elif phy == SERIAL and ser_free > 0:
                ser_free -= 1
            else:
                break
            self._txq.popleft()
            self._txq_vc_count[vc] -= 1
            self._issue(flit, vc, phy, now)

    def _issue(self, flit: Flit, vc: int, phy: str, now: int) -> None:
        sn = self._next_sn.get(vc, 0)
        self._next_sn[vc] = sn + 1
        flit.sn = sn
        if self._telemetry.phy_dispatch is not None:
            self._telemetry.phy_dispatch(self, flit, vc, phy, now)
        if phy == PARALLEL:
            self._account(flit, self._par_energy_per_flit)
            self._par_pipe.append((now + self.parallel.delay, flit, vc))
            self.flits_parallel += 1
        else:
            self._account(flit, self._ser_energy_per_flit)
            self._ser_pipe.append((now + self.serial.delay, flit, vc))
            self.flits_serial += 1

    # -- receive side --------------------------------------------------------------
    def _receive(self, now: int) -> None:
        # Event-ordering contract (the latency ledger depends on it): for a
        # flit arriving in cycle ``now``, ``rob_insert`` fires first, then —
        # in the same cycle, because the drain below is unbounded —
        # ``rob_release`` followed by the downstream router's ``flit_recv``.
        # A flit therefore never shows a hidden gap between ROB release and
        # input-buffer arrival; ROB reorder wait is exactly the
        # insert-to-release distance, which is zero unless the flit had to
        # wait for a predecessor on the slower PHY.
        rob = self.rob
        rob_insert = self._telemetry.rob_insert
        for pipe in (self._par_pipe, self._ser_pipe):
            while pipe and pipe[0][0] <= now:
                _, flit, vc = pipe.popleft()
                rob.insert(flit, vc)
                if rob_insert is not None:
                    rob_insert(self, flit, vc, now)
        if rob.occupancy == 0:
            return
        # The RX forwards every releasable flit in the cycle it becomes
        # in-order: the heterogeneous router's multi-port input buffer can
        # sink the full interface width (Sec 4.1), and credits guarantee
        # downstream space.  Unbounded draining keeps Eq (1) an exact
        # occupancy bound (see tests/test_phy_link.py).
        rob_release = self._telemetry.rob_release
        for flit, vc in rob.release(None):
            flit.sn = None
            if rob_release is not None:
                rob_release(self, flit, vc, now)
            self.dst_router.receive_flit(self.dst_port, vc, flit, now)

    # -- introspection ----------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Flits inside the adapter and PHY pipelines."""
        return (
            len(self._txq)
            + len(self._bypassq)
            + len(self._par_pipe)
            + len(self._ser_pipe)
            + self.rob.occupancy
        )

    @property
    def phy_split(self) -> tuple[int, int]:
        """(parallel, serial) flit counts transmitted so far."""
        return self.flits_parallel, self.flits_serial

    def vc_flits(self, vc: int) -> int:
        return (
            sum(1 for _f, q_vc in self._txq if q_vc == vc)
            + sum(1 for _f, q_vc in self._bypassq if q_vc == vc)
            + sum(1 for _d, _f, p_vc in self._par_pipe if p_vc == vc)
            + sum(1 for _d, _f, p_vc in self._ser_pipe if p_vc == vc)
            + self.rob.occupancy_of(vc)
        )

    def snapshot_state(self) -> dict:
        def queue(pairs: deque[tuple[Flit, int]]) -> list[dict]:
            return [
                {"pid": flit.packet.pid, "flit": flit.index, "vc": vc}
                for flit, vc in pairs
            ]

        def pipe(entries: deque[tuple[int, Flit, int]]) -> list[dict]:
            return [
                {"due": due, "pid": flit.packet.pid, "flit": flit.index, "vc": vc}
                for due, flit, vc in entries
            ]

        state = super().snapshot_state()
        state["tx_fifo"] = queue(self._txq)
        state["bypass"] = queue(self._bypassq)
        state["parallel_pipe"] = pipe(self._par_pipe)
        state["serial_pipe"] = pipe(self._ser_pipe)
        state["rob"] = self.rob.snapshot_state()
        return state


def hetero_phy_link_factory(
    policy_factory: Callable[[], DispatchPolicy],
    *,
    tx_fifo_depth: int = 16,
    rob_capacity_override: Optional[int] = None,
) -> Callable[[ChannelSpec], Link]:
    """A link factory for :meth:`Network.add_channel`.

    Non-hetero channels become plain pipelined links; each hetero-PHY
    channel gets its own policy instance from ``policy_factory``.
    """
    from repro.noc.link import PipelinedLink

    def factory(spec: ChannelSpec) -> Link:
        if spec.kind is ChannelKind.HETERO_PHY:
            return HeteroPhyLink(
                spec,
                policy_factory(),
                tx_fifo_depth=tx_fifo_depth,
                rob_capacity_override=rob_capacity_override,
            )
        return PipelinedLink(spec)

    return factory
