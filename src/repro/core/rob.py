"""Receiver-side reorder buffer of the hetero-PHY adapter (Sec 4.2).

Flits of one virtual channel may be split across the parallel and the
serial PHY, whose propagation delays differ; the receiver restores the
transmit order using per-VC sequence numbers.  Because propagation delays
are deterministic, the worst-case capacity is Eq (1)::

    S_rob = B_p * (D_s - D_p)

only parallel-PHY flits ever wait (a serial flit's predecessors always
arrive no later than it does), and at most ``B_p`` of them accumulate per
cycle for at most ``D_s - D_p`` cycles.  The buffer enforces this bound:
exceeding it raises, which the property tests use to validate Eq (1).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.noc.flit import Flit


def rob_capacity(parallel_bandwidth: int, serial_delay: int, parallel_delay: int) -> int:
    """Eq (1): worst-case reorder buffer size in flits."""
    if parallel_bandwidth < 1:
        raise ValueError("parallel_bandwidth must be >= 1")
    return max(1, parallel_bandwidth * max(0, serial_delay - parallel_delay))


class RobOverflowError(RuntimeError):
    """The reorder buffer exceeded its provisioned capacity."""


class ReorderBuffer:
    """Sequence-number reorder buffer shared by all VCs of one link.

    ``insert`` files an arrived flit under its (vc, sn); ``release`` pops
    flits whose sequence number is the next expected one for their VC, in
    at most ``budget`` flits per call.  ``max_occupancy`` records the peak
    number of flits left waiting *after* a release pass — the quantity
    Eq (1) bounds.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._waiting: dict[tuple[int, int], Flit] = {}
        self._expected: dict[int, int] = {}
        self.max_occupancy = 0
        self._window_peak = 0

    @property
    def occupancy(self) -> int:
        return len(self._waiting)

    def take_window_peak(self) -> int:
        """Peak post-release occupancy since the last call, then reset.

        Telemetry epoch collectors call this once per epoch to report the
        per-epoch ROB high-water mark without sampling every cycle.
        """
        peak = max(self._window_peak, len(self._waiting))
        self._window_peak = 0
        return peak

    def occupancy_of(self, vc: int) -> int:
        """Waiting flits belonging to one virtual channel."""
        return sum(1 for waiting_vc, _sn in self._waiting if waiting_vc == vc)

    def waiting_flits(self) -> list[Flit]:
        """Flits currently parked out of order (insertion order)."""
        return list(self._waiting.values())

    def snapshot_state(self) -> dict:
        """Forensic snapshot: expected sequence numbers and parked flits."""
        return {
            "capacity": self.capacity,
            "occupancy": len(self._waiting),
            "max_occupancy": self.max_occupancy,
            "expected": {str(vc): sn for vc, sn in sorted(self._expected.items())},
            "waiting": [
                {"vc": vc, "sn": sn, "pid": flit.packet.pid, "flit": flit.index}
                for (vc, sn), flit in sorted(self._waiting.items())
            ],
        }

    def insert(self, flit: Flit, vc: int) -> None:
        if flit.sn is None:
            raise ValueError("flit has no sequence number")
        self._waiting[(vc, flit.sn)] = flit

    def release(self, budget: Optional[int] = None) -> Iterator[tuple[Flit, int]]:
        """Yield in-order (flit, vc) pairs, up to ``budget`` flits.

        Raises :class:`RobOverflowError` if, after releasing, occupancy
        still exceeds the provisioned capacity — the invariant of Eq (1).
        """
        released = 0
        waiting = self._waiting
        expected = self._expected
        progress = True
        while progress and (budget is None or released < budget):
            progress = False
            # Ascending-VC order makes the within-cycle release sequence
            # well-defined, so downstream arbitration and telemetry
            # subscribers see a reproducible event order.
            for vc in sorted({vc for vc, _sn in waiting}):
                sn = expected.get(vc, 0)
                flit = waiting.pop((vc, sn), None)
                if flit is not None:
                    expected[vc] = sn + 1
                    released += 1
                    progress = True
                    yield flit, vc
                    if budget is not None and released >= budget:
                        break
        if len(waiting) > self.max_occupancy:
            # Occupancy is sampled after the in-order drain: it counts the
            # flits that must actually *wait* across cycles, which is what
            # Eq (1) bounds.
            self.max_occupancy = len(waiting)
        if len(waiting) > self._window_peak:
            self._window_peak = len(waiting)
        if len(waiting) > self.capacity:
            raise RobOverflowError(
                f"reorder buffer holds {len(waiting)} flits, "
                f"capacity {self.capacity} (Eq 1 bound violated)"
            )
