"""Hetero-PHY dispatch (scheduling) policies (Sec 5.3).

The adapter's dispatch stage assigns each flit leaving the transmitter to
one of the two PHYs.  Three rule-based policies come from the paper:

``performance``
    Dispatch whenever any PHY is free (gamma = 0 in Eq 3); the interface
    always works at full capacity.
``energy_efficient``
    Always use the parallel PHY (the serial PHY stays dark); highest
    energy efficiency, lowest throughput.
``balanced``
    Parallel PHY at higher priority; the serial PHY is enabled only when
    the dispatch queue exceeds a threshold.  This is the policy the RTL
    prototype implements (Sec 7.3: half-full FIFO -> read three flits, one
    to the parallel and two to the serial PHY).

``application_aware`` additionally honours packet metadata (Sec 5.3.2):
high-priority packets prefer the low-latency parallel PHY, packets of the
``"bulk"`` message class prefer the high-throughput serial PHY; everything
else falls back to a base rule policy.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.noc.flit import Flit
from repro.sim.config import SimConfig

#: PHY identifiers returned by ``choose_phy``.
PARALLEL = "P"
SERIAL = "S"


class DispatchPolicy(Protocol):
    """Decides, flit by flit, which PHY transmits next."""

    #: Whether high-priority / unordered packets may jump the dispatch
    #: queue through the parallel-PHY bypass (Sec 4.2).
    bypass_enabled: bool

    def choose_phy(
        self, flit: Flit, queue_len: int, par_free: int, ser_free: int
    ) -> Optional[str]:
        """``"P"``, ``"S"``, or None to stall this cycle."""
        ...


class PerformanceFirstPolicy:
    """Use any free PHY; parallel first for its lower latency."""

    bypass_enabled = True

    def choose_phy(
        self, flit: Flit, queue_len: int, par_free: int, ser_free: int
    ) -> Optional[str]:
        if par_free > 0:
            return PARALLEL
        if ser_free > 0:
            return SERIAL
        return None


class EnergyEfficientPolicy:
    """Only ever dispatch to the parallel PHY (Sec 5.3.1)."""

    bypass_enabled = False

    def choose_phy(
        self, flit: Flit, queue_len: int, par_free: int, ser_free: int
    ) -> Optional[str]:
        return PARALLEL if par_free > 0 else None


class BalancedPolicy:
    """Threshold rule: serial PHY joins in only under queue pressure.

    ``threshold`` is the dispatch-queue length at which the serial PHY is
    enabled; the RTL prototype uses half the TX FIFO capacity (Sec 7.3).
    """

    bypass_enabled = True

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold

    def choose_phy(
        self, flit: Flit, queue_len: int, par_free: int, ser_free: int
    ) -> Optional[str]:
        if par_free > 0:
            return PARALLEL
        if queue_len >= self.threshold and ser_free > 0:
            return SERIAL
        return None


class ApplicationAwarePolicy:
    """Packet-metadata-driven dispatch on top of a base rule policy.

    Active application awareness (Sec 5.3.2): the application marks
    packets at packetization time; the adapter honours the marks.
    """

    def __init__(self, base: Optional[DispatchPolicy] = None) -> None:
        self.base = base or PerformanceFirstPolicy()
        self.bypass_enabled = self.base.bypass_enabled

    def choose_phy(
        self, flit: Flit, queue_len: int, par_free: int, ser_free: int
    ) -> Optional[str]:
        packet = flit.packet
        if packet.priority > 0:
            # Minimal latency: wait for the parallel PHY if necessary.
            return PARALLEL if par_free > 0 else None
        if packet.msg_class == "bulk":
            # Maximum throughput: prefer the wide serial PHY.
            if ser_free > 0:
                return SERIAL
            if par_free > 0:
                return PARALLEL
            return None
        return self.base.choose_phy(flit, queue_len, par_free, ser_free)


class PassiveApplicationAwarePolicy:
    """Dispatch by objective packet characteristics (Sec 5.3.2, passive).

    No application involvement: short packets (control/coherence traffic,
    at most ``short_threshold`` flits) ride the low-latency parallel PHY;
    long packets (bulk data) prefer the wide serial PHY.  Falls back to
    the other PHY rather than stalling, like the performance-first rule.
    """

    bypass_enabled = True

    def __init__(self, short_threshold: int = 2) -> None:
        if short_threshold < 1:
            raise ValueError("short_threshold must be >= 1")
        self.short_threshold = short_threshold

    def choose_phy(
        self, flit: Flit, queue_len: int, par_free: int, ser_free: int
    ) -> Optional[str]:
        short = flit.packet.length <= self.short_threshold
        first, second = (PARALLEL, SERIAL) if short else (SERIAL, PARALLEL)
        free = {PARALLEL: par_free, SERIAL: ser_free}
        if free[first] > 0:
            return first
        if free[second] > 0:
            return second
        return None


def make_dispatch_policy(name: str, config: SimConfig) -> DispatchPolicy:
    """Build a dispatch policy by name.

    Names: ``"performance"``, ``"energy_efficient"``, ``"balanced"``,
    ``"application_aware"``, ``"passive_aware"``.
    """
    if name == "performance":
        return PerformanceFirstPolicy()
    if name == "energy_efficient":
        return EnergyEfficientPolicy()
    if name == "balanced":
        return BalancedPolicy(threshold=max(1, config.tx_fifo_depth // 2))
    if name == "application_aware":
        return ApplicationAwarePolicy(
            BalancedPolicy(threshold=max(1, config.tx_fifo_depth // 2))
        )
    if name == "passive_aware":
        return PassiveApplicationAwarePolicy()
    raise ValueError(f"unknown dispatch policy {name!r}")
