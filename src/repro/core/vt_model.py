"""Bandwidth-latency (V-t) interface model (Sec 5.1, Fig 8).

Eq (2) models the data volume received and restored in the receiver
adapter's buffer::

    V(t) = R(B * (t - D)),   R(x) = max(x, 0)

for an interface with bandwidth ``B`` and total delay ``D`` (t = 0 is when
the transmitter adapter starts processing).  A serial interface has a
large slope but a large t-intercept; a parallel interface the opposite.
The hetero-PHY curve is the *sum* of its component curves — a piecewise
fold that transmits more data with lower latency than either component.

Pin-constrained comparison (Fig 8b): since I/O pin count determines
silicon area and cost, curves can be compared at a fixed total pin budget
by scaling each interface's bandwidth with the share of pins it gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class VTCurve:
    """Eq (2) for one interface (bandwidth in flits/cycle, delay in cycles)."""

    bandwidth: float
    delay: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def volume(self, t: float | np.ndarray) -> float | np.ndarray:
        """V(t): data volume delivered by time t."""
        return np.maximum(self.bandwidth * (np.asarray(t, dtype=float) - self.delay), 0.0)

    def time_to_deliver(self, volume: float) -> float:
        """Inverse of V(t): the time to deliver a given volume."""
        if volume < 0:
            raise ValueError("volume must be >= 0")
        if volume == 0:
            return 0.0
        return self.delay + volume / self.bandwidth

    def scaled(self, pin_share: float) -> "VTCurve":
        """The same technology with ``pin_share`` of its lanes (Fig 8b)."""
        if not 0 < pin_share <= 1:
            raise ValueError("pin_share must be in (0, 1]")
        return VTCurve(self.bandwidth * pin_share, self.delay, f"{self.name}*{pin_share:g}")


@dataclass(frozen=True)
class HeteroVTCurve:
    """Sum of component V-t curves: the hetero-PHY fold of Fig 8a."""

    components: tuple[VTCurve, ...]
    name: str = "hetero"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("need at least one component")

    def volume(self, t: float | np.ndarray) -> float | np.ndarray:
        total = None
        for curve in self.components:
            v = curve.volume(t)
            total = v if total is None else total + v
        return total

    def time_to_deliver(self, volume: float) -> float:
        """Inverse of the summed piecewise-linear V(t) (binary search)."""
        if volume < 0:
            raise ValueError("volume must be >= 0")
        if volume == 0:
            return 0.0
        lo = min(c.delay for c in self.components)
        hi = max(c.time_to_deliver(volume) for c in self.components)
        for _ in range(64):
            mid = (lo + hi) / 2
            if self.volume(mid) < volume:
                lo = mid
            else:
                hi = mid
        return hi

    @property
    def min_delay(self) -> float:
        """The t-intercept: the fastest component's delay."""
        return min(c.delay for c in self.components)


def hetero_curve(parallel: VTCurve, serial: VTCurve) -> HeteroVTCurve:
    """The hetero-PHY V-t curve from its two component interfaces."""
    return HeteroVTCurve((parallel, serial), name=f"{parallel.name}+{serial.name}")


def pin_constrained_hetero(
    parallel: VTCurve,
    serial: VTCurve,
    parallel_pin_share: float,
) -> HeteroVTCurve:
    """A hetero-PHY curve under a fixed total pin budget (Fig 8b).

    ``parallel_pin_share`` of the pins implement the parallel PHY, the
    rest the serial PHY; each component's bandwidth scales with its share,
    modelling the lane/channel ratio adjustment of Sec 5.1.
    """
    if not 0 < parallel_pin_share < 1:
        raise ValueError("parallel_pin_share must be in (0, 1)")
    return HeteroVTCurve(
        (parallel.scaled(parallel_pin_share), serial.scaled(1 - parallel_pin_share)),
        name=f"hetero@{parallel_pin_share:g}",
    )


def sample_curves(
    curves: Sequence[VTCurve | HeteroVTCurve], t_max: float, points: int = 50
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Evaluate curves on a common time grid (the Fig 8 plot data)."""
    if t_max <= 0 or points < 2:
        raise ValueError("t_max must be > 0 and points >= 2")
    t = np.linspace(0.0, t_max, points)
    return {curve.name: (t, np.asarray(curve.volume(t))) for curve in curves}
