"""Weighted path length (Sec 5.2).

For heterogeneous networks the hop count reflects only part of a path's
cost: one serial hop can cost several times the latency and energy of a
parallel hop.  Eq (3) defines the cost of hop *i* as::

    C_i = alpha * D_i + beta / B_i + gamma * E_i

with latency ``D_i`` (cycles), bandwidth ``B_i`` (flits/cycle) and energy
``E_i`` (pJ per flit here), and Eq (4) the weighted length of a path as the
sum of its hop costs.  Routing and subnetwork-selection policies instantiate
different coefficient settings: the performance-first policy sets
``gamma = 0``; the energy-efficient policy weights energy heavily
(Sec 5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.noc.channel import ChannelKind
from repro.noc.flit import FLIT_BITS
from repro.sim.config import SimConfig

#: Cycles a flit spends in the router before transmission: routing, VC
#: allocation and switch allocation complete in one cycle at zero load
#: (speculative router, Sec 7.1).
ROUTER_PIPELINE_CYCLES = 1


@dataclass(frozen=True)
class HopCostModel:
    """Eq (3) hop costs for every channel kind of a configuration.

    A hetero-PHY hop is costed by its parallel component (delay and energy)
    at the aggregate bandwidth, reflecting the balanced dispatch policy that
    prefers the parallel PHY (Sec 5.3.1).
    """

    config: SimConfig
    alpha: float = 1.0
    beta: float = 0.0
    gamma: float = 0.0

    # -- per-kind physical figures ----------------------------------------
    def delay(self, kind: ChannelKind) -> int:
        """Per-hop latency D_i in cycles, including the router pipeline."""
        config = self.config
        link = {
            ChannelKind.ONCHIP: config.onchip_delay,
            ChannelKind.PARALLEL: config.parallel_delay,
            ChannelKind.SERIAL: config.serial_delay,
            ChannelKind.HETERO_PHY: config.parallel_delay,
        }[kind]
        return ROUTER_PIPELINE_CYCLES + link

    def bandwidth(self, kind: ChannelKind) -> int:
        """Per-hop bandwidth B_i in flits/cycle."""
        config = self.config
        return {
            ChannelKind.ONCHIP: config.onchip_bandwidth,
            ChannelKind.PARALLEL: config.parallel_bandwidth,
            ChannelKind.SERIAL: config.serial_bandwidth,
            ChannelKind.HETERO_PHY: config.parallel_bandwidth
            + config.serial_bandwidth,
        }[kind]

    def energy_pj(self, kind: ChannelKind) -> float:
        """Per-hop energy E_i in pJ per flit."""
        config = self.config
        per_bit = {
            ChannelKind.ONCHIP: config.onchip_energy_pj_per_bit,
            ChannelKind.PARALLEL: config.parallel_energy_pj_per_bit,
            ChannelKind.SERIAL: config.serial_energy_pj_per_bit,
            ChannelKind.HETERO_PHY: config.parallel_energy_pj_per_bit,
        }[kind]
        return FLIT_BITS * per_bit

    # -- Eq (3) / Eq (4) -----------------------------------------------------
    def hop_cost(self, kind: ChannelKind) -> float:
        """Eq (3): C_i = alpha*D_i + beta/B_i + gamma*E_i."""
        return (
            self.alpha * self.delay(kind)
            + self.beta / self.bandwidth(kind)
            + self.gamma * self.energy_pj(kind)
        )

    def path_length(self, kinds: Iterable[ChannelKind]) -> float:
        """Eq (4): weighted length of a path given its hop kinds."""
        return sum(self.hop_cost(kind) for kind in kinds)

    # -- named policy instantiations -------------------------------------------
    @classmethod
    def performance_first(cls, config: SimConfig) -> "HopCostModel":
        """gamma = 0: latency and serialization only (Sec 5.3.1)."""
        return cls(config, alpha=1.0, beta=float(config.packet_length), gamma=0.0)

    @classmethod
    def energy_efficient(cls, config: SimConfig) -> "HopCostModel":
        """Energy-dominated costs: serial hops become very expensive."""
        return cls(config, alpha=1.0, beta=float(config.packet_length), gamma=1.0)

    @classmethod
    def balanced(cls, config: SimConfig) -> "HopCostModel":
        """A mild energy weight on top of performance-first costs."""
        return cls(config, alpha=1.0, beta=float(config.packet_length), gamma=0.05)


def make_cost_model(config: SimConfig, policy: str) -> HopCostModel:
    """Cost model for a named scheduling policy.

    ``policy`` is one of ``"performance"``, ``"balanced"``,
    ``"energy_efficient"``.
    """
    factories = {
        "performance": HopCostModel.performance_first,
        "balanced": HopCostModel.balanced,
        "energy_efficient": HopCostModel.energy_efficient,
    }
    try:
        factory = factories[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {sorted(factories)}"
        ) from None
    return factory(config)
