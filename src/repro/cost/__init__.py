"""Chiplet-reuse economics (the paper's flexibility-economy argument)."""

from .reuse import (
    HETERO_IF_AREA_OVERHEAD,
    PackageCost,
    PortfolioCost,
    ProcessCost,
    SystemClass,
    portfolio_cost,
    reuse_savings,
)

__all__ = [
    "HETERO_IF_AREA_OVERHEAD",
    "PackageCost",
    "PortfolioCost",
    "ProcessCost",
    "SystemClass",
    "portfolio_cost",
    "reuse_savings",
]
