"""Chiplet-reuse cost model (Motivation 1, Sec 2.1/4.3/10).

The paper argues that the heterogeneous interface's biggest saving is
*flexibility*: one chiplet design can be reused across systems of
different scales and packaging classes, instead of re-designing a chiplet
per scenario because its uniform interface fits only one interconnect
style.  This module quantifies that argument with a simplified
Chiplet-Actuary-style cost model [29]:

* recurring die cost from wafer price and negative-binomial yield,
* one-time design/tapeout (NRE) cost amortized over volume,
* package cost per system (standard organic substrate vs silicon
  interposer, area-based),

and compares two strategies over a portfolio of target systems:

``uniform``   — each system class needs its own chiplet tapeout (its
                interface dictates the packaging/topology fit);
``hetero-IF`` — one chiplet (slightly larger: two PHYs) serves every
                system class.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProcessCost:
    """Technology cost assumptions (defaults roughly 7nm-class)."""

    wafer_cost_usd: float = 9_000.0
    wafer_diameter_mm: float = 300.0
    defect_density_per_mm2: float = 0.001
    yield_clustering: float = 2.0  # negative-binomial alpha
    nre_usd_per_mm2: float = 800_000.0  # design+verification+mask amortizable
    nre_base_usd: float = 20_000_000.0  # per-tapeout fixed cost

    def dies_per_wafer(self, die_area_mm2: float) -> int:
        """Classic dies-per-wafer estimate with edge loss."""
        if die_area_mm2 <= 0:
            raise ValueError("die area must be > 0")
        import math

        d = self.wafer_diameter_mm
        return max(
            1,
            int(
                math.pi * (d / 2) ** 2 / die_area_mm2
                - math.pi * d / math.sqrt(2 * die_area_mm2)
            ),
        ) if die_area_mm2 < math.pi * (d / 2) ** 2 else 1

    def die_yield(self, die_area_mm2: float) -> float:
        """Negative-binomial yield model."""
        a = self.yield_clustering
        d0 = self.defect_density_per_mm2
        return (1 + die_area_mm2 * d0 / a) ** (-a)

    def die_cost(self, die_area_mm2: float) -> float:
        """Recurring cost of one good die."""
        per_die = self.wafer_cost_usd / self.dies_per_wafer(die_area_mm2)
        return per_die / self.die_yield(die_area_mm2)

    def nre(self, die_area_mm2: float) -> float:
        """One-time cost of taping out one chiplet design."""
        return self.nre_base_usd + self.nre_usd_per_mm2 * die_area_mm2


@dataclass(frozen=True)
class PackageCost:
    """Per-system packaging cost assumptions."""

    substrate_usd_per_mm2: float = 0.02
    interposer_usd_per_mm2: float = 0.35
    base_usd: float = 5.0

    def cost(self, area_mm2: float, *, interposer: bool) -> float:
        rate = self.interposer_usd_per_mm2 if interposer else self.substrate_usd_per_mm2
        return self.base_usd + rate * area_mm2


@dataclass(frozen=True)
class SystemClass:
    """One target system in the portfolio (Fig 2 scenarios)."""

    name: str
    n_chiplets: int
    volume: int  # units to ship
    needs_interposer: bool  # parallel-IF systems need advanced packaging
    package_overhead: float = 1.8  # package area / total silicon area


@dataclass
class PortfolioCost:
    """Cost breakdown of serving a portfolio with a chiplet strategy."""

    strategy: str
    nre_usd: float = 0.0
    silicon_usd: float = 0.0
    package_usd: float = 0.0
    systems: dict[str, float] = field(default_factory=dict)

    @property
    def total_usd(self) -> float:
        return self.nre_usd + self.silicon_usd + self.package_usd


#: Area overhead of carrying both PHYs on the hetero-IF chiplet (Sec 4.3:
#: the deprecated interface "wastes some chip area" in exclusive mode).
HETERO_IF_AREA_OVERHEAD = 0.06


def portfolio_cost(
    systems: list[SystemClass],
    chiplet_area_mm2: float,
    *,
    strategy: str,
    process: ProcessCost | None = None,
    package: PackageCost | None = None,
) -> PortfolioCost:
    """Total cost of shipping the portfolio under a chiplet strategy.

    ``strategy="uniform"``: one dedicated tapeout per system class (the
    chiplet's uniform interface matches exactly one packaging/topology
    style).  ``strategy="hetero"``: a single tapeout, with
    :data:`HETERO_IF_AREA_OVERHEAD` extra area for the second PHY, reused
    by every system class.
    """
    if strategy not in ("uniform", "hetero"):
        raise ValueError("strategy must be 'uniform' or 'hetero'")
    process = process or ProcessCost()
    package = package or PackageCost()
    result = PortfolioCost(strategy)
    if strategy == "hetero":
        area = chiplet_area_mm2 * (1 + HETERO_IF_AREA_OVERHEAD)
        result.nre_usd = process.nre(area)
        die_cost = process.die_cost(area)
    else:
        area = chiplet_area_mm2
        result.nre_usd = process.nre(area) * len(systems)
        die_cost = process.die_cost(area)
    for system in systems:
        silicon = die_cost * system.n_chiplets * system.volume
        pkg_area = area * system.n_chiplets * system.package_overhead
        pkg = package.cost(pkg_area, interposer=system.needs_interposer) * system.volume
        result.silicon_usd += silicon
        result.package_usd += pkg
        result.systems[system.name] = silicon + pkg
    return result


def reuse_savings(
    systems: list[SystemClass],
    chiplet_area_mm2: float,
    *,
    process: ProcessCost | None = None,
    package: PackageCost | None = None,
) -> dict[str, float]:
    """Compare the two strategies; positive saving favours hetero-IF.

    Returns total costs and the relative saving.  With several system
    classes, amortizing one tapeout across the portfolio dominates the
    small per-die area overhead — "flexibility itself is the most
    significant cost saving" (Sec 4.3).
    """
    uniform = portfolio_cost(
        systems, chiplet_area_mm2, strategy="uniform", process=process, package=package
    )
    hetero = portfolio_cost(
        systems, chiplet_area_mm2, strategy="hetero", process=process, package=package
    )
    saving = uniform.total_usd - hetero.total_usd
    return {
        "uniform_total_usd": uniform.total_usd,
        "hetero_total_usd": hetero.total_usd,
        "saving_usd": saving,
        "saving_fraction": saving / uniform.total_usd if uniform.total_usd else 0.0,
    }
