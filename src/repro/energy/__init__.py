"""Energy accounting helpers (Sec 8.3)."""

from .model import EnergyReport, energy_report

__all__ = ["EnergyReport", "energy_report"]
