"""Energy reporting helpers (Sec 8.3).

Per-flit link energy is accounted on the fly by the links (parallel
1 pJ/bit, serial 2.4 pJ/bit, on-chip 0.1 pJ/bit by default); this module
turns the raw counters of a finished run into the per-packet breakdown
the paper's Fig 16-18 report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import Stats


@dataclass(frozen=True)
class EnergyReport:
    """Average per-packet energy, split the way the figures split it."""

    onchip_pj: float
    interface_pj: float
    packets: int

    @property
    def total_pj(self) -> float:
        return self.onchip_pj + self.interface_pj

    @property
    def interface_share(self) -> float:
        total = self.total_pj
        return self.interface_pj / total if total else 0.0


def energy_report(stats: Stats) -> EnergyReport:
    """Summarize a run's measured per-packet energy."""
    return EnergyReport(
        onchip_pj=stats.avg_energy_onchip_pj,
        interface_pj=stats.avg_energy_interface_pj,
        packets=stats.packets_delivered,
    )
