"""Per-figure experiment modules.

Each module exposes ``run(scale) -> ExperimentResult`` regenerating the
numeric series behind one table or figure of the paper's evaluation.
``EXPERIMENTS`` maps experiment ids to their runners (used by the CLI and
the benchmark harness).
"""

from . import (
    fig8,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    table1,
    table3,
    table4,
)
from .common import ExperimentResult, current_scale

EXPERIMENTS = {
    "table1": table1.run,
    "fig8": fig8.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
}

__all__ = ["EXPERIMENTS", "ExperimentResult", "current_scale"]
