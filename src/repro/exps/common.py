"""Shared infrastructure for the per-figure experiment modules.

Every experiment module exposes ``run(scale) -> ExperimentResult`` where
``scale`` is one of:

``"tiny"``
    Seconds-scale smoke configuration (used by the test suite).
``"small"``
    Minutes-scale configuration preserving the qualitative shape (the
    default for benchmarks).
``"paper"``
    The paper's full configuration (Table 2 horizons, full system sizes).
    Select it with the environment variable ``REPRO_SCALE=paper`` (or
    ``REPRO_FULL_SCALE=1``).

Results are plain tables: the numeric series behind each figure, printed
as aligned text and exportable as CSV.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from repro.sim.config import SimConfig

SCALES = ("tiny", "small", "paper")


def current_scale(default: str = "small") -> str:
    """The experiment scale selected via environment variables."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return "paper"
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {SCALES}, got {scale!r}")
    return scale


#: Simulation horizons per scale: (cycles, warm-up).
HORIZONS = {
    "tiny": (2_000, 400),
    "small": (6_000, 1_000),
    "paper": (100_000, 10_000),  # Table 2
}


def scaled_config(scale: str, base: SimConfig | None = None) -> SimConfig:
    """Table 2 configuration with the scale's simulation horizon."""
    cycles, warmup = HORIZONS[scale]
    base = base or SimConfig()
    return base.replace(sim_cycles=cycles, warmup_cycles=warmup)


@dataclass
class ExperimentResult:
    """The numeric series behind one paper table or figure."""

    name: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.headers)}"
            )
        self.rows.append(tuple(values))

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def filtered(self, **matches) -> list[tuple]:
        """Rows whose named columns equal the given values."""
        idx = {h: self.headers.index(h) for h in matches}
        return [
            row
            for row in self.rows
            if all(row[idx[h]] == v for h, v in matches.items())
        ]

    def value(self, value_header: str, **matches):
        """The single value of one column in the uniquely matching row."""
        rows = self.filtered(**matches)
        if len(rows) != 1:
            raise ValueError(f"expected exactly one row for {matches}, got {len(rows)}")
        return rows[0][self.headers.index(value_header)]

    def __str__(self) -> str:
        return self.format()

    def format(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.name}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(",".join(_fmt(v) for v in row))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "sat"  # a saturated/unmeasurable point
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def phy_network_specs(grid, config) -> list[tuple[str, object]]:
    """The four networks compared in the hetero-PHY figures (Sec 8.1.1).

    Baselines use the full-bandwidth standard interfaces; the halved
    hetero-IF combines two halved standard interfaces to keep the total
    I/O pin count of a single standard interface (Sec 7.2).
    """
    from repro.topology.system import build_system

    return [
        ("parallel-mesh", build_system("parallel_mesh", grid, config)),
        ("serial-torus", build_system("serial_torus", grid, config)),
        ("hetero-phy-full", build_system("hetero_phy_torus", grid, config)),
        ("hetero-phy-half", build_system("hetero_phy_torus", grid, config.halved())),
    ]


def channel_network_specs(grid, config) -> list[tuple[str, object]]:
    """The four networks compared in the hetero-channel figures (Sec 8.1.2)."""
    from repro.topology.system import build_system

    return [
        ("parallel-mesh", build_system("parallel_mesh", grid, config)),
        ("serial-hypercube", build_system("serial_hypercube", grid, config)),
        ("hetero-channel-full", build_system("hetero_channel", grid, config)),
        ("hetero-channel-half", build_system("hetero_channel", grid, config.halved())),
    ]


def reduction(baseline: float, value: float) -> float:
    """Relative reduction of ``value`` vs ``baseline`` (positive = better)."""
    if baseline == 0 or math.isnan(baseline) or math.isnan(value):
        return math.nan
    return (baseline - value) / baseline
