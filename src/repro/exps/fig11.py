"""Fig 11: hetero-PHY network performance on synthetic traffic patterns.

Four networks — uniform-parallel 2D-mesh, uniform-serial 2D-torus,
hetero-PHY 2D-torus at full and at halved (pin-constrained) bandwidth —
under the six patterns of Sec 7.2, sweeping the injection rate.  The
paper's medium-scale system is 4x4 chiplets of 4x4 nodes (256 nodes).

Expected shape: the serial torus pays its 20-cycle interface delay at low
load; the parallel mesh saturates earliest (long diameter, low bisection);
the full-bandwidth hetero-PHY torus has both the best low-load latency and
the best saturation rate, while the halved variant loses throughput on
wrap-heavy patterns because its wraparound links are halved serial-only.
"""

from __future__ import annotations

from repro.sim.experiment import latency_rate_sweep
from repro.topology.grid import ChipletGrid
from repro.traffic.patterns import FIGURE_PATTERNS
from .common import ExperimentResult, phy_network_specs, scaled_config

GRIDS = {
    "tiny": ChipletGrid(2, 2, 4, 4),
    "small": ChipletGrid(4, 4, 4, 4),
    "paper": ChipletGrid(4, 4, 4, 4),
}

RATES = {
    "tiny": (0.05, 0.15, 0.30),
    "small": (0.05, 0.10, 0.20, 0.30),
    "paper": (0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40),
}


def run(scale: str = "small", patterns=FIGURE_PATTERNS) -> ExperimentResult:
    grid = GRIDS[scale]
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig11",
        title=f"hetero-PHY latency vs injection rate, {grid.n_nodes} nodes",
        headers=("pattern", "network", "rate", "avg_latency", "delivered"),
    )
    for pattern in patterns:
        for label, spec in phy_network_specs(grid, config):
            points = latency_rate_sweep(spec, pattern, RATES[scale])
            for point in points:
                result.add(
                    pattern, label, point.rate, point.avg_latency, point.delivered_fraction
                )
    return result
