"""Fig 12: hetero-PHY network performance on PARSEC traces.

The Netrace traces come from 64-core multiprocessors, so the paper
evaluates the same scale: 4x4 chiplets of 2x2 nodes (64 nodes).  We replay
synthetic Netrace-like traces (see :mod:`repro.traffic.parsec`) on the
same four networks as Fig 11 and report mean latency and its standard
deviation (the paper notes hetero-IF lowers the latency *variance* too).

Expected shape: at 64 nodes the serial interface delay dominates, so the
uniform-parallel mesh beats the uniform-serial torus; the hetero-PHY torus
beats both, and full vs halved bandwidth barely differ because wraparound
packets are a small fraction of PARSEC traffic.
"""

from __future__ import annotations

from repro.sim.experiment import run_trace
from repro.topology.grid import ChipletGrid
from repro.traffic.parsec import PARSEC_PROFILES, generate_parsec_trace
from .common import ExperimentResult, phy_network_specs, scaled_config

#: 64-node system matching the 64-core traces (all scales).
GRID = ChipletGrid(4, 4, 2, 2)

APPS = {
    "tiny": ("blackscholes", "canneal", "x264"),
    "small": tuple(sorted(PARSEC_PROFILES)),
    "paper": tuple(sorted(PARSEC_PROFILES)),
}

DURATIONS = {"tiny": 2_000, "small": 6_000, "paper": 60_000}


def run(scale: str = "small") -> ExperimentResult:
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig12",
        title="hetero-PHY avg latency on PARSEC traces, 64 nodes",
        headers=("app", "network", "avg_latency", "latency_stddev"),
    )
    for app in APPS[scale]:
        trace = generate_parsec_trace(app, GRID, DURATIONS[scale])
        for label, spec in phy_network_specs(GRID, config):
            run_result = run_trace(spec, trace, strict=False)
            result.add(
                app,
                label,
                run_result.stats.avg_latency,
                run_result.stats.latency_stddev,
            )
    return result
