"""Fig 13: hetero-PHY network performance on HPC traces (CNS, MOC).

The paper's large-scale system is 6x6 chiplets of 6x6 nodes (1296 nodes)
replaying 1024-rank DUMPI traces.  The injection-rate axis is produced by
time-scaling the trace (compressing the timeline raises the offered load
without changing communication structure).

Expected shape (Sec 8.1.1): for CNS the hetero-PHY torus has better
throughput than the parallel mesh and better latency than the serial
torus; for MOC the hetero-PHY torus keeps the latency advantage but the
saturation scale of the full-bandwidth networks coincides, and the
half-bandwidth system saturates at roughly half the scale (interface
fully used).
"""

from __future__ import annotations

from repro.sim.experiment import run_trace
from repro.topology.grid import ChipletGrid
from repro.traffic.hpc import embed_ranks, generate_cns_trace, generate_moc_trace
from .common import ExperimentResult, phy_network_specs, scaled_config

SETUPS = {
    # grid, ranks, cns iterations, moc iterations, time scales
    "tiny": (ChipletGrid(2, 2, 4, 4), 64, 3, 2, (1.0, 2.0)),
    "small": (ChipletGrid(4, 4, 4, 4), 256, 5, 3, (0.5, 1.0, 2.0)),
    "paper": (ChipletGrid(6, 6, 6, 6), 1024, 20, 12, (0.25, 0.5, 1.0, 2.0, 4.0)),
}


def traces(scale: str):
    grid, ranks, cns_iters, moc_iters, time_scales = SETUPS[scale]
    cns = embed_ranks(generate_cns_trace(ranks, cns_iters), grid)
    moc = embed_ranks(generate_moc_trace(ranks, moc_iters), grid)
    return grid, (cns, moc), time_scales


def run(scale: str = "small") -> ExperimentResult:
    grid, base_traces, time_scales = traces(scale)
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig13",
        title=f"hetero-PHY latency on HPC traces, {grid.n_nodes} nodes",
        headers=(
            "trace",
            "network",
            "time_scale",
            "offered_load",
            "avg_latency",
            "delivered",
        ),
    )
    for base in base_traces:
        for time_scale in time_scales:
            trace = base.scaled(time_scale)
            load = trace.offered_load(grid.n_nodes)
            for label, spec in phy_network_specs(grid, config):
                run_result = run_trace(spec, trace, strict=False)
                result.add(
                    base.name,
                    label,
                    time_scale,
                    load,
                    run_result.stats.avg_latency,
                    run_result.stats.delivered_fraction,
                )
    return result
