"""Fig 14: hetero-channel network performance on synthetic patterns.

Four networks — uniform-parallel 2D-mesh, uniform-serial hypercube
(minus-first routing, [30]), hetero-channel (Algorithm 1 + Eq 5 balanced
selection) at full and at halved bandwidth — on the paper's wafer-scale
system: 8x8 chiplets of 7x7 nodes (3136 nodes).

Expected shape (Sec 8.1.2): the hypercube beats the mesh on every
pattern; the hetero-channel network beats even the serial-only hypercube
because packets approaching the destination can finish over the
low-latency parallel mesh, and halving the interfaces barely hurts since
high-radix topologies need less per-link bandwidth.
"""

from __future__ import annotations

from repro.sim.experiment import latency_rate_sweep
from repro.topology.grid import ChipletGrid
from repro.traffic.patterns import FIGURE_PATTERNS
from .common import ExperimentResult, channel_network_specs, scaled_config

GRIDS = {
    "tiny": ChipletGrid(2, 2, 3, 3),
    "small": ChipletGrid(4, 4, 4, 4),
    "paper": ChipletGrid(8, 8, 7, 7),
}

RATES = {
    "tiny": (0.05, 0.15, 0.30),
    "small": (0.05, 0.10, 0.20, 0.30),
    "paper": (0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
}


def run(scale: str = "small", patterns=FIGURE_PATTERNS) -> ExperimentResult:
    grid = GRIDS[scale]
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig14",
        title=f"hetero-channel latency vs injection rate, {grid.n_nodes} nodes",
        headers=("pattern", "network", "rate", "avg_latency", "delivered"),
    )
    for pattern in patterns:
        for label, spec in channel_network_specs(grid, config):
            points = latency_rate_sweep(spec, pattern, RATES[scale])
            for point in points:
                result.add(
                    pattern, label, point.rate, point.avg_latency, point.delivered_fraction
                )
    return result
