"""Fig 15: hetero-channel network performance on HPC traces.

Same networks as Fig 14; the HPC ranks are embedded onto the *core*
(non-interface) nodes of each chiplet (Sec 8.1.2), so every message must
cross part of the on-chip mesh before reaching an interface.

Expected shape: for CNS the hetero-channel network has better throughput
and latency; for MOC it matches the parallel mesh's throughput while
keeping a latency advantage, and halving the interfaces does not hurt.
"""

from __future__ import annotations

from repro.sim.experiment import run_trace
from repro.topology.grid import ChipletGrid
from repro.traffic.hpc import embed_ranks, generate_cns_trace, generate_moc_trace
from .common import ExperimentResult, channel_network_specs, scaled_config

SETUPS = {
    # grid, ranks, cns iters, moc iters, time scales
    "tiny": (ChipletGrid(2, 2, 4, 4), 16, 3, 2, (1.0, 2.0)),
    "small": (ChipletGrid(4, 4, 4, 4), 64, 5, 3, (0.5, 1.0, 2.0)),
    "paper": (ChipletGrid(8, 8, 7, 7), 1024, 20, 12, (0.25, 0.5, 1.0, 2.0, 4.0)),
}


def run(scale: str = "small") -> ExperimentResult:
    grid, ranks, cns_iters, moc_iters, time_scales = SETUPS[scale]
    config = scaled_config(scale)
    base_traces = (
        embed_ranks(generate_cns_trace(ranks, cns_iters), grid, core_only=True),
        embed_ranks(generate_moc_trace(ranks, moc_iters), grid, core_only=True),
    )
    result = ExperimentResult(
        name="fig15",
        title=f"hetero-channel latency on HPC traces, {grid.n_nodes} nodes (core-node ranks)",
        headers=(
            "trace",
            "network",
            "time_scale",
            "offered_load",
            "avg_latency",
            "delivered",
        ),
    )
    for base in base_traces:
        for time_scale in time_scales:
            trace = base.scaled(time_scale)
            load = trace.offered_load(grid.n_nodes)
            for label, spec in channel_network_specs(grid, config):
                run_result = run_trace(spec, trace, strict=False)
                result.add(
                    base.name,
                    label,
                    time_scale,
                    load,
                    run_result.stats.avg_latency,
                    run_result.stats.delivered_fraction,
                )
    return result
