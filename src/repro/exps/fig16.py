"""Fig 16: average packet energy under uniform traffic.

Injection rate 0.1 flits/cycle/node; the energy of every delivered packet
is accumulated per link traversal (on-chip hop energy vs interface
energy, Sec 8.3) and averaged.

(a) hetero-PHY group on the large 2D system: the parallel mesh pays many
on-chip hops (long diameter), the serial torus pays the expensive serial
interface, and the hetero-PHY torus achieves both fewer hops and a lower
hop cost; restricting scheduling to energy-efficient (parallel-PHY-only
dispatch) buys a further reduction.

(b) hetero-channel group on the wafer-scale system: energy-efficient
selection (Eq 3 with a heavy energy weight) lands below both uniform
baselines (paper: -31% vs parallel, -13% vs serial).
"""

from __future__ import annotations

from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from .common import ExperimentResult, channel_network_specs, phy_network_specs, scaled_config

RATE = 0.1

GRIDS = {
    "tiny": (ChipletGrid(2, 2, 4, 4), ChipletGrid(2, 2, 3, 3)),
    "small": (ChipletGrid(4, 4, 4, 4), ChipletGrid(4, 4, 4, 4)),
    "paper": (ChipletGrid(6, 6, 6, 6), ChipletGrid(8, 8, 7, 7)),
}


def run(scale: str = "small") -> ExperimentResult:
    phy_grid, channel_grid = GRIDS[scale]
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig16",
        title="avg energy per packet on uniform traffic @ 0.1 (pJ)",
        headers=("group", "network", "policy", "onchip_pj", "interface_pj", "total_pj"),
    )

    def record(group: str, label: str, spec, policy=None) -> None:
        run_result = run_synthetic(spec, "uniform", RATE, policy=policy)
        stats = run_result.stats
        result.add(
            group,
            label,
            policy or spec.config.scheduling_policy,
            stats.avg_energy_onchip_pj,
            stats.avg_energy_interface_pj,
            stats.avg_energy_pj,
        )

    phy_specs = dict(phy_network_specs(phy_grid, config))
    record("hetero-phy", "parallel-mesh", phy_specs["parallel-mesh"])
    record("hetero-phy", "serial-torus", phy_specs["serial-torus"])
    record("hetero-phy", "hetero-phy", phy_specs["hetero-phy-full"])
    record("hetero-phy", "hetero-phy", phy_specs["hetero-phy-full"], policy="energy_efficient")

    channel_specs = dict(channel_network_specs(channel_grid, config))
    record("hetero-channel", "parallel-mesh", channel_specs["parallel-mesh"])
    record("hetero-channel", "serial-hypercube", channel_specs["serial-hypercube"])
    record("hetero-channel", "hetero-channel", channel_specs["hetero-channel-full"])
    record(
        "hetero-channel",
        "hetero-channel",
        channel_specs["hetero-channel-full"],
        policy="energy_efficient",
    )
    return result
