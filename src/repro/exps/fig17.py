"""Fig 17: average packet energy under HPC traffic (MOC traces).

Same topologies and scales as the performance evaluations (Sec 8.1); the
MOC trace is replayed and per-packet link energy averaged.

Paper results: the hetero-PHY network consumes ~9% less than the
uniform-parallel mesh; the hetero-channel network with energy-efficient
scheduling consumes ~27% / ~10% less than uniform-parallel /
uniform-serial.
"""

from __future__ import annotations

from repro.sim.experiment import run_trace
from repro.traffic.hpc import embed_ranks, generate_moc_trace
from .common import ExperimentResult, channel_network_specs, phy_network_specs, scaled_config
from .fig13 import SETUPS as PHY_SETUPS
from .fig15 import SETUPS as CHANNEL_SETUPS


def run(scale: str = "small") -> ExperimentResult:
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig17",
        title="avg energy per packet on MOC traces (pJ)",
        headers=("group", "network", "policy", "onchip_pj", "interface_pj", "total_pj"),
    )

    def record(group: str, label: str, spec, trace, policy=None) -> None:
        run_result = run_trace(spec, trace, policy=policy, strict=False)
        stats = run_result.stats
        result.add(
            group,
            label,
            policy or spec.config.scheduling_policy,
            stats.avg_energy_onchip_pj,
            stats.avg_energy_interface_pj,
            stats.avg_energy_pj,
        )

    phy_grid, phy_ranks, _cns, moc_iters, _scales = PHY_SETUPS[scale]
    phy_trace = embed_ranks(generate_moc_trace(phy_ranks, moc_iters), phy_grid)
    phy_specs = dict(phy_network_specs(phy_grid, config))
    record("hetero-phy", "parallel-mesh", phy_specs["parallel-mesh"], phy_trace)
    record("hetero-phy", "serial-torus", phy_specs["serial-torus"], phy_trace)
    record("hetero-phy", "hetero-phy", phy_specs["hetero-phy-full"], phy_trace)
    record(
        "hetero-phy",
        "hetero-phy",
        phy_specs["hetero-phy-full"],
        phy_trace,
        policy="energy_efficient",
    )

    ch_grid, ch_ranks, _cns, ch_moc_iters, _scales = CHANNEL_SETUPS[scale]
    ch_trace = embed_ranks(generate_moc_trace(ch_ranks, ch_moc_iters), ch_grid, core_only=True)
    ch_specs = dict(channel_network_specs(ch_grid, config))
    record("hetero-channel", "parallel-mesh", ch_specs["parallel-mesh"], ch_trace)
    record("hetero-channel", "serial-hypercube", ch_specs["serial-hypercube"], ch_trace)
    record("hetero-channel", "hetero-channel", ch_specs["hetero-channel-full"], ch_trace)
    record(
        "hetero-channel",
        "hetero-channel",
        ch_specs["hetero-channel-full"],
        ch_trace,
        policy="energy_efficient",
    )
    return result
