"""Fig 18: energy flexibility across local-communication scales.

Uniform traffic at 0.01 flits/cycle/node restricted to aligned
``span x span`` node neighbourhoods; the span sweeps from very local
(2x2) up to the full machine.  Modern HPC systems mix such local traffic
with global traffic, and a uniform serial interface wastes energy on
short-reach communication.

Expected shape: at small spans the uniform-serial system pays serial
energy for neighbour talk (poor), the parallel mesh is efficient, and the
hetero-IF systems match the parallel mesh by dispatching locally over the
parallel PHY; at full scale the relation flips (serial's fewer hops win)
and hetero-IF matches the serial systems — best or near-best at *every*
scale.
"""

from __future__ import annotations

from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from .common import ExperimentResult, phy_network_specs, scaled_config

RATE = 0.01

GRIDS = {
    "tiny": ChipletGrid(2, 2, 4, 4),
    "small": ChipletGrid(4, 4, 4, 4),
    "paper": ChipletGrid(6, 6, 6, 6),
}


def spans_for(grid: ChipletGrid) -> list[int]:
    spans = []
    span = 2
    while span < grid.width:
        spans.append(span)
        span *= 2
    spans.append(grid.width)  # full-scale traffic
    return spans


def run(scale: str = "small") -> ExperimentResult:
    grid = GRIDS[scale]
    config = scaled_config(scale)
    result = ExperimentResult(
        name="fig18",
        title=f"avg energy per packet vs local-communication span, {grid.n_nodes} nodes",
        headers=("span", "network", "total_pj", "avg_latency"),
    )
    for span in spans_for(grid):
        for label, spec in phy_network_specs(grid, config)[:3]:
            run_result = run_synthetic(
                spec,
                "local",
                RATE,
                pattern_kwargs={"grid": grid, "span": span},
            )
            result.add(span, label, run_result.avg_energy_pj, run_result.avg_latency)
    return result
