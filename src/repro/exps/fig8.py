"""Fig 8: V-t curve comparison of interface architectures.

(a) Standard parallel, serial and compromised interfaces against the
hetero-PHY fold (sum of parallel + serial curves): the hetero curve
matches the parallel interface's low t-intercept and overtakes every
uniform interface in delivered volume.

(b) Pin-constrained comparison: with the total I/O pin count fixed, the
hetero-PHY interface adjusts its lane/channel ratio; the half/half split
is the paper's halved configuration.

Bandwidths/delays follow Table 2 (parallel 2 flits/cy @ 5 cy, serial
4 flits/cy @ 20 cy); the compromised interface is modelled BoW-like
between the two (3 flits/cy @ 10 cy).
"""

from __future__ import annotations

import numpy as np

from repro.core.vt_model import VTCurve, hetero_curve, pin_constrained_hetero
from .common import ExperimentResult

#: Table-2-aligned curve parameters.
PARALLEL = VTCurve(bandwidth=2, delay=5, name="parallel")
SERIAL = VTCurve(bandwidth=4, delay=20, name="serial")
COMPROMISED = VTCurve(bandwidth=3, delay=10, name="compromised")


def run(scale: str = "small") -> ExperimentResult:
    """Sample all Fig 8 curves on a common time grid."""
    del scale  # analytic - scale-independent
    hetero = hetero_curve(PARALLEL, SERIAL)
    half = pin_constrained_hetero(PARALLEL, SERIAL, parallel_pin_share=0.5)
    result = ExperimentResult(
        name="fig8",
        title="V-t curves: data volume delivered vs time (Eq 2)",
        headers=("t_cycles", "parallel", "serial", "compromised", "hetero", "hetero_half_pins"),
    )
    for t in np.linspace(0, 60, 25):
        result.add(
            float(t),
            float(PARALLEL.volume(t)),
            float(SERIAL.volume(t)),
            float(COMPROMISED.volume(t)),
            float(hetero.volume(t)),
            float(half.volume(t)),
        )
    v = 64.0  # one 16-flit packet at 4 bytes... illustrative volume
    result.notes.append(
        "time to deliver 64 flits: "
        f"parallel {PARALLEL.time_to_deliver(v):.1f}, "
        f"serial {SERIAL.time_to_deliver(v):.1f}, "
        f"compromised {COMPROMISED.time_to_deliver(v):.1f}, "
        f"hetero {hetero.time_to_deliver(v):.1f} cycles"
    )
    return result
