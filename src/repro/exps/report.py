"""Paper-vs-measured reporting.

Reads the CSV series written by the benchmark harness
(``benchmarks/results/<artifact>_<scale>.csv``) and produces the
comparison summary recorded in ``EXPERIMENTS.md``: for each table/figure,
the paper's qualitative/quantitative claim next to what this
reproduction measures.

Usable programmatically (:func:`summarize`) or via ``repro report``.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Optional

from .common import ExperimentResult, reduction

#: Paper-reported Table 3 latency reductions (fractions).
PAPER_TABLE3 = {
    "4x(2x2)": (0.173, 0.217, None, None),
    "16x(2x2)": (0.175, 0.300, None, None),
    "16x(4x4)": (0.164, 0.218, 0.096, 0.222),
    "16x(6x6)": (0.193, 0.179, 0.155, 0.198),
    "64x(7x7)": (0.358, 0.205, 0.464, 0.131),
}

#: Paper-reported energy reductions (Sec 8.3).
PAPER_ENERGY = {
    # (figure, group): (vs_parallel, vs_serial)
    ("fig16", "hetero-channel"): (0.31, 0.13),
    ("fig17", "hetero-phy"): (0.09, None),
    ("fig17", "hetero-channel"): (0.27, 0.10),
}


def load_result(path: Path) -> ExperimentResult:
    """Load one benchmark CSV back into an ExperimentResult."""
    lines = path.read_text().strip().splitlines()
    headers = tuple(lines[0].split(","))
    result = ExperimentResult(path.stem, f"loaded from {path.name}", headers)
    for line in lines[1:]:
        values = []
        for cell in line.split(","):
            if cell == "sat":
                values.append(math.nan)
                continue
            try:
                values.append(int(cell))
            except ValueError:
                try:
                    values.append(float(cell))
                except ValueError:
                    values.append(cell)
        result.rows.append(tuple(values))
    return result


def _find(results_dir: Path, artifact: str, scale: str) -> Optional[ExperimentResult]:
    path = results_dir / f"{artifact}_{scale}.csv"
    if not path.exists():
        return None
    return load_result(path)


def _fmt_pct(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:+.1%}"


def summarize_fig11(result: ExperimentResult) -> list[str]:
    lines = ["per-pattern latency ordering at the lowest swept rate:"]
    rates = sorted(set(result.column("rate")))
    for pattern in sorted(set(result.column("pattern"))):
        rows = {r[1]: r[3] for r in result.filtered(pattern=pattern, rate=rates[0])}
        ranked = sorted(rows, key=rows.get)
        lines.append(f"  {pattern:12s}: " + " < ".join(ranked))
    return lines


def summarize_reductions(
    result: ExperimentResult,
    value_col: str,
    network_col: str,
    hetero: str,
    parallel: str,
    serial: str,
    group_col: Optional[str] = None,
    group: Optional[str] = None,
) -> tuple[float, float]:
    """Mean reduction of the hetero network vs the two baselines."""
    rows = result.rows if group is None else result.filtered(**{group_col: group})
    v_idx = result.headers.index(value_col)
    n_idx = result.headers.index(network_col)
    per_net: dict[str, list[float]] = {}
    for row in rows:
        value = row[v_idx]
        if isinstance(value, float) and math.isnan(value):
            continue
        per_net.setdefault(row[n_idx], []).append(value)
    def mean(net):
        values = per_net.get(net, [])
        return sum(values) / len(values) if values else math.nan
    h = mean(hetero)
    return reduction(mean(parallel), h), reduction(mean(serial), h)


def summarize(results_dir: Path, scale: str) -> str:
    """Render the paper-vs-measured markdown summary for one scale."""
    out: list[str] = [f"## Measured at scale `{scale}`", ""]

    fig11 = _find(results_dir, "fig11", scale)
    if fig11:
        out.append("### Fig 11 (hetero-PHY, synthetic patterns)")
        out.extend(summarize_fig11(fig11))
        vs_p, vs_s = summarize_reductions(
            fig11, "avg_latency", "network", "hetero-phy-full", "parallel-mesh", "serial-torus"
        )
        out.append(
            f"mean latency of hetero-PHY-full vs parallel-mesh {_fmt_pct(vs_p)}, "
            f"vs serial-torus {_fmt_pct(vs_s)} (positive = hetero lower)"
        )
        out.append("")

    fig12 = _find(results_dir, "fig12", scale)
    if fig12:
        vs_p, vs_s = summarize_reductions(
            fig12, "avg_latency", "network", "hetero-phy-full", "parallel-mesh", "serial-torus"
        )
        out.append("### Fig 12 (hetero-PHY, PARSEC traces)")
        out.append(
            f"mean latency reduction across apps: vs parallel {_fmt_pct(vs_p)}, "
            f"vs serial {_fmt_pct(vs_s)} (paper: hetero best on all apps, "
            "serial-torus worst at 64 nodes)"
        )
        out.append("")

    table3 = _find(results_dir, "table3", scale)
    if table3:
        out.append("### Table 3 (scalability: latency reduction of hetero-IF)")
        out.append("| scale | hPHY vs par (paper) | hPHY vs ser (paper) | hCh vs par (paper) | hCh vs ser (paper) |")
        out.append("|---|---|---|---|---|")
        for row in table3.rows:
            label = row[0]
            paper = PAPER_TABLE3.get(label, (None, None, None, None))
            cells = [
                f"{_fmt_pct(row[i + 1])} ({_fmt_pct(paper[i])})" for i in range(4)
            ]
            out.append(f"| {label} | " + " | ".join(cells) + " |")
        out.append("")

    for artifact, group, hetero, parallel, serial in (
        ("fig16", "hetero-phy", "hetero-phy", "parallel-mesh", "serial-torus"),
        ("fig16", "hetero-channel", "hetero-channel", "parallel-mesh", "serial-hypercube"),
        ("fig17", "hetero-phy", "hetero-phy", "parallel-mesh", "serial-torus"),
        ("fig17", "hetero-channel", "hetero-channel", "parallel-mesh", "serial-hypercube"),
    ):
        result = _find(results_dir, artifact, scale)
        if not result:
            continue
        vs_p, vs_s = summarize_reductions(
            result,
            "total_pj",
            "network",
            hetero,
            parallel,
            serial,
            group_col="group",
            group=group,
        )
        paper = PAPER_ENERGY.get((artifact, group))
        paper_txt = (
            f" (paper: {_fmt_pct(paper[0])} / {_fmt_pct(paper[1])})" if paper else ""
        )
        out.append(
            f"### {artifact} / {group}: energy vs parallel {_fmt_pct(vs_p)}, "
            f"vs serial {_fmt_pct(vs_s)}{paper_txt}"
        )
    out.append("")
    return "\n".join(out)
