"""Table 1: specification of typical die-to-die interfaces.

Static reference data (Sec 2.2) exposed as an experiment for completeness;
it also derives the simulator link parameters each technology maps to at
a 1 GHz on-chip clock, connecting Table 1 to Table 2.
"""

from __future__ import annotations

from repro.core.interfaces import TABLE1
from .common import ExperimentResult


def run(scale: str = "small") -> ExperimentResult:
    del scale  # static data
    result = ExperimentResult(
        name="table1",
        title="die-to-die interface specifications",
        headers=(
            "interface",
            "category",
            "gbps_per_lane",
            "latency_ns",
            "pj_per_bit",
            "reach_mm",
            "flits_per_cycle_x16@1GHz",
        ),
    )
    for spec in TABLE1:
        phy = spec.to_phy(clock_ghz=1.0, lanes=16)
        result.add(
            spec.name,
            spec.category,
            spec.data_rate_gbps,
            spec.total_latency_ns,
            spec.power_pj_per_bit,
            spec.reach_mm,
            phy.bandwidth,
        )
    return result
