"""Table 3: scalability — average latency reduction of hetero-IF.

Uniform traffic at 0.1 flits/cycle/node on five systems of different
on-chip and off-chip scales; the table reports how much lower the
hetero-IF networks' average latency is compared with the
uniform-parallel-IF and uniform-serial-IF baselines.

Paper values (hetero-PHY vs parallel / serial; hetero-channel likewise):

=============  ===============  ===============
Scale          Hetero-PHY       Hetero-Channel
=============  ===============  ===============
4 x (2x2)      17.3% / 21.7%    -
16 x (2x2)     17.5% / 30.0%    -
16 x (4x4)     16.4% / 21.8%    9.6% / 22.2%
16 x (6x6)     19.3% / 17.9%    15.5% / 19.8%
64 x (7x7)     35.8% / 20.5%    46.4% / 13.1%
=============  ===============  ===============
"""

from __future__ import annotations

import math

from repro.sim.experiment import run_synthetic
from repro.topology.grid import ChipletGrid
from .common import (
    ExperimentResult,
    channel_network_specs,
    phy_network_specs,
    reduction,
    scaled_config,
)

#: The five paper scales: label -> (grid, evaluate hetero-channel too).
#: Hetero-channel needs the larger systems (the paper leaves the two
#: smallest rows blank for it).
PAPER_SCALES = [
    ("4x(2x2)", ChipletGrid(2, 2, 2, 2), False),
    ("16x(2x2)", ChipletGrid(4, 4, 2, 2), False),
    ("16x(4x4)", ChipletGrid(4, 4, 4, 4), True),
    ("16x(6x6)", ChipletGrid(4, 4, 6, 6), True),
    ("64x(7x7)", ChipletGrid(8, 8, 7, 7), True),
]

SCALE_COUNTS = {"tiny": 2, "small": 4, "paper": 5}

RATE = 0.1  # flits/cycle/node (Sec 8.1.3)


def run(scale: str = "small") -> ExperimentResult:
    config = scaled_config(scale)
    result = ExperimentResult(
        name="table3",
        title="avg latency reduction of hetero-IF vs uniform-parallel / uniform-serial",
        headers=(
            "scale",
            "hphy_vs_parallel",
            "hphy_vs_serial",
            "hch_vs_parallel",
            "hch_vs_serial",
        ),
    )
    for label, grid, with_channel in PAPER_SCALES[: SCALE_COUNTS[scale]]:
        latencies = {
            name: run_synthetic(spec, "uniform", RATE).avg_latency
            for name, spec in phy_network_specs(grid, config)[:3]
        }
        hphy_vs_p = reduction(latencies["parallel-mesh"], latencies["hetero-phy-full"])
        hphy_vs_s = reduction(latencies["serial-torus"], latencies["hetero-phy-full"])
        hch_vs_p = hch_vs_s = math.nan
        if with_channel:
            ch = {
                name: run_synthetic(spec, "uniform", RATE).avg_latency
                for name, spec in channel_network_specs(grid, config)[:3]
            }
            hch_vs_p = reduction(ch["parallel-mesh"], ch["hetero-channel-full"])
            hch_vs_s = reduction(ch["serial-hypercube"], ch["hetero-channel-full"])
        result.add(label, hphy_vs_p, hphy_vs_s, hch_vs_p, hch_vs_s)
    result.notes.append("values are fractions: 0.17 = 17.3% lower latency")
    return result
