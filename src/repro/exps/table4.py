"""Table 4: post-synthesis analysis of the adapter and router circuits.

The paper synthesizes the RX/TX adapters and the regular/heterogeneous
routers at TSMC-12nm.  We reproduce the table with the structural
estimator of :mod:`repro.circuits.synthesis` and report the estimated
figures next to the paper's, plus the headline overhead ratios (the
heterogeneous router costs ~45% more area and ~33% more power).
"""

from __future__ import annotations

from repro.circuits.synthesis import TABLE4_PAPER, table4
from .common import ExperimentResult


def run(scale: str = "small") -> ExperimentResult:
    del scale  # analytic - scale-independent
    results = table4()
    result = ExperimentResult(
        name="table4",
        title="post-synthesis estimates vs paper (TSMC-12nm)",
        headers=(
            "module",
            "area_um2",
            "paper_area",
            "power_mw",
            "paper_power",
            "fmax_ghz",
            "paper_fmax",
        ),
    )
    for name, estimate in results.items():
        paper = TABLE4_PAPER[name]
        result.add(
            name,
            estimate.area_um2,
            paper["area_um2"],
            estimate.power_mw,
            paper["power_mw"],
            estimate.fmax_ghz,
            1.0 / paper["critical_path_ns"],
        )
    hetero = results["hetero_router"]
    regular = results["router"]
    result.notes.append(
        f"hetero router overhead: area +{hetero.area_um2 / regular.area_um2 - 1:.0%} "
        f"(paper +45%), power +{hetero.power_mw / regular.power_mw - 1:.0%} (paper +33%)"
    )
    return result
