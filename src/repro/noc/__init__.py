"""Cycle-accurate network-on-chip substrate.

Flits and packets, virtual-channel routers (RC/VA/SA/ST pipeline with
credit-based flow control and whole-packet virtual cut-through
allocation), pipelined links that model die-to-die interfaces as virtual
pipelines in the on-chip clock domain, and the network container with its
activity-tracking cycle loop.
"""

from .channel import ChannelKind, ChannelSpec, PhyParams
from .flit import FLIT_BITS, Flit, Packet
from .link import Link, PipelinedLink
from .network import Network
from .router import Candidate, Router
from .tracing import RouteTracer

__all__ = [
    "Candidate",
    "ChannelKind",
    "ChannelSpec",
    "FLIT_BITS",
    "Flit",
    "Link",
    "Network",
    "Packet",
    "PhyParams",
    "PipelinedLink",
    "RouteTracer",
    "Router",
]
