"""Arbitration helpers.

Rotating (round-robin) arbitration is what the canonical VC router of the
paper's simulator uses for VC and switch allocation (Sec 7.1, [21]).
:class:`RoundRobin` is the reference implementation; the router inlines
the equivalent pointer logic on its hot path, and the equivalence is
pinned by the arbitration tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class RoundRobin:
    """A rotating-priority pointer over ``size`` contenders.

    ``order()`` yields indices starting at the current pointer;
    ``grant(i)`` advances the pointer past the winner so it has lowest
    priority next time.
    """

    __slots__ = ("size", "_next")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("round-robin arbiter needs at least one contender")
        self.size = size
        self._next = 0

    def order(self) -> Iterable[int]:
        start = self._next
        size = self.size
        for offset in range(size):
            yield (start + offset) % size

    def grant(self, winner: int) -> None:
        if not 0 <= winner < self.size:
            raise ValueError(f"winner {winner} out of range 0..{self.size - 1}")
        self._next = (winner + 1) % self.size


def rotate(items: Sequence[T], start: int) -> list[T]:
    """Return ``items`` rotated so that index ``start`` comes first."""
    if not items:
        return []
    start %= len(items)
    return list(items[start:]) + list(items[:start])
