"""Physical channel descriptions.

A :class:`ChannelSpec` describes one *directed* physical channel between two
routers: its physical kind (on-chip wire, parallel interface, serial
interface, or a bonded hetero-PHY pair), bandwidth, delay, per-bit energy,
and the buffering on the receiving side.  Topology builders create specs;
the network instantiates one link object per spec.

Parameter defaults follow Table 2 of the paper and the energy figures of
Sec 8.3 (parallel 1 pJ/bit, serial 2.4 pJ/bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional


class ChannelKind(enum.Enum):
    """Physical implementation of a channel."""

    ONCHIP = "onchip"
    PARALLEL = "parallel"
    SERIAL = "serial"
    #: A hetero-PHY bonded channel: one logical channel carried by a parallel
    #: PHY and a serial PHY together (Sec 3.1 / Fig 5b).
    HETERO_PHY = "hetero_phy"


#: Channel kinds that cross a die boundary.
INTERFACE_KINDS = frozenset(
    {ChannelKind.PARALLEL, ChannelKind.SERIAL, ChannelKind.HETERO_PHY}
)

#: Stable small-integer ids for fast per-kind accounting.
KIND_IDS = {
    ChannelKind.ONCHIP: 0,
    ChannelKind.PARALLEL: 1,
    ChannelKind.SERIAL: 2,
    ChannelKind.HETERO_PHY: 3,
}
KINDS_BY_ID = tuple(kind for kind, _ in sorted(KIND_IDS.items(), key=lambda kv: kv[1]))


@dataclass
class PhyParams:
    """Parameters of one physical PHY lane bundle."""

    bandwidth: int  # flits per cycle
    delay: int  # cycles of propagation through the interface pipeline
    energy_pj_per_bit: float

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


@dataclass
class ChannelSpec:
    """One directed channel of the interconnection network.

    Attributes
    ----------
    src, dst:
        Global node ids of the transmitting and receiving routers.
    kind:
        Physical kind; determines energy accounting and which routing
        sub-network the channel belongs to.
    phy:
        Bandwidth/delay/energy of the channel.  For ``HETERO_PHY`` channels
        this field describes the *parallel* component and ``serial_phy`` the
        serial component.
    serial_phy:
        Serial component of a hetero-PHY channel; None otherwise.
    n_vcs:
        Number of virtual channels (buffers) on the receiving input port.
    buffer_depth:
        Flit capacity of each receiving virtual-channel buffer.
    tag:
        Topology label consumed by routing functions, e.g. ``("mesh", "E")``
        or ``("cube", 3)``.  Tags let routing reason about directions without
        knowing port numbers.
    """

    src: int
    dst: int
    kind: ChannelKind
    phy: PhyParams
    serial_phy: Optional[PhyParams] = None
    n_vcs: int = 2
    buffer_depth: int = 32
    tag: Hashable = field(default=None)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("channel endpoints must differ")
        if (self.kind is ChannelKind.HETERO_PHY) != (self.serial_phy is not None):
            raise ValueError("serial_phy must be given exactly for HETERO_PHY channels")
        if self.n_vcs < 1:
            raise ValueError("channels need at least one virtual channel")
        if self.buffer_depth < 1:
            raise ValueError("buffer depth must be >= 1")

    @property
    def is_interface(self) -> bool:
        """True if the channel crosses a die-to-die interface."""
        return self.kind in INTERFACE_KINDS

    @property
    def total_bandwidth(self) -> int:
        """Aggregate flits/cycle across all PHYs of the channel."""
        if self.serial_phy is not None:
            return self.phy.bandwidth + self.serial_phy.bandwidth
        return self.phy.bandwidth

    @property
    def min_delay(self) -> int:
        """Smallest propagation delay offered by any PHY of the channel."""
        if self.serial_phy is not None:
            return min(self.phy.delay, self.serial_phy.delay)
        return self.phy.delay

    @property
    def max_delay(self) -> int:
        """Largest propagation delay offered by any PHY of the channel."""
        if self.serial_phy is not None:
            return max(self.phy.delay, self.serial_phy.delay)
        return self.phy.delay
