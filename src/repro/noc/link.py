"""Link models.

Off-chip interfaces run at much higher signalling rates than the on-chip
clock, so the paper models them as behavioural digital circuits in the
on-chip clock domain: a *virtual pipeline* whose width equals the interface
bandwidth (flits/cycle) and whose depth equals the propagation delay in
on-chip cycles (Sec 7.1).  :class:`PipelinedLink` implements exactly that
model and also serves for on-chip wires (width = link bandwidth, depth = 1).

A link is *directed*.  Credit return travels the opposite way with the same
propagation delay; interface credits are sized so that the round-trip lag
does not throttle the link (the paper's "additional buffer", Sec 7.1).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.telemetry.bus import NULL_BUS, TelemetryBus

from .channel import KIND_IDS, ChannelKind, ChannelSpec
from .flit import FLIT_BITS, Flit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network
    from .router import Router

#: Latency-ledger stage charged for a tail flit's traversal of a link of
#: each kind.  Hetero-PHY links carry ``None``: their traversal is
#: attributed through the ``phy_dispatch`` / ``rob_insert`` /
#: ``rob_release`` events instead, split per PHY.  The names must stay in
#: sync with :data:`repro.telemetry.attribution.STAGES` (checked by
#: ``tests/test_attribution.py``).
TRAVERSAL_STAGES: dict[ChannelKind, Optional[str]] = {
    ChannelKind.ONCHIP: "link_onchip",
    ChannelKind.PARALLEL: "link_parallel",
    ChannelKind.SERIAL: "link_serial",
    ChannelKind.HETERO_PHY: None,
}


class Link:
    """Base class of all directed links.

    Subclasses implement :meth:`accept` (flit enters the link at the
    transmitter) and :meth:`step` (advance internal pipelines, deliver flits
    and credits).  The switch allocator consults :meth:`accept_budget`
    before granting flits to the link in the current cycle and never
    exceeds it.
    """

    def __init__(self, spec: ChannelSpec) -> None:
        self.spec = spec
        self.network: Optional["Network"] = None
        self.src_router: Optional["Router"] = None
        self.src_port: int = -1
        self.dst_router: Optional["Router"] = None
        self.dst_port: int = -1
        self._index = -1
        self._credit_queue: deque[tuple[int, int]] = deque()
        self._accept_cycle = -1
        self._accepted = 0
        #: Total flits this link has carried (utilization analysis).
        self.flits_carried = 0
        # Hot-path constants (bound at construction).
        self._kind_id = KIND_IDS[spec.kind]
        #: Ledger stage for tail-flit traversal (see TRAVERSAL_STAGES).
        self.traversal_stage = TRAVERSAL_STAGES[spec.kind]
        self._is_interface = spec.is_interface
        self._credit_delay = max(1, spec.min_delay)
        # Rebound to the network's bus at attach(); inert until then.
        self._telemetry: TelemetryBus = NULL_BUS

    # -- wiring -----------------------------------------------------------
    def attach(
        self,
        network: "Network",
        src_router: "Router",
        src_port: int,
        dst_router: "Router",
        dst_port: int,
    ) -> None:
        """Connect the link between two router ports."""
        self.network = network
        self.src_router = src_router
        self.src_port = src_port
        self.dst_router = dst_router
        self.dst_port = dst_port
        self._telemetry = network.telemetry

    @property
    def index(self) -> int:
        """Position of this link in its network's ``links`` list (-1 if unattached)."""
        return self._index

    # -- transmit side ----------------------------------------------------
    def accept_budget(self, now: int) -> int:
        """Flits the link can still accept in cycle ``now``."""
        raise NotImplementedError

    def accept(self, flit: Flit, vc: int, now: int) -> None:
        """Take one flit from the transmitting router's switch."""
        raise NotImplementedError

    def _note_accept(self, now: int) -> None:
        if now != self._accept_cycle:
            self._accept_cycle = now
            self._accepted = 0
        self._accepted += 1

    def _accepted_in(self, now: int) -> int:
        return self._accepted if now == self._accept_cycle else 0

    # -- receive side -----------------------------------------------------
    def step(self, now: int) -> bool:
        """Advance one cycle; return True while the link still holds state."""
        raise NotImplementedError

    def step_timed(self, now: int, pc, phases: dict, t: int) -> tuple[bool, int]:
        """:meth:`step` with host wall-time attribution (lap-timer protocol).

        ``t`` is the caller's last clock reading; the step charges
        ``pc() - t`` to its phase and returns ``(still_active,
        last_timestamp)``, so attribution is exact and clock overhead
        lands in the phase it follows.  Plain links bank the whole step
        under ``"link"``; :class:`repro.core.phy.HeteroPhyLink` overrides
        this to split receive (``"phy_rx"``) from serialize/dispatch
        (``"phy_tx"``).  Phase keys sync with
        :data:`repro.telemetry.hostprof.PHASES`.
        """
        alive = self.step(now)
        t2 = pc()
        phases["link"] += t2 - t
        return alive, t2

    def return_credit(self, vc: int, now: int) -> None:
        """Schedule a credit back to the transmitter for buffer slot ``vc``."""
        self._credit_queue.append((now + self._credit_delay, vc))
        if self._telemetry.credit_return is not None:
            self._telemetry.credit_return(self, vc, now)
        self.network.activate_link(self)

    @property
    def credit_delay(self) -> int:
        """Cycles for a credit to reach the transmitter."""
        return self._credit_delay

    def _deliver_credits(self, now: int) -> None:
        queue = self._credit_queue
        while queue and queue[0][0] <= now:
            _, vc = queue.popleft()
            self.src_router.credit_arrive(self.src_port, vc)

    # -- introspection (used by the invariant sanitizer) -------------------
    def pending_credits(self, vc: int) -> int:
        """Credits for ``vc`` scheduled but not yet delivered upstream."""
        return sum(1 for _, credit_vc in self._credit_queue if credit_vc == vc)

    def vc_flits(self, vc: int) -> int:
        """Flits of ``vc`` currently inside the link (pipelines, adapters)."""
        raise NotImplementedError

    def snapshot_state(self) -> dict:
        """Forensic snapshot: endpoints, occupancy and the credit ledger.

        Subclasses extend the dictionary with their internal queues; the
        postmortem bundle (:mod:`repro.telemetry.forensics`) serializes the
        result, so every value must be JSON-representable.
        """
        return {
            "index": self._index,
            "kind": self.spec.kind.value,
            "src": self.spec.src,
            "dst": self.spec.dst,
            "occupancy": getattr(self, "occupancy", 0),
            "pending_credits": [
                self.pending_credits(vc) for vc in range(self.spec.n_vcs)
            ],
        }

    # -- accounting -------------------------------------------------------
    def _account(self, flit: Flit, energy_pj: float) -> None:
        """Charge link-traversal energy and hop counts to the packet.

        ``energy_pj`` is the per-flit energy of the PHY that carried the
        flit (hetero-PHY links charge per dispatched PHY).
        """
        self.flits_carried += 1
        packet = flit.packet
        if self._is_interface:
            packet.energy_interface_pj += energy_pj
            if flit.is_head:
                packet.hops_interface += 1
        else:
            packet.energy_onchip_pj += energy_pj
            if flit.is_head:
                packet.hops_onchip += 1
        self.network.stats.note_link_flit(self._kind_id, energy_pj)


class PipelinedLink(Link):
    """A link modelled as a virtual pipeline of ``delay`` stages.

    Up to ``bandwidth`` flits enter per cycle and each emerges ``delay``
    cycles later.  This models on-chip wires (delay 1) as well as parallel
    and serial die-to-die interfaces (Table 2: parallel 2 flits/cy, 5 cy;
    serial 4 flits/cy, 20 cy).
    """

    def __init__(self, spec: ChannelSpec) -> None:
        super().__init__(spec)
        if spec.kind is ChannelKind.HETERO_PHY:
            raise ValueError("use HeteroPhyLink for HETERO_PHY channels")
        self._pipe: deque[tuple[int, Flit, int]] = deque()
        self._bandwidth = spec.phy.bandwidth
        self._delay = spec.phy.delay
        self._energy_per_flit = FLIT_BITS * spec.phy.energy_pj_per_bit

    def accept_budget(self, now: int) -> int:
        return self._bandwidth - self._accepted_in(now)

    def accept(self, flit: Flit, vc: int, now: int) -> None:
        self._note_accept(now)
        self._account(flit, self._energy_per_flit)
        self._pipe.append((now + self._delay, flit, vc))
        if self._telemetry.link_accept is not None:
            self._telemetry.link_accept(self, flit, vc, now)
        self.network.activate_link(self)

    def step(self, now: int) -> bool:
        pipe = self._pipe
        while pipe and pipe[0][0] <= now:
            _, flit, vc = pipe.popleft()
            self.dst_router.receive_flit(self.dst_port, vc, flit, now)
        self._deliver_credits(now)
        return bool(pipe or self._credit_queue)

    @property
    def occupancy(self) -> int:
        """Flits currently in flight on the link."""
        return len(self._pipe)

    def vc_flits(self, vc: int) -> int:
        return sum(1 for _, _, pipe_vc in self._pipe if pipe_vc == vc)

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["pipe"] = [
            {"due": due, "pid": flit.packet.pid, "flit": flit.index, "vc": vc}
            for due, flit, vc in self._pipe
        ]
        return state
