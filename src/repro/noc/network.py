"""Network container and cycle loop.

A :class:`Network` owns the routers and links of one multi-chiplet system
and advances them cycle by cycle.  Only *active* routers and links — those
holding flits, credits or queued work — are stepped, which keeps large
lightly-loaded systems fast without changing cycle-level behaviour.

Activity bookkeeping is deterministic (index-ordered flags plus append-only
work lists), so two runs with the same seed produce identical results.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.telemetry.bus import TelemetryBus

from .channel import ChannelKind, ChannelSpec
from .flit import Packet
from .link import Link, PipelinedLink
from .router import Router


class StatsSink(Protocol):
    """What the network needs from a statistics collector."""

    def note_link_flit(self, kind_id: int, energy_pj: float) -> None: ...

    def note_router_flit(self) -> None: ...

    def note_packet_delivered(self, packet: Packet, now: int) -> None: ...


LinkFactory = Callable[[ChannelSpec], Link]


def default_link_factory(spec: ChannelSpec) -> Link:
    """Build a plain pipelined link; hetero-PHY channels need a custom factory."""
    if spec.kind is ChannelKind.HETERO_PHY:
        raise ValueError(
            "HETERO_PHY channels need repro.core.phy.HeteroPhyLink; "
            "pass link_factory=hetero_phy_link_factory(...)"
        )
    return PipelinedLink(spec)


class Network:
    """Routers + links of one system, with the per-cycle scheduler."""

    def __init__(
        self,
        n_nodes: int,
        stats: StatsSink,
        *,
        injection_vcs: int = 2,
        ejection_bandwidth: int = 4,
        vct: bool = True,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("network needs at least one node")
        self.stats = stats
        #: Instrumentation seam: probes subscribe here (see repro.telemetry).
        self.telemetry = TelemetryBus()
        self.routers = [
            Router(
                node,
                self,
                injection_vcs=injection_vcs,
                ejection_bandwidth=ejection_bandwidth,
                vct=vct,
            )
            for node in range(n_nodes)
        ]
        self.links: list[Link] = []
        self.specs: list[ChannelSpec] = []
        self._router_active = [False] * n_nodes
        self._router_work: list[int] = []
        self._link_active: list[bool] = []
        self._link_work: list[int] = []
        self._finalized = False

    @property
    def n_nodes(self) -> int:
        return len(self.routers)

    # -- construction -------------------------------------------------------
    def add_channel(
        self, spec: ChannelSpec, link_factory: Optional[LinkFactory] = None
    ) -> Link:
        """Instantiate and wire one directed channel.

        Interface channels get extra credit slack (``bandwidth x round-trip``)
        on top of the configured buffer depth; this is the paper's
        "additional buffer" that hides cross-chiplet flow-control feedback
        lag (Sec 7.1).
        """
        if self._finalized:
            raise RuntimeError("cannot add channels after finalize()")
        factory = link_factory or default_link_factory
        link = factory(spec)
        link._index = len(self.links)
        depth = spec.buffer_depth
        if spec.is_interface:
            depth += spec.total_bandwidth * (spec.max_delay + link.credit_delay)
        src = self.routers[spec.src]
        dst = self.routers[spec.dst]
        in_port = dst.add_input(link)
        dst.inputs[in_port].buffer_depth = depth
        out_port = src.add_output(link, credits_per_vc=depth)
        link.attach(self, src, out_port, dst, in_port)
        self.links.append(link)
        self.specs.append(spec)
        self._link_active.append(False)
        return link

    def set_routing(self, routing_fn) -> None:
        """Install one routing function on every router."""
        for router in self.routers:
            router.routing_fn = routing_fn

    def finalize(self) -> None:
        """Freeze topology and validate per-router wiring."""
        for router in self.routers:
            router.finalize()
        self._finalized = True

    # -- activity tracking ----------------------------------------------------
    def activate_router(self, router: Router) -> None:
        node = router.node
        if not self._router_active[node]:
            self._router_active[node] = True
            self._router_work.append(node)

    def activate_link(self, link: Link) -> None:
        idx = link.index
        if not self._link_active[idx]:
            self._link_active[idx] = True
            self._link_work.append(idx)

    # -- simulation ------------------------------------------------------------
    def step(self, now: int) -> None:
        """Advance the whole network by one cycle."""
        if not self._finalized:
            raise RuntimeError("call finalize() before stepping the network")
        links = self.links
        work = self._link_work
        self._link_work = []
        for idx in work:
            if links[idx].step(now):
                self._link_work.append(idx)
            else:
                self._link_active[idx] = False
        routers = self.routers
        work_r = self._router_work
        self._router_work = []
        for node in work_r:
            if routers[node].step(now):
                self._router_work.append(node)
            else:
                self._router_active[node] = False
        if self.telemetry.cycle_end is not None:
            self.telemetry.cycle_end(self, now)

    def step_timed(
        self, now: int, pc: Callable[[], int], phases: dict[str, int], t: int
    ) -> int:
        """:meth:`step` with host wall-time attribution (lap-timer protocol).

        Mirrors :meth:`step` exactly — same work-list swap and the same
        entity order (step order affects VC-allocation arrival order, so
        reordering would change simulated behaviour).  ``t`` is the
        caller's last clock reading; each entity charges its lap into
        ``phases`` via its own ``step_timed`` (links split plain-link vs.
        hetero-PHY rx/tx; routers split RC/VA vs. SA/ST), so attribution
        is exact — work-list bookkeeping and clock overhead land in the
        phase they precede, never in a residual.  Returns the final clock
        reading.  Phase keys sync with
        :data:`repro.telemetry.hostprof.PHASES`.
        """
        if not self._finalized:
            raise RuntimeError("call finalize() before stepping the network")
        links = self.links
        work = self._link_work
        self._link_work = []
        for idx in work:
            alive, t = links[idx].step_timed(now, pc, phases, t)
            if alive:
                self._link_work.append(idx)
            else:
                self._link_active[idx] = False
        routers = self.routers
        work_r = self._router_work
        self._router_work = []
        for node in work_r:
            alive, t = routers[node].step_timed(now, pc, phases, t)
            if alive:
                self._router_work.append(node)
            else:
                self._router_active[node] = False
        if self.telemetry.cycle_end is not None:
            self.telemetry.cycle_end(self, now)
            t2 = pc()
            phases["telemetry"] += t2 - t
            t = t2
        return t

    def inject(self, packet: Packet) -> None:
        """Hand a freshly generated packet to its source router."""
        if self.telemetry.packet_inject is not None:
            self.telemetry.packet_inject(self, packet)
        self.routers[packet.src].inject(packet)

    # -- introspection -----------------------------------------------------------
    def buffered_flits(self) -> int:
        """Flits buffered in all router input VCs (excludes link pipelines)."""
        return sum(router.buffered_flits() for router in self.routers)

    def in_flight_flits(self) -> int:
        """Flits inside link pipelines."""
        total = 0
        for link in self.links:
            occupancy = getattr(link, "occupancy", None)
            if occupancy is not None:
                total += occupancy
        return total
