"""Canonical virtual-channel router with heterogeneous interface support.

The pipeline follows the paper's simulator (Sec 7.1): 1) routing
computation, 2) VC allocation, 3) switch allocation, 4) transmission — one
cycle per stage at zero load.  Interface ports may be wider than on-chip
ports; the switch allocator can grant several flits per cycle to (and from)
such ports, which models the paper's higher-radix crossbar and multi-port
input buffer (Sec 4.1) without re-designing the rest of the router.

Routing functions are pluggable.  A routing function returns *candidate
output virtual channels* for a packet at this router::

    route(router, packet) -> list[(out_port, out_vc, is_escape)]

Escape candidates (``is_escape=True``) form the connected deadlock-free
sub-network C0 of Lemma 1; adaptive candidates are preferred and escape is
used as the fallback.  When a packet falls back to escape *because adaptive
candidates were blocked*, it is marked ``adaptive_banned`` so the livelock
rule of Sec 6.2 can restrict later choices.

Implementation note: the router is event-driven internally — input VCs
needing routing computation or VC allocation sit on a pending list, and
VCs holding an output sit on an active list — so per-cycle cost scales
with traffic, not with port count.  Allocation semantics are unchanged
from the textbook router.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .flit import Flit, Packet
from .link import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

#: A routing candidate: (output port index, output VC index, is_escape).
Candidate = tuple[int, int, bool]
RoutingFunction = Callable[["Router", Packet], list[Candidate]]

# Input-VC pipeline states.
VC_IDLE = 0  # waiting for a head flit / routing computation
VC_VA = 1  # route computed, waiting to win an output VC
VC_ACTIVE = 2  # output VC held, flits flow through switch allocation


class InputVC:
    """One virtual-channel buffer of an input port."""

    __slots__ = (
        "port",
        "index",
        "queue",
        "state",
        "candidates",
        "out_port",
        "out_vc",
        "ready_cycle",
        "queued",
    )

    def __init__(self, port: int, index: int) -> None:
        self.port = port
        self.index = index
        self.queue: deque[Flit] = deque()
        self.state = VC_IDLE
        self.candidates: Optional[list[Candidate]] = None
        self.out_port = -1
        self.out_vc = -1
        self.ready_cycle = 0
        # True while the VC sits on one of the router's work lists.
        self.queued = False

    def reset_route(self) -> None:
        self.state = VC_IDLE
        self.candidates = None
        self.out_port = -1
        self.out_vc = -1


class InputPort:
    """An input port: the receiving side of a link, or the injection port."""

    __slots__ = ("index", "link", "vcs", "buffer_depth")

    def __init__(self, index: int, link: Optional[Link], n_vcs: int, buffer_depth: int) -> None:
        self.index = index
        self.link = link
        self.vcs = [InputVC(index, v) for v in range(n_vcs)]
        self.buffer_depth = buffer_depth

    @property
    def is_injection(self) -> bool:
        return self.link is None


class OutputPort:
    """An output port: the transmitting side of a link, or the ejection port."""

    __slots__ = ("index", "link", "n_vcs", "credits", "vc_owner", "rr_next", "bandwidth")

    def __init__(self, index: int, link: Optional[Link], n_vcs: int, credits: int, bandwidth: int) -> None:
        self.index = index
        self.link = link
        self.n_vcs = n_vcs
        # None link => ejection: effectively infinite credits.
        self.credits = [credits] * n_vcs
        self.vc_owner: list[Optional[InputVC]] = [None] * n_vcs
        self.rr_next = 0
        self.bandwidth = bandwidth

    @property
    def is_ejection(self) -> bool:
        return self.link is None


class Router:
    """One network node's router.

    Port convention: ``inputs[0]`` is the injection port and ``outputs[0]``
    is the ejection port; ports 1.. correspond to attached channels in the
    order the topology builder created them.
    """

    EJECT_PORT = 0
    INJECT_PORT = 0

    def __init__(
        self,
        node: int,
        network: "Network",
        *,
        injection_vcs: int = 2,
        ejection_bandwidth: int = 4,
        vct: bool = True,
    ) -> None:
        self.node = node
        self.network = network
        self._stats = network.stats
        self._telemetry = network.telemetry
        # Virtual cut-through allocation: an output VC is granted only when
        # the downstream buffer can hold the whole packet.  This is what
        # makes the escape-channel argument of Lemma 1 sound for the
        # deadlock proofs (the paper's 32/64-flit buffers exceed its
        # 16-flit packets, so the evaluated systems operate in this regime).
        self.vct = vct
        self.routing_fn: Optional[RoutingFunction] = None
        self.inputs: list[InputPort] = [
            InputPort(self.INJECT_PORT, None, injection_vcs, buffer_depth=1 << 30)
        ]
        self.outputs: list[OutputPort] = [
            OutputPort(self.EJECT_PORT, None, 1, credits=1 << 30, bandwidth=ejection_bandwidth)
        ]
        # Channel tag -> output port index, used by routing functions.
        self.out_port_by_tag: dict[object, int] = {}
        self._inj_rr = 0
        # Work lists: VCs awaiting RC/VA, and VCs holding an output VC.
        self._pending: list[InputVC] = []
        self._active: list[InputVC] = []

    def finalize(self) -> None:
        """Validate wiring; part of the network construction protocol."""
        if self.routing_fn is None:
            raise RuntimeError(f"router {self.node} has no routing function")

    # -- wiring -----------------------------------------------------------
    def add_input(self, link: Link) -> int:
        spec = link.spec
        port = InputPort(len(self.inputs), link, spec.n_vcs, spec.buffer_depth)
        self.inputs.append(port)
        return port.index

    def add_output(self, link: Link, credits_per_vc: int) -> int:
        spec = link.spec
        port = OutputPort(
            len(self.outputs),
            link,
            spec.n_vcs,
            credits=credits_per_vc,
            bandwidth=spec.total_bandwidth,
        )
        self.outputs.append(port)
        if spec.tag is not None:
            if spec.tag in self.out_port_by_tag:
                raise ValueError(f"duplicate channel tag {spec.tag!r} at node {self.node}")
            self.out_port_by_tag[spec.tag] = port.index
        return port.index

    # -- external events ---------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Queue a packet's flits at the injection port (source queue)."""
        vcs = self.inputs[self.INJECT_PORT].vcs
        vc = vcs[self._inj_rr % len(vcs)]
        self._inj_rr += 1
        was_empty = not vc.queue
        vc.queue.extend(packet.make_flits())
        if was_empty and vc.state == VC_IDLE and not vc.queued:
            vc.queued = True
            self._pending.append(vc)
        self.network.activate_router(self)

    def receive_flit(self, port: int, vc_idx: int, flit: Flit, now: int) -> None:
        """A flit arrives from an upstream link into an input VC buffer."""
        vc = self.inputs[port].vcs[vc_idx]
        vc.queue.append(flit)
        if vc.state == VC_IDLE and not vc.queued and flit.is_head:
            vc.queued = True
            self._pending.append(vc)
        if self._telemetry.flit_recv is not None:
            self._telemetry.flit_recv(self, port, vc_idx, flit, now)
        self.network.activate_router(self)

    def credit_arrive(self, out_port: int, vc: int) -> None:
        """A downstream buffer slot was freed."""
        self.outputs[out_port].credits[vc] += 1
        self.network.activate_router(self)

    # -- per-cycle operation ------------------------------------------------
    def step(self, now: int) -> bool:
        """Run one cycle; return True if the router still holds work."""
        if self._pending:
            self._stage_rc_va(now)
        if self._active:
            self._stage_sa(now)
        return bool(self._pending or self._active)

    def step_timed(self, now: int, pc, phases: dict, t: int) -> tuple[bool, int]:
        """:meth:`step` with host wall-time attribution (lap-timer protocol).

        Calls the same stage methods in the same order.  ``t`` is the
        caller's last clock reading; each stage charges ``pc() - t`` to
        its phase and advances the lap, so attribution is exact — clock
        overhead lands in the phase it follows, never in a residual.
        Returns ``(still_active, last_timestamp)``.  Phase keys sync with
        :data:`repro.telemetry.hostprof.PHASES`.
        """
        if self._pending:
            self._stage_rc_va(now)
            t2 = pc()
            phases["rc_va"] += t2 - t
            t = t2
        if self._active:
            self._stage_sa(now)
            t2 = pc()
            phases["sa_st"] += t2 - t
            t = t2
        return bool(self._pending or self._active), t

    # Routing computation + VC allocation.
    def _stage_rc_va(self, now: int) -> None:
        route = self.routing_fn
        pending = self._pending
        self._pending = []
        keep = self._pending
        for ivc in pending:
            state = ivc.state
            if state == VC_IDLE:
                queue = ivc.queue
                if queue and queue[0].is_head:
                    packet = queue[0].packet
                    if packet.inject_cycle is None and ivc.port == self.INJECT_PORT:
                        packet.inject_cycle = now
                    ivc.candidates = route(self, packet)
                    if not ivc.candidates:
                        raise RuntimeError(
                            f"routing returned no candidates at node {self.node} "
                            f"for packet {packet!r}"
                        )
                    if self._telemetry.route_compute is not None:
                        self._telemetry.route_compute(
                            self, packet, ivc.port, ivc.index, now
                        )
                    # Speculative router: routing computation and VC
                    # allocation complete within one cycle at zero load
                    # (Sec 7.1); switch traversal happens the next cycle.
                    ivc.state = VC_VA
                    ivc.ready_cycle = now
                    state = VC_VA
                else:
                    ivc.queued = False  # stale entry
                    continue
            if state == VC_VA:
                if now >= ivc.ready_cycle and self._try_vc_allocate(ivc, now):
                    ivc.queued = True  # moves to the active list
                    self._active.append(ivc)
                else:
                    keep.append(ivc)
            else:  # pragma: no cover - defensive
                ivc.queued = False

    def _try_vc_allocate(self, ivc: InputVC, now: int) -> bool:
        """VC allocation: adaptive candidates first, escape as fallback.

        Among allocable adaptive candidates the one with most downstream
        credits wins (the "dynamic properties" selection of Sec 5.2).  If
        only the escape candidate is allocable while adaptive ones exist,
        the packet is marked ``adaptive_banned`` (livelock rule, Sec 6.2).
        """
        outputs = self.outputs
        packet = ivc.queue[0].packet
        needed = packet.length if self.vct else 1
        best: Optional[Candidate] = None
        best_credits = -1
        saw_adaptive = False
        escape_choice: Optional[Candidate] = None
        for cand in ivc.candidates:
            port_idx, vc_idx, is_escape = cand
            out = outputs[port_idx]
            if not is_escape:
                saw_adaptive = True
            if out.vc_owner[vc_idx] is not None or out.credits[vc_idx] < needed:
                continue
            if is_escape:
                if escape_choice is None:
                    escape_choice = cand
                continue
            credits = out.credits[vc_idx]
            if credits > best_credits:
                best_credits = credits
                best = cand
        if best is None and escape_choice is not None:
            best = escape_choice
            if saw_adaptive:
                packet.adaptive_banned = True
        if best is None:
            return False
        port_idx, vc_idx, _ = best
        outputs[port_idx].vc_owner[vc_idx] = ivc
        ivc.out_port = port_idx
        ivc.out_vc = vc_idx
        ivc.state = VC_ACTIVE
        ivc.ready_cycle = now + 1
        if self._telemetry.vc_alloc is not None:
            self._telemetry.vc_alloc(
                self, packet, ivc.port, ivc.index, port_idx, vc_idx, now
            )
        return True

    # Switch allocation + transmission.
    def _stage_sa(self, now: int) -> None:
        requesters: dict[int, list[InputVC]] = {}
        active = self._active
        self._active = []
        keep = self._active
        for ivc in active:
            if ivc.state != VC_ACTIVE:
                ivc.queued = False  # stale (tail already sent)
                continue
            keep.append(ivc)
            if ivc.queue and now >= ivc.ready_cycle:
                lst = requesters.get(ivc.out_port)
                if lst is None:
                    requesters[ivc.out_port] = [ivc]
                else:
                    lst.append(ivc)
        for out_idx, vcs in requesters.items():
            self._allocate_output(self.outputs[out_idx], vcs, now)

    def _allocate_output(self, out: OutputPort, vcs: list[InputVC], now: int) -> None:
        link = out.link
        if self._telemetry.credit_stall is not None and link is not None:
            # One event per (output VC, cycle) with a flit ready but no
            # downstream credit — the epoch collector's credit-stall metric.
            for ivc in vcs:
                if ivc.queue and out.credits[ivc.out_vc] <= 0:
                    self._telemetry.credit_stall(self, out.index, ivc.out_vc, now)
        budget = out.bandwidth if link is None else min(out.bandwidth, link.accept_budget(now))
        if budget <= 0:
            return
        # Rotate contenders for fairness, then grant greedily; one contender
        # may win several slots per cycle (multi-width FIFO read, Sec 7.3).
        if len(vcs) > 1:
            start = out.rr_next % len(vcs)
            vcs = vcs[start:] + vcs[:start]
            out.rr_next += 1
        credits = out.credits
        progressed = True
        while budget > 0 and progressed:
            progressed = False
            for ivc in vcs:
                if budget <= 0:
                    break
                if not ivc.queue or ivc.state != VC_ACTIVE:
                    continue
                if link is not None and credits[ivc.out_vc] <= 0:
                    continue
                self._send_flit(ivc, out, now)
                budget -= 1
                progressed = True

    def _send_flit(self, ivc: InputVC, out: OutputPort, now: int) -> None:
        flit = ivc.queue.popleft()
        in_port = self.inputs[ivc.port]
        if in_port.link is not None:
            in_port.link.return_credit(ivc.index, now)
        self._stats.note_router_flit()
        if self._telemetry.flit_send is not None:
            self._telemetry.flit_send(self, flit, out.index, ivc.out_vc, now)
        link = out.link
        if link is None:
            self._eject(flit, now)
        else:
            out.credits[ivc.out_vc] -= 1
            link.accept(flit, ivc.out_vc, now)
        if flit.is_tail:
            out.vc_owner[ivc.out_vc] = None
            ivc.reset_route()
            # The next packet in this buffer (if any) needs a fresh route.
            if ivc.queue and ivc.queue[0].is_head:
                ivc.queued = True
                self._pending.append(ivc)
            else:
                ivc.queued = False

    def _eject(self, flit: Flit, now: int) -> None:
        packet = flit.packet
        if packet.dst != self.node:
            raise RuntimeError(
                f"flit for node {packet.dst} ejected at node {self.node}"
            )
        packet.flits_delivered += 1
        if flit.is_tail:
            if packet.flits_delivered != packet.length:
                raise RuntimeError(f"packet {packet.pid} lost flits in flight")
            packet.arrive_cycle = now
            self.network.stats.note_packet_delivered(packet, now)
            if self._telemetry.packet_eject is not None:
                self._telemetry.packet_eject(self, packet, now)

    # -- introspection ------------------------------------------------------
    def buffered_flits(self) -> int:
        """Total flits currently buffered at this router's input ports."""
        return sum(len(vc.queue) for port in self.inputs for vc in port.vcs)

    def snapshot_state(self) -> dict:
        """Forensic snapshot: occupied input VCs plus the credit ledger.

        Consumed by the postmortem bundle (:mod:`repro.telemetry.forensics`);
        JSON-serializable, and side-effect free so it can be taken from an
        exception handler without perturbing the simulation.
        """
        state_names = ("idle", "va_wait", "active")
        inputs = []
        for port in self.inputs:
            vcs = []
            for ivc in port.vcs:
                if not ivc.queue and ivc.state == VC_IDLE:
                    continue
                head = ivc.queue[0] if ivc.queue else None
                entry: dict = {
                    "vc": ivc.index,
                    "occupancy": len(ivc.queue),
                    "state": state_names[ivc.state],
                }
                if head is not None:
                    entry["head"] = {
                        "pid": head.packet.pid,
                        "flit": head.index,
                        "is_head": head.is_head,
                        "dst": head.packet.dst,
                    }
                if ivc.state == VC_ACTIVE:
                    entry["out_port"] = ivc.out_port
                    entry["out_vc"] = ivc.out_vc
                vcs.append(entry)
            if vcs:
                inputs.append({
                    "port": port.index,
                    "link": None if port.link is None else port.link.index,
                    "vcs": vcs,
                })
        outputs = []
        for out in self.outputs:
            if out.link is None:
                continue  # ejection: effectively infinite credits
            outputs.append({
                "port": out.index,
                "link": out.link.index,
                "credits": list(out.credits),
                "vc_owner": [
                    None if owner is None else [owner.port, owner.index]
                    for owner in out.vc_owner
                ],
            })
        return {
            "node": self.node,
            "buffered": self.buffered_flits(),
            "inputs": inputs,
            "outputs": outputs,
        }
