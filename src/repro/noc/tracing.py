"""Per-packet route tracing.

Attach a :class:`RouteTracer` to a built network to record, for selected
packets, the exact sequence of channels their head flit traverses — which
PHY kinds carried it, where it used a wraparound or hypercube shortcut,
and where the escape path took over.  Used for debugging routing
functions, for the path-diversity analyses, and by the visualization
helpers.

The tracer subscribes to the network's telemetry bus (the ``link_accept``
event) rather than wrapping link methods, so it composes with the
invariant sanitizer and the epoch/trace collectors, and detaching it
restores the uninstrumented fast path exactly.
"""

from __future__ import annotations

from typing import Callable, Optional

from .channel import ChannelKind
from .flit import Flit, Packet
from .link import Link
from .network import Network


class RouteTracer:
    """Records head-flit link traversals for packets matching a filter.

    Parameters
    ----------
    network:
        The built network to observe (subscribes to its telemetry bus).
    sample:
        Predicate deciding which packets to trace (default: all).  Keep it
        selective on long runs — traces are kept for the tracer's lifetime.
    """

    def __init__(
        self,
        network: Network,
        sample: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        self.network = network
        self.sample = sample or (lambda packet: True)
        #: pid -> list of (link_index, cycle)
        self.paths: dict[int, list[tuple[int, int]]] = {}
        self._attached = True
        network.telemetry.subscribe("link_accept", self._on_link_accept)

    def _on_link_accept(self, link: Link, flit: Flit, vc: int, now: int) -> None:
        if flit.is_head and self.sample(flit.packet):
            self.paths.setdefault(flit.packet.pid, []).append((link.index, now))

    def detach(self) -> None:
        """Stop tracing; recorded paths remain queryable."""
        if self._attached:
            self.network.telemetry.unsubscribe("link_accept", self._on_link_accept)
            self._attached = False

    # -- queries ------------------------------------------------------------
    def path_of(self, packet: Packet) -> list[int]:
        """Link indices the packet's head traversed, in order."""
        return [index for index, _cycle in self.paths.get(packet.pid, [])]

    def nodes_of(self, packet: Packet) -> list[int]:
        """The node sequence visited (source first, destination last)."""
        links = self.network.links
        path = self.path_of(packet)
        if not path:
            return [packet.src]
        nodes = [links[path[0]].src_router.node]
        nodes.extend(links[index].dst_router.node for index in path)
        return nodes

    def kinds_of(self, packet: Packet) -> list[ChannelKind]:
        """The channel kinds along the packet's path."""
        links = self.network.links
        return [links[index].spec.kind for index in self.path_of(packet)]

    def hop_timeline(self, packet: Packet) -> list[tuple[int, int]]:
        """(link_index, cycle-entered) pairs for the packet's head."""
        return list(self.paths.get(packet.pid, []))

    def interface_hops(self, packet: Packet) -> int:
        return sum(1 for kind in self.kinds_of(packet) if kind is not ChannelKind.ONCHIP)

    def describe(self, packet: Packet) -> str:
        """A one-line human-readable path description."""
        nodes = self.nodes_of(packet)
        kinds = self.kinds_of(packet)
        if len(nodes) == 1:
            return f"packet {packet.pid}: no movement recorded"
        hops = [
            f"{a}-[{kind.value}]->{b}"
            for a, b, kind in zip(nodes, nodes[1:], kinds)
        ]
        return f"packet {packet.pid}: " + " ".join(hops)
