"""Routing functions and deadlock/livelock analysis.

Negative-first mesh routing, weighted torus direction planning,
minus-first hypercube routing [30], the paper's Algorithm 1 for
hetero-channel systems, Eq (5) subnetwork selection, and the Lemma-1
escape-channel analyser.
"""

from .deadlock import EscapeAnalysis, analyse_escape
from .fault import (
    FaultTolerantRouting,
    UnroutableError,
    adaptive_link_indices,
    apply_faults,
    fail_random_links,
)
from .functions import (
    HeteroChannelRouting,
    HypercubeRouting,
    MeshRouting,
    TorusRouting,
    make_routing,
)
from .policies import CUBE, MESH, FixedSelector, HopCountSelector, WeightedSelector, make_selector

__all__ = [
    "CUBE",
    "FaultTolerantRouting",
    "UnroutableError",
    "adaptive_link_indices",
    "apply_faults",
    "fail_random_links",
    "EscapeAnalysis",
    "FixedSelector",
    "HeteroChannelRouting",
    "HopCountSelector",
    "HypercubeRouting",
    "MESH",
    "MeshRouting",
    "TorusRouting",
    "WeightedSelector",
    "analyse_escape",
    "make_routing",
    "make_selector",
]
