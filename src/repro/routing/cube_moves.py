"""Hypercube move math and interface-host lookup.

Chiplet-level hypercube links are hosted by specific interface nodes of
each chiplet (see ``topology.system.add_hypercube``).  A packet that needs
to correct dimension *d* must first travel on-chip to a node hosting a
dimension-*d* link.  This module provides the needed-dimension split
(minus/plus, for the minus-first escape of [30]) and a deterministic
nearest-host chooser whose target is stable along the path — the property
that makes on-chip detours livelock-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .mesh_moves import manhattan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.system import SystemSpec


def split_dims(cur_chiplet: int, dst_chiplet: int) -> tuple[list[int], list[int]]:
    """Dimensions to correct, split into minus (1->0) and plus (0->1) moves.

    A *minus* move clears a bit of the current chiplet id; minus-first
    routing performs all minus corrections before any plus correction,
    which orders the channel dependency graph and avoids deadlock
    (the chiplet id strictly decreases within the minus phase and strictly
    increases within the plus phase).
    """
    diff = cur_chiplet ^ dst_chiplet
    minus: list[int] = []
    plus: list[int] = []
    dim = 0
    while diff:
        if diff & 1:
            if cur_chiplet >> dim & 1:
                minus.append(dim)
            else:
                plus.append(dim)
        diff >>= 1
        dim += 1
    return minus, plus


class CubeHostIndex:
    """Fast lookup of hypercube-hosting interface nodes.

    ``hosted_dims(node)`` lists dimensions whose serial link is attached at
    the node; ``nearest_host(node, dims)`` deterministically returns the
    closest host (by on-chip Manhattan distance, ties broken by lowest
    dimension then lowest node id) for any of the given dimensions within
    the node's chiplet.
    """

    def __init__(self, spec: "SystemSpec") -> None:
        if not spec.has_cube:
            raise ValueError(f"system family {spec.family!r} has no hypercube")
        self.grid = spec.grid
        self.n_dims = spec.n_cube_dims
        self._hosts = spec.cube_hosts
        self._hosted: dict[int, tuple[int, ...]] = {}
        for by_dim in spec.cube_hosts.values():
            for dim, nodes in by_dim.items():
                for node in nodes:
                    dims = self._hosted.get(node, ())
                    self._hosted[node] = dims + (dim,)
        self._nearest_cache: dict[tuple[int, int], tuple[int, int]] = {}

    def hosted_dims(self, node: int) -> tuple[int, ...]:
        """Cube dimensions whose link is attached at ``node`` (often empty)."""
        return self._hosted.get(node, ())

    def hosts(self, chiplet: int, dim: int) -> list[int]:
        """Nodes of ``chiplet`` hosting dimension ``dim`` links."""
        return self._hosts[chiplet][dim]

    def nearest_host(self, node: int, dims: list[int]) -> tuple[int, int]:
        """(host node, dimension) nearest to ``node`` among ``dims``.

        The choice is a pure function of (node, dims); moving one hop
        toward the returned host can only keep it the argmin, so a packet
        steered by repeated calls converges (no host flapping).
        """
        if not dims:
            raise ValueError("dims must be non-empty")
        mask = 0
        for dim in dims:
            mask |= 1 << dim
        key = (node, mask)
        cached = self._nearest_cache.get(key)
        if cached is not None:
            return cached
        grid = self.grid
        chiplet = grid.chiplet_of(node)
        cur = grid.coords(node)
        best: tuple[int, int, int] | None = None  # (distance, dim, host)
        for dim in sorted(dims):
            for host in self._hosts[chiplet][dim]:
                entry = (manhattan(cur, grid.coords(host)), dim, host)
                if best is None or entry < best:
                    best = entry
        assert best is not None
        result = (best[2], best[1])
        self._nearest_cache[key] = result
        return result
