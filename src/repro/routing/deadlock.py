"""Channel-dependency-graph analysis for escape subfunctions.

Lemma 1 (after Dally [20] and Duato [25]) reduces deadlock freedom of the
full adaptive routing function to two properties of the escape routing
subfunction R0 on the channel subset C0: *connectivity* (every pair of
nodes is linked by an escape-only path) and *acyclicity* of the channel
dependency graph of R0.  This module verifies both properties for a built
network by exhaustive enumeration — it is how the tests mechanically check
Theorem 1 for every system family.

Under virtual cut-through allocation (the regime the evaluated systems
operate in — buffers exceed packet length), a packet holds at most its
current channel while requesting the next, so the dependency graph needs
only *direct* dependencies between consecutive escape channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.flit import Packet
from repro.noc.network import Network

#: A dependency-graph vertex: (link index, virtual channel index).
EscapeChannel = tuple[int, int]


@dataclass
class EscapeAnalysis:
    """Result of analysing one network's escape subfunction."""

    connected: bool
    acyclic: bool
    n_channels: int
    n_dependencies: int
    cycle: list[EscapeChannel] = field(default_factory=list)
    unreachable: list[tuple[int, int]] = field(default_factory=list)

    @property
    def deadlock_free(self) -> bool:
        """Lemma 1's sufficient condition."""
        return self.connected and self.acyclic


def _probe(src: int, dst: int) -> Packet:
    packet = Packet(src, dst, length=1, create_cycle=0)
    return packet


def _escape_successors(network: Network, node: int, dst: int) -> list[EscapeChannel]:
    """Escape channels offered at ``node`` for destination ``dst``."""
    router = network.routers[node]
    if node == dst:
        return []
    candidates = router.routing_fn(router, _probe(node, dst))
    result: list[EscapeChannel] = []
    for port, vc, is_escape in candidates:
        if not is_escape:
            continue
        link = router.outputs[port].link
        if link is None:  # ejection
            continue
        result.append((link.index, vc))
    return result


def escape_dependency_graph(
    network: Network,
) -> dict[EscapeChannel, set[EscapeChannel]]:
    """Direct dependencies between escape channels, over all destinations.

    For every (node, destination) pair, each escape channel offered at the
    node depends on each escape channel offered at that channel's
    downstream node for the same destination.
    """
    n = network.n_nodes
    graph: dict[EscapeChannel, set[EscapeChannel]] = {}
    links = network.links
    for dst in range(n):
        # successors per node for this destination, computed once.
        succ_cache: dict[int, list[EscapeChannel]] = {}
        for node in range(n):
            if node == dst:
                continue
            here = succ_cache.get(node)
            if here is None:
                here = _escape_successors(network, node, dst)
                succ_cache[node] = here
            for channel in here:
                link = links[channel[0]]
                next_node = link.dst_router.node
                downstream = succ_cache.get(next_node)
                if downstream is None:
                    downstream = _escape_successors(network, next_node, dst)
                    succ_cache[next_node] = downstream
                graph.setdefault(channel, set()).update(downstream)
    return graph


def find_cycle(
    graph: dict[EscapeChannel, set[EscapeChannel]]
) -> list[EscapeChannel]:
    """A cycle in the dependency graph, or [] if acyclic (iterative DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[EscapeChannel, int] = {}
    parent: dict[EscapeChannel, EscapeChannel] = {}
    for start in graph:
        if color.get(start, WHITE) != WHITE:
            continue
        stack: list[tuple[EscapeChannel, object]] = [(start, iter(graph.get(start, ())))]
        color[start] = GRAY
        while stack:
            vertex, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    # reconstruct the cycle nxt -> ... -> vertex -> nxt
                    cycle = [nxt, vertex]
                    walk = vertex
                    while walk != nxt:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = vertex
                    stack.append((nxt, iter(graph.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
    return []


def escape_connectivity(network: Network) -> list[tuple[int, int]]:
    """(src, dst) pairs NOT reachable via escape-only hops (should be empty).

    Follows escape candidates greedily in breadth-first fashion from every
    source; connectivity of R0 means every destination is reached.
    """
    n = network.n_nodes
    links = network.links
    unreachable: list[tuple[int, int]] = []
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            # BFS over nodes along escape candidates for this destination.
            seen = {src}
            frontier = [src]
            found = False
            while frontier and not found:
                nxt_frontier: list[int] = []
                for node in frontier:
                    for link_idx, _vc in _escape_successors(network, node, dst):
                        nxt = links[link_idx].dst_router.node
                        if nxt == dst:
                            found = True
                            break
                        if nxt not in seen:
                            seen.add(nxt)
                            nxt_frontier.append(nxt)
                    if found:
                        break
                frontier = nxt_frontier
            if not found:
                unreachable.append((src, dst))
    return unreachable


def analyse_escape(network: Network) -> EscapeAnalysis:
    """Run the full Lemma 1 check on a built network."""
    graph = escape_dependency_graph(network)
    cycle = find_cycle(graph)
    unreachable = escape_connectivity(network)
    n_deps = sum(len(v) for v in graph.values())
    return EscapeAnalysis(
        connected=not unreachable,
        acyclic=not cycle,
        n_channels=len(graph),
        n_dependencies=n_deps,
        cycle=cycle,
        unreachable=unreachable,
    )
