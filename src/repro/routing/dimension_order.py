"""Deterministic dimension-order (XY) routing baseline.

The canonical deterministic mesh routing: correct the X coordinate fully,
then the Y coordinate.  It is deadlock-free (the XY turn rule forbids all
cycles) but offers no adaptivity — every candidate set is a single
channel.  It exists as the classical baseline for the adaptivity ablation:
comparing it against negative-first-based adaptive routing (the paper's
choice) isolates what path diversity is worth.

For torus systems the XY variant stays on the mesh component (wraparound
links are simply never used), which keeps the deterministic baseline
deadlock-free without dateline VCs.
"""

from __future__ import annotations

from repro.noc.flit import Packet
from repro.noc.router import Candidate, Router
from repro.topology.system import SystemSpec

_EJECT: list[Candidate] = [(Router.EJECT_PORT, 0, True)]


class DimensionOrderRouting:
    """XY routing on the global mesh channels (VC0 only)."""

    def __init__(self, spec: SystemSpec) -> None:
        if spec.family in ("serial_hypercube",):
            raise ValueError(
                "dimension-order routing needs a global mesh; "
                f"{spec.family!r} has none"
            )
        self.grid = spec.grid

    def __call__(self, router: Router, packet: Packet) -> list[Candidate]:
        node = router.node
        if packet.dst == node:
            return _EJECT
        cx, cy = self.grid.coords(node)
        dx, dy = self.grid.coords(packet.dst)
        if dx > cx:
            direction = "E"
        elif dx < cx:
            direction = "W"
        elif dy > cy:
            direction = "N"
        else:
            direction = "S"
        return [(router.out_port_by_tag[("mesh", direction)], 0, True)]


def xy_path(grid, src: int, dst: int) -> list[str]:
    """The XY move sequence between two nodes (for tests and analysis)."""
    sx, sy = grid.coords(src)
    dx, dy = grid.coords(dst)
    moves: list[str] = []
    step = 1 if dx > sx else -1
    moves.extend("E" if step > 0 else "W" for _ in range(abs(dx - sx)))
    step = 1 if dy > sy else -1
    moves.extend("N" if step > 0 else "S" for _ in range(abs(dy - sy)))
    return moves
