"""Fault tolerance through channel diversity (Sec 9).

The paper observes that hetero-IF "provides more channel diversity and
adaptivity, [which] may improve the system's fault tolerance".  This
module makes that claim testable:

* :func:`apply_faults` removes failed links from every router's candidate
  sets by wrapping the installed routing function;
* :func:`adaptive_link_indices` lists the links that are *safe* to fail in
  a system — those carrying no escape channel (torus wraparounds, the
  hetero-channel system's hypercube links, the serial halves of hetero-PHY
  channels are handled by the adapter itself);
* the Lemma 1 analyser (:func:`repro.routing.deadlock.analyse_escape`)
  still applies after fault injection, so a fault pattern that severs the
  escape subnetwork is detected rather than silently deadlocking.

The headline experiment (benchmarks/test_fault_tolerance.py): failing
serial links degrades a hetero-channel system gracefully — its escape is
the untouched parallel mesh — while the same failures break the
uniform-serial hypercube, whose escape paths run over the failed links.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.noc.network import Network
from repro.noc.router import Router
from repro.topology.system import SystemSpec


class UnroutableError(RuntimeError):
    """A fault pattern left some packet with no usable candidate."""


class FaultTolerantRouting:
    """Wraps a routing function, filtering candidates over failed links."""

    def __init__(self, base, network: Network, failed: Iterable[int]) -> None:
        self.base = base
        self.network = network
        self.failed = frozenset(failed)

    def __call__(self, router: Router, packet):
        candidates = self.base(router, packet)
        outputs = router.outputs
        filtered = []
        for cand in candidates:
            link = outputs[cand[0]].link
            if link is None or link.index not in self.failed:
                filtered.append(cand)
        if not filtered:
            raise UnroutableError(
                f"packet for node {packet.dst} stranded at node {router.node}: "
                "all candidate channels failed"
            )
        if len(filtered) != len(candidates):
            # The packet detours around a fault, which invalidates the
            # minimal-progress livelock argument (a tied adaptive choice can
            # otherwise shuttle it between the fault's endpoints forever).
            # Apply the Sec 6.2 livelock rule from the next hop on: restrict
            # the packet to the (intact) escape discipline.
            packet.adaptive_banned = True
        return filtered


def apply_faults(network: Network, failed: Sequence[int]) -> None:
    """Remove the given links (by index) from all routing decisions."""
    for index in failed:
        if not 0 <= index < len(network.links):
            raise ValueError(f"no link with index {index}")
    for router in network.routers:
        router.routing_fn = FaultTolerantRouting(router.routing_fn, network, failed)


def adaptive_link_indices(network: Network, spec: SystemSpec) -> list[int]:
    """Links that carry no escape channel in this system family.

    For torus families these are the wraparound links; for the
    hetero-channel system the serial hypercube links (Algorithm 1's escape
    is the parallel mesh).  The uniform serial hypercube has *no* such
    links: every cube link carries minus-first escape traffic, which is
    exactly why it degrades badly under faults.
    """
    safe_tags = {
        "parallel_mesh": (),
        "serial_torus": ("wrap",),
        "hetero_phy_torus": ("wrap",),
        "serial_hypercube": (),
        "hetero_channel": ("cube",),
    }[spec.family]
    return [
        i
        for i, channel in enumerate(network.specs)
        if channel.tag is not None and channel.tag[0] in safe_tags
    ]


def fail_random_links(
    network: Network,
    candidates: Sequence[int],
    count: int,
    *,
    seed: int = 0,
) -> list[int]:
    """Pick ``count`` distinct links to fail and apply the faults."""
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} links; only {len(candidates)} candidates"
        )
    rng = np.random.default_rng(seed)
    chosen = sorted(int(i) for i in rng.choice(candidates, size=count, replace=False))
    apply_faults(network, chosen)
    return chosen
