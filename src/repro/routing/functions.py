"""Routing functions for every system family.

All functions share the structure of Algorithm 1: a connected,
deadlock-free *escape* routing subfunction R0 on a channel subset C0
(candidates marked ``is_escape=True``), plus freely usable *adaptive*
channels restricted to profitable paths (``is_escape=False``).  The VC
allocator prefers adaptive candidates and falls back to escape; falling
back due to congestion sets ``packet.adaptive_banned``, after which
adaptive channels are offered only along baseline (escape) paths — the
livelock rule of Sec 6.2.

Escape structures per family:

* mesh / torus / hetero-PHY torus / hetero-channel — minimal negative-first
  routing on VC0 of the global-mesh channels (on-chip + mesh-direction
  interface channels); torus wraparound and hypercube channels are purely
  adaptive (Algorithm 1's C0 = C_N,0 + C_P,0).
* serial hypercube — *minus-first* routing (reproduced from [30]): all
  1->0 chiplet-dimension corrections before any 0->1 correction, with
  phase-split escape VCs (VC0 while minus corrections remain, VC1 after),
  which orders the channel dependency graph.
"""

from __future__ import annotations

from typing import Optional

from repro.core.weighted_path import HopCostModel
from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.router import Candidate, Router
from repro.topology.system import SystemSpec
from .cube_moves import CubeHostIndex, split_dims
from .mesh_moves import minimal_moves, negative_first_moves
from .policies import CUBE, MESH, SubnetSelector
from .torus_moves import TorusAxisPlanner

_EJECT: list[Candidate] = [(Router.EJECT_PORT, 0, True)]

_X_DIR = {1: "E", -1: "W"}
_Y_DIR = {1: "N", -1: "S"}


class MeshRouting:
    """Negative-first-based adaptive routing on the global 2D mesh.

    Escape: minimal negative-first on VC0.  Adaptive: all minimal moves on
    VC1+ (restricted to escape directions once the packet is banned).
    """

    def __init__(self, spec: SystemSpec) -> None:
        self.grid = spec.grid
        self.n_vcs = spec.config.n_vcs

    def __call__(self, router: Router, packet: Packet) -> list[Candidate]:
        if packet.dst == router.node:
            return _EJECT
        cur = self.grid.coords(router.node)
        dst = self.grid.coords(packet.dst)
        return self._mesh_candidates(router, cur, dst, packet.adaptive_banned)

    def _mesh_candidates(
        self,
        router: Router,
        cur: tuple[int, int],
        dst: tuple[int, int],
        banned: bool,
    ) -> list[Candidate]:
        by_tag = router.out_port_by_tag
        escape_dirs = negative_first_moves(cur, dst)
        candidates: list[Candidate] = [
            (by_tag[("mesh", d)], 0, True) for d in escape_dirs
        ]
        adaptive_dirs = escape_dirs if banned else minimal_moves(cur, dst)
        for direction in adaptive_dirs:
            port = by_tag[("mesh", direction)]
            for vc in range(1, self.n_vcs):
                candidates.append((port, vc, False))
        return candidates


class TorusRouting(MeshRouting):
    """Weighted adaptive routing for (hetero-PHY or serial) torus systems.

    Escape is negative-first on the mesh component (wraparound channels are
    never escape).  Adaptive candidates follow the per-axis weighted
    direction decision of Sec 5.2: the cheaper of the direct and the
    wraparound direction under Eq (3) hop costs, using wrap channels at the
    global mesh edge and mesh channels elsewhere.
    """

    def __init__(self, spec: SystemSpec, cost_model: Optional[HopCostModel] = None) -> None:
        super().__init__(spec)
        if not spec.has_wraparound:
            raise ValueError(f"{spec.family!r} is not a torus family")
        cost_model = cost_model or HopCostModel.performance_first(spec.config)
        neighbor = (
            ChannelKind.HETERO_PHY
            if spec.family == "hetero_phy_torus"
            else ChannelKind.SERIAL
        )
        grid = spec.grid
        self.planner_x = TorusAxisPlanner(
            grid.width, grid.nodes_x, neighbor, cost_model, wrapped=grid.chiplets_x > 1
        )
        self.planner_y = TorusAxisPlanner(
            grid.height, grid.nodes_y, neighbor, cost_model, wrapped=grid.chiplets_y > 1
        )

    def __call__(self, router: Router, packet: Packet) -> list[Candidate]:
        if packet.dst == router.node:
            return _EJECT
        grid = self.grid
        cur = grid.coords(router.node)
        dst = grid.coords(packet.dst)
        by_tag = router.out_port_by_tag
        escape_dirs = negative_first_moves(cur, dst)
        candidates: list[Candidate] = [
            (by_tag[("mesh", d)], 0, True) for d in escape_dirs
        ]
        if packet.adaptive_banned:
            for direction in escape_dirs:
                port = by_tag[("mesh", direction)]
                for vc in range(1, self.n_vcs):
                    candidates.append((port, vc, False))
            return candidates
        moves: list[str] = []
        for sign in self.planner_x.directions(cur[0], dst[0]):
            moves.append(_X_DIR[sign])
        for sign in self.planner_y.directions(cur[1], dst[1]):
            moves.append(_Y_DIR[sign])
        for direction in moves:
            mesh_port = by_tag.get(("mesh", direction))
            if mesh_port is not None:
                for vc in range(1, self.n_vcs):
                    candidates.append((mesh_port, vc, False))
            else:
                wrap_port = by_tag[("wrap", direction)]
                for vc in range(self.n_vcs):
                    candidates.append((wrap_port, vc, False))
        return candidates


class HypercubeRouting:
    """Minus-first adaptive routing for the uniform serial hypercube [30].

    The escape subfunction corrects all minus dimensions (1->0) before any
    plus dimension (0->1), travelling on-chip (negative-first) to the
    hosting interface node of the *nearest* needed dimension.  Escape VCs
    are phase-split: on-chip and serial VC0 while in the minus phase, VC1
    afterwards; serial VC1 is adaptive within the current phase.
    """

    MINUS_VC = 0
    PLUS_VC = 1

    def __init__(self, spec: SystemSpec) -> None:
        if spec.family != "serial_hypercube":
            raise ValueError("HypercubeRouting requires a serial_hypercube system")
        if spec.config.n_vcs < 2:
            raise ValueError("minus-first routing needs >= 2 virtual channels")
        self.grid = spec.grid
        self.n_vcs = spec.config.n_vcs
        self.hosts = CubeHostIndex(spec)

    def __call__(self, router: Router, packet: Packet) -> list[Candidate]:
        node = router.node
        if packet.dst == node:
            return _EJECT
        grid = self.grid
        chiplet = grid.chiplet_of(node)
        dst_chiplet = grid.chiplet_of(packet.dst)
        by_tag = router.out_port_by_tag
        if chiplet == dst_chiplet:
            return self._onchip(
                router, grid.coords(node), grid.coords(packet.dst), self.PLUS_VC
            )
        minus, plus = split_dims(chiplet, dst_chiplet)
        phase_dims = minus if minus else plus
        phase_vc = self.MINUS_VC if minus else self.PLUS_VC
        host, dim = self.hosts.nearest_host(node, phase_dims)
        if host == node:
            candidates: list[Candidate] = [(by_tag[("cube", dim)], phase_vc, True)]
        else:
            candidates = self._onchip(
                router, grid.coords(node), grid.coords(host), phase_vc
            )
        if packet.adaptive_banned:
            return candidates
        # Adaptive: any hosted link of the current phase.  Escape claims
        # serial VC0 on minus links and VC1 on plus links, so the opposite
        # VC of each serial link (plus any VC >= 2) is free for adaptive
        # use within the phase; on-chip adaptivity needs VC >= 2.
        serial_adaptive_vcs = [1 - phase_vc] + list(range(2, self.n_vcs))
        for hosted_dim in self.hosts.hosted_dims(node):
            if hosted_dim in phase_dims:
                port = by_tag[("cube", hosted_dim)]
                for vc in serial_adaptive_vcs:
                    candidates.append((port, vc, False))
        if host != node:
            for direction in minimal_moves(grid.coords(node), grid.coords(host)):
                port = by_tag[("mesh", direction)]
                for vc in range(self.PLUS_VC + 1, self.n_vcs):
                    candidates.append((port, vc, False))
        return candidates

    def _onchip(
        self,
        router: Router,
        cur: tuple[int, int],
        target: tuple[int, int],
        phase_vc: int,
    ) -> list[Candidate]:
        by_tag = router.out_port_by_tag
        candidates: list[Candidate] = [
            (by_tag[("mesh", d)], phase_vc, True)
            for d in negative_first_moves(cur, target)
        ]
        for direction in minimal_moves(cur, target):
            port = by_tag[("mesh", direction)]
            for vc in range(self.PLUS_VC + 1, self.n_vcs):
                candidates.append((port, vc, False))
        return candidates


class HeteroChannelRouting(MeshRouting):
    """Algorithm 1 for the hetero-channel mesh+hypercube system.

    C0 is VC0 of the on-chip and parallel mesh channels with negative-first
    routing (connected and deadlock-free -> Theorem 1); all serial
    hypercube VCs and the remaining mesh VCs are adaptive.  The subnetwork
    carrying the cross-chiplet journey is chosen per packet by ``selector``
    (Eq 5 by default); cube-mode packets may switch permanently to mesh
    mode as they approach the destination.
    """

    def __init__(self, spec: SystemSpec, selector: SubnetSelector) -> None:
        super().__init__(spec)
        if spec.family != "hetero_channel":
            raise ValueError("HeteroChannelRouting requires a hetero_channel system")
        self.hosts = CubeHostIndex(spec)
        self.selector = selector

    def __call__(self, router: Router, packet: Packet) -> list[Candidate]:
        node = router.node
        if packet.dst == node:
            return _EJECT
        grid = self.grid
        cur = grid.coords(node)
        dst = grid.coords(packet.dst)
        chiplet = grid.chiplet_of(node)
        dst_chiplet = grid.chiplet_of(packet.dst)
        if chiplet == dst_chiplet or packet.adaptive_banned:
            packet.subnet_choice = MESH
            return self._mesh_candidates(router, cur, dst, packet.adaptive_banned)
        if packet.subnet_choice is None:
            packet.subnet_choice = self.selector.select(chiplet, dst_chiplet)
        elif packet.subnet_choice == CUBE:
            # Re-evaluate; a switch to mesh is permanent (absorbing), which
            # both enables the low-latency parallel finish (Sec 8.1.2) and
            # guarantees livelock freedom.
            packet.subnet_choice = self.selector.select(chiplet, dst_chiplet)
        if packet.subnet_choice == MESH:
            return self._mesh_candidates(router, cur, dst, banned=False)
        return self._cube_candidates(router, packet, chiplet, dst_chiplet, cur, dst)

    def _cube_candidates(
        self,
        router: Router,
        packet: Packet,
        chiplet: int,
        dst_chiplet: int,
        cur: tuple[int, int],
        dst: tuple[int, int],
    ) -> list[Candidate]:
        by_tag = router.out_port_by_tag
        # Escape is always the negative-first parallel mesh toward the
        # destination (Algorithm 1 line 6).
        candidates: list[Candidate] = [
            (by_tag[("mesh", d)], 0, True) for d in negative_first_moves(cur, dst)
        ]
        minus, plus = split_dims(chiplet, dst_chiplet)
        needed = minus + plus
        hosted = [d for d in self.hosts.hosted_dims(router.node) if d in needed]
        if hosted:
            # All serial VCs are adaptive (Algorithm 1 line 8).
            for dim in hosted:
                port = by_tag[("cube", dim)]
                for vc in range(self.n_vcs):
                    candidates.append((port, vc, False))
        else:
            host, _dim = self.hosts.nearest_host(router.node, needed)
            for direction in minimal_moves(cur, self.grid.coords(host)):
                port = by_tag[("mesh", direction)]
                for vc in range(1, self.n_vcs):
                    candidates.append((port, vc, False))
        return candidates


def make_routing(
    spec: SystemSpec,
    *,
    cost_model: Optional[HopCostModel] = None,
    selector: Optional[SubnetSelector] = None,
):
    """Build the routing function appropriate for a system family."""
    family = spec.family
    if family == "parallel_mesh":
        return MeshRouting(spec)
    if family in ("serial_torus", "hetero_phy_torus"):
        return TorusRouting(spec, cost_model)
    if family == "serial_hypercube":
        return HypercubeRouting(spec)
    if family == "hetero_channel":
        if selector is None:
            from .policies import HopCountSelector

            selector = HopCountSelector(spec.grid)
        return HeteroChannelRouting(spec, selector)
    raise ValueError(f"no routing for family {family!r}")
