"""Pure direction math for 2D-mesh routing.

``negative_first_moves`` implements the escape routing function R0 of
Algorithm 1: minimal negative-first routing, which routes all required
negative-direction moves (W, S) before any positive-direction move (E, N)
and is deadlock-free on a mesh [20, 25].  ``minimal_moves`` gives the full
minimal-adaptive move set used on adaptive virtual channels.
"""

from __future__ import annotations

#: Directions that decrease a coordinate (handled first by negative-first).
NEGATIVE_DIRS = ("W", "S")
#: Directions that increase a coordinate.
POSITIVE_DIRS = ("E", "N")


def minimal_moves(cur: tuple[int, int], dst: tuple[int, int]) -> list[str]:
    """All mesh directions on a minimal path from ``cur`` to ``dst``."""
    cx, cy = cur
    dx, dy = dst
    moves: list[str] = []
    if dx > cx:
        moves.append("E")
    elif dx < cx:
        moves.append("W")
    if dy > cy:
        moves.append("N")
    elif dy < cy:
        moves.append("S")
    return moves


def negative_first_moves(cur: tuple[int, int], dst: tuple[int, int]) -> list[str]:
    """Minimal negative-first move set from ``cur`` to ``dst``.

    While any negative move (W or S) remains, only negative moves are
    allowed (adaptively, if both are needed); afterwards the remaining
    positive moves (E, N) are allowed adaptively.  Empty iff ``cur == dst``.
    """
    moves = minimal_moves(cur, dst)
    negatives = [m for m in moves if m in NEGATIVE_DIRS]
    return negatives if negatives else moves


def is_negative_first_legal(path_dirs: list[str]) -> bool:
    """True if a sequence of moves obeys the negative-first turn rule."""
    seen_positive = False
    for move in path_dirs:
        if move in POSITIVE_DIRS:
            seen_positive = True
        elif seen_positive:
            return False
    return True


def manhattan(cur: tuple[int, int], dst: tuple[int, int]) -> int:
    """L1 distance between two mesh coordinates."""
    return abs(cur[0] - dst[0]) + abs(cur[1] - dst[1])
