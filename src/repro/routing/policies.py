"""Subnetwork-selection policies for hetero-channel systems.

Eq (5) of the paper selects, per packet, which subnetwork carries its
cross-chiplet journey::

    SS = serial-IF cube   if #H_P - #H_S > 0
         parallel-IF mesh otherwise

where ``#H_P`` is the chiplet hop count on the parallel 2D-mesh and
``#H_S`` the hop count on the serial hypercube.  The choice minimizes the
total number of cross-chiplet hops (rule-based balanced scheduling,
Sec 8.1.2).

A cube-mode packet re-evaluates the selection at every chiplet and may
switch *permanently* to mesh mode — this is how "a message approaching the
destination turns to the low-latency parallel interface"; the absorbing
switch also guarantees livelock freedom (hamming distance strictly
decreases while in cube mode, Manhattan distance strictly decreases after
the switch).
"""

from __future__ import annotations

from typing import Protocol

from repro.core.weighted_path import HopCostModel
from repro.noc.channel import ChannelKind
from repro.topology.grid import ChipletGrid

MESH = "mesh"
CUBE = "cube"


class SubnetSelector(Protocol):
    """Chooses the subnetwork for a packet at chiplet ``cur`` headed to ``dst``."""

    def select(self, cur_chiplet: int, dst_chiplet: int) -> str: ...


class HopCountSelector:
    """Eq (5): pick the subnetwork with fewer cross-chiplet hops."""

    def __init__(self, grid: ChipletGrid) -> None:
        self.grid = grid

    def select(self, cur_chiplet: int, dst_chiplet: int) -> str:
        h_mesh = self.grid.mesh_chiplet_distance(cur_chiplet, dst_chiplet)
        h_cube = self.grid.cube_distance(cur_chiplet, dst_chiplet)
        return CUBE if h_mesh - h_cube > 0 else MESH


class WeightedSelector:
    """Weighted-path-length subnetwork selection (Sec 5.2).

    Approximates each subnetwork's end-to-end cost from chiplet hop counts:
    a mesh chiplet hop costs one parallel interface hop plus the on-chip
    hops needed to cross a chiplet; a cube hop costs one serial hop plus
    the average on-chip detour to the hosting interface node.  With an
    energy-weighted :class:`HopCostModel` this realizes the
    *energy-efficient* policy (serial hops become expensive); with a
    performance model it approximates the *performance-first* policy.
    """

    def __init__(self, grid: ChipletGrid, cost_model: HopCostModel) -> None:
        self.grid = grid
        onchip = cost_model.hop_cost(ChannelKind.ONCHIP)
        span = (grid.nodes_x + grid.nodes_y) / 2
        self._mesh_hop = cost_model.hop_cost(ChannelKind.PARALLEL) + (span - 1) * onchip
        host_detour = (grid.nodes_x + grid.nodes_y) / 4
        self._cube_hop = cost_model.hop_cost(ChannelKind.SERIAL) + host_detour * onchip

    def select(self, cur_chiplet: int, dst_chiplet: int) -> str:
        h_mesh = self.grid.mesh_chiplet_distance(cur_chiplet, dst_chiplet)
        h_cube = self.grid.cube_distance(cur_chiplet, dst_chiplet)
        return CUBE if h_cube * self._cube_hop < h_mesh * self._mesh_hop else MESH


class FixedSelector:
    """Always pick one subnetwork (exclusive usage mode, Sec 3.1)."""

    def __init__(self, subnet: str) -> None:
        if subnet not in (MESH, CUBE):
            raise ValueError(f"subnet must be {MESH!r} or {CUBE!r}")
        self.subnet = subnet

    def select(self, cur_chiplet: int, dst_chiplet: int) -> str:
        return self.subnet


def make_selector(
    policy: str, grid: ChipletGrid, cost_model: HopCostModel
) -> SubnetSelector:
    """Build a subnetwork selector for a named scheduling policy."""
    if policy in ("balanced", "performance", "application_aware", "passive_aware"):
        # Eq (5): minimize total cross-chiplet hops.  Application-aware
        # scheduling differs in PHY dispatch, not subnetwork selection.
        return HopCountSelector(grid)
    if policy == "energy_efficient":
        return WeightedSelector(grid, cost_model)
    if policy in (MESH, CUBE):
        return FixedSelector(policy)
    raise ValueError(f"unknown subnetwork policy {policy!r}")
