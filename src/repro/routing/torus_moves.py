"""Weighted direction planning for torus systems.

The torus systems (uniform-serial torus, hetero-PHY torus) are node-level
2D tori: each row/column has a serial wraparound link between the global
mesh edges.  For every axis a packet can travel in the increasing or the
decreasing direction; the cheaper one under the weighted path length of
Sec 5.2 is chosen (ties allow both, i.e. full adaptivity).

A direction's cost sums Eq (3) hop costs along the axis: on-chip hops,
inter-chiplet boundary hops (serial or hetero-PHY) and the wraparound hop
(serial).  Decisions depend only on the two coordinates, so they are
memoized.
"""

from __future__ import annotations

from repro.core.weighted_path import HopCostModel
from repro.noc.channel import ChannelKind


class TorusAxisPlanner:
    """Per-axis weighted direction chooser for one torus axis.

    Parameters
    ----------
    width:
        Nodes along the axis (global).
    chiplet_span:
        Nodes per chiplet along the axis; hops crossing a multiple of this
        are inter-chiplet interface hops.
    neighbor_kind:
        Channel kind of inter-chiplet neighbour hops (SERIAL or HETERO_PHY).
    cost_model:
        Eq (3) hop cost model supplying per-kind costs.
    wrapped:
        Whether the axis has wraparound links at all (False degenerates to
        plain mesh behaviour).
    """

    def __init__(
        self,
        width: int,
        chiplet_span: int,
        neighbor_kind: ChannelKind,
        cost_model: HopCostModel,
        *,
        wrapped: bool = True,
    ) -> None:
        if width < 1 or chiplet_span < 1 or width % chiplet_span:
            raise ValueError("width must be a positive multiple of chiplet_span")
        self.width = width
        self.chiplet_span = chiplet_span
        self.wrapped = wrapped and width > chiplet_span
        self._onchip = cost_model.hop_cost(ChannelKind.ONCHIP)
        self._neighbor = cost_model.hop_cost(neighbor_kind)
        self._wrap = cost_model.hop_cost(ChannelKind.SERIAL)
        self._dir_cache: dict[tuple[int, int], tuple[int, ...]] = {}

    def axis_cost(self, cur: int, dst: int, sign: int) -> float:
        """Weighted cost of travelling from ``cur`` to ``dst`` going ``sign``.

        ``sign`` is +1 or -1.  Returns ``inf`` for a direction that would
        need a wraparound on an unwrapped axis.
        """
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        width = self.width
        steps = (dst - cur) * sign % width
        if steps == 0:
            return 0.0
        span = self.chiplet_span
        cost = 0.0
        pos = cur
        for _ in range(steps):
            if sign > 0:
                is_wrap = pos == width - 1
                is_boundary = not is_wrap and (pos + 1) % span == 0
            else:
                is_wrap = pos == 0
                is_boundary = not is_wrap and pos % span == 0
            if is_wrap:
                if not self.wrapped:
                    return float("inf")
                cost += self._wrap
            elif is_boundary:
                cost += self._neighbor
            else:
                cost += self._onchip
            pos = (pos + sign) % width
        return cost

    def directions(self, cur: int, dst: int) -> tuple[int, ...]:
        """Minimal-cost travel signs from ``cur`` to ``dst`` on this axis.

        Returns ``()`` when already aligned, ``(+1,)``/``(-1,)`` for a
        unique cheaper direction, or ``(+1, -1)`` on an exact cost tie.
        """
        if cur == dst:
            return ()
        key = (cur, dst)
        cached = self._dir_cache.get(key)
        if cached is not None:
            return cached
        plus = self.axis_cost(cur, dst, +1)
        minus = self.axis_cost(cur, dst, -1)
        if plus < minus:
            result: tuple[int, ...] = (1,)
        elif minus < plus:
            result = (-1,)
        else:
            result = (1, -1)
        self._dir_cache[key] = result
        return result
