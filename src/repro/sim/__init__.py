"""Simulation layer: configuration (Table 2), engine, statistics, harness.

Submodules importing only ``config``/``stats`` stay import-light; the
engine, network builder and experiment harness are loaded lazily so that
``repro.core`` modules can depend on :mod:`repro.sim.config` without an
import cycle.
"""

from .config import DEFAULT_CONFIG, SimConfig
from .stats import DeadlockError, Stats

__all__ = [
    "DEFAULT_CONFIG",
    "DeadlockError",
    "Engine",
    "RunResult",
    "SimConfig",
    "Stats",
    "SweepPoint",
    "Workload",
    "build_network",
    "latency_rate_sweep",
    "routing_cost_model",
    "run_synthetic",
    "run_trace",
    "saturation_rate",
]

_LAZY = {
    "Engine": ("repro.sim.engine", "Engine"),
    "Workload": ("repro.sim.engine", "Workload"),
    "build_network": ("repro.sim.build", "build_network"),
    "routing_cost_model": ("repro.sim.build", "routing_cost_model"),
    "RunResult": ("repro.sim.experiment", "RunResult"),
    "SweepPoint": ("repro.sim.experiment", "SweepPoint"),
    "latency_rate_sweep": ("repro.sim.experiment", "latency_rate_sweep"),
    "run_synthetic": ("repro.sim.experiment", "run_synthetic"),
    "run_trace": ("repro.sim.experiment", "run_trace"),
    "saturation_rate": ("repro.sim.experiment", "saturation_rate"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
