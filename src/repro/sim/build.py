"""Assemble runnable networks from system descriptions.

This is the glue between the pure topology description
(:class:`~repro.topology.system.SystemSpec`), the hetero-IF machinery
(:mod:`repro.core`) and the NoC substrate (:mod:`repro.noc`): it
instantiates links (hetero-PHY channels get adapters with the configured
dispatch policy), installs the family's routing function, and validates
the virtual cut-through buffer requirement.
"""

from __future__ import annotations

from typing import Optional

from repro.core.phy import hetero_phy_link_factory
from repro.core.scheduling import make_dispatch_policy
from repro.core.weighted_path import HopCostModel, make_cost_model
from repro.noc.network import Network
from repro.routing.functions import make_routing
from repro.routing.policies import make_selector
from repro.topology.system import SystemSpec
from .stats import Stats

#: Scheduling-policy name -> cost model used for routing decisions.  Only
#: the energy-efficient policy biases *routing*; the others differ in PHY
#: dispatch (Sec 5.3.1) but route for performance.
_ROUTING_COST_POLICY = {
    "performance": "performance",
    "balanced": "performance",
    "application_aware": "performance",
    "passive_aware": "performance",
    "energy_efficient": "energy_efficient",
}


def routing_cost_model(spec: SystemSpec, policy: Optional[str] = None) -> HopCostModel:
    """The Eq (3) cost model driving routing under a scheduling policy."""
    name = policy or spec.config.scheduling_policy
    try:
        cost_name = _ROUTING_COST_POLICY[name]
    except KeyError:
        raise ValueError(f"unknown scheduling policy {name!r}") from None
    return make_cost_model(spec.config, cost_name)


def build_network(
    spec: SystemSpec,
    stats: Stats,
    *,
    policy: Optional[str] = None,
    routing=None,
    dispatch_policy_factory=None,
) -> Network:
    """Instantiate the network of a system, ready to simulate.

    ``policy`` overrides ``spec.config.scheduling_policy`` and controls
    the hetero-PHY dispatch policy, the routing cost model and (for
    hetero-channel systems) the Eq (5) subnetwork selector.  ``routing``
    overrides the routing function entirely, and
    ``dispatch_policy_factory`` (a zero-argument callable returning a
    :class:`~repro.core.scheduling.DispatchPolicy`) overrides the
    name-based hetero-PHY dispatch policy — both used by ablation studies.
    """
    config = spec.config
    policy_name = policy or config.scheduling_policy
    _validate_vct(spec)
    network = Network(
        spec.grid.n_nodes,
        stats,
        injection_vcs=config.injection_vcs,
        ejection_bandwidth=config.ejection_bandwidth,
    )
    dispatch_name = policy_name if policy_name != "mesh" and policy_name != "cube" else "balanced"
    if dispatch_policy_factory is None:
        dispatch_policy_factory = lambda: make_dispatch_policy(dispatch_name, config)  # noqa: E731
    factory = hetero_phy_link_factory(
        dispatch_policy_factory,
        tx_fifo_depth=config.tx_fifo_depth,
        rob_capacity_override=config.rob_capacity,
    )
    for channel in spec.channels:
        network.add_channel(channel, factory)
    if routing is None:
        cost_model = routing_cost_model(spec, dispatch_name)
        selector = None
        if spec.family == "hetero_channel":
            selector_policy = policy_name
            selector = make_selector(selector_policy, spec.grid, cost_model)
        routing = make_routing(spec, cost_model=cost_model, selector=selector)
    network.set_routing(routing)
    network.finalize()
    return network


def _validate_vct(spec: SystemSpec) -> None:
    """Virtual cut-through needs buffers at least one packet deep."""
    config = spec.config
    if config.onchip_buffer < config.packet_length:
        raise ValueError(
            f"on-chip buffers ({config.onchip_buffer} flits) are smaller than "
            f"the packet length ({config.packet_length}); virtual cut-through "
            "allocation (and Lemma 1's deadlock argument) requires "
            "whole-packet buffering"
        )
    if config.interface_buffer < config.packet_length:
        raise ValueError(
            f"interface buffers ({config.interface_buffer} flits) are smaller "
            f"than the packet length ({config.packet_length})"
        )
