"""Simulation configuration with the paper's default parameters (Table 2).

=====================================  ==========================
Parameter                              Value
=====================================  ==========================
Packet length                          16 flits
Input buffer size                      32 flits (on-chip), 64 (interface)
Virtual channels                       2 per link
On-chip link bandwidth                 2 flits/cycle
Parallel link bandwidth / delay        2 flits/cycle / 5 cycles
Serial link bandwidth / delay          4 flits/cycle / 20 cycles
Simulation time                        100000 cycles (10000 warm-up)
=====================================  ==========================

The *halved* heterogeneous interface (Sec 7.2) combines two halved standard
PHYs to keep the total I/O pin count of a single standard interface:
parallel 1 flit/cycle, serial 2 flits/cycle.

Link energies follow Sec 8.3: parallel 1 pJ/bit, serial 2.4 pJ/bit.  The
on-chip per-hop energy is not given by the paper; we use 0.1 pJ/bit per hop
(a typical 1-2 mm on-chip link at 12 nm), which makes the on-chip/interface
split of Fig 16 comparable in magnitude.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.noc.channel import PhyParams


@dataclass(frozen=True)
class SimConfig:
    """All tunable parameters of a simulation run."""

    # Packetization
    packet_length: int = 16

    # Buffers / VCs (Table 2)
    onchip_buffer: int = 32
    interface_buffer: int = 64
    n_vcs: int = 2

    # Link physics (Table 2)
    onchip_bandwidth: int = 2
    onchip_delay: int = 1
    parallel_bandwidth: int = 2
    parallel_delay: int = 5
    serial_bandwidth: int = 4
    serial_delay: int = 20

    # Energy (Sec 8.3)
    onchip_energy_pj_per_bit: float = 0.1
    parallel_energy_pj_per_bit: float = 1.0
    serial_energy_pj_per_bit: float = 2.4

    # Simulation horizon (Table 2)
    sim_cycles: int = 100_000
    warmup_cycles: int = 10_000

    # Router parameters
    injection_vcs: int = 2
    ejection_bandwidth: int = 4

    # Hetero-PHY adapter (Sec 4.2 / 7.3)
    tx_fifo_depth: int = 32
    scheduling_policy: str = "balanced"
    rob_capacity: int | None = None  # None => Eq (1) sizing

    def __post_init__(self) -> None:
        if self.packet_length < 1:
            raise ValueError("packet_length must be >= 1")
        if self.warmup_cycles >= self.sim_cycles:
            raise ValueError("warmup_cycles must be smaller than sim_cycles")
        for name in (
            "onchip_bandwidth",
            "parallel_bandwidth",
            "serial_bandwidth",
            "n_vcs",
            "onchip_buffer",
            "interface_buffer",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    # -- derived PHY parameter bundles ------------------------------------
    @property
    def onchip_phy(self) -> PhyParams:
        return PhyParams(
            self.onchip_bandwidth, self.onchip_delay, self.onchip_energy_pj_per_bit
        )

    @property
    def parallel_phy(self) -> PhyParams:
        return PhyParams(
            self.parallel_bandwidth, self.parallel_delay, self.parallel_energy_pj_per_bit
        )

    @property
    def serial_phy(self) -> PhyParams:
        return PhyParams(
            self.serial_bandwidth, self.serial_delay, self.serial_energy_pj_per_bit
        )

    # -- variants -----------------------------------------------------------
    def halved(self) -> "SimConfig":
        """The pin-constrained hetero-IF variant (Sec 7.2).

        Both PHYs are halved so the heterogeneous interface uses roughly the
        I/O pin budget of one standard interface.
        """
        return self.replace(
            parallel_bandwidth=max(1, self.parallel_bandwidth // 2),
            serial_bandwidth=max(1, self.serial_bandwidth // 2),
        )

    def replace(self, **changes) -> "SimConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def scaled(self, cycles: int, warmup: int | None = None) -> "SimConfig":
        """Return a copy with a shorter simulation horizon (for tests/benches)."""
        if warmup is None:
            warmup = cycles // 10
        return self.replace(sim_cycles=cycles, warmup_cycles=warmup)


#: The paper's default configuration (Table 2).
DEFAULT_CONFIG = SimConfig()
