"""Cycle-driven simulation engine.

The engine ties together a :class:`~repro.noc.network.Network`, a workload
(anything with a ``step(now) -> list[Packet]`` method) and a
:class:`~repro.sim.stats.Stats` collector, and advances them cycle by cycle.
It also watches for lack of forward progress, turning routing deadlocks
into a :class:`~repro.sim.stats.DeadlockError` instead of a silent hang —
this is how the deadlock-freedom tests exercise Theorem 1.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Iterable, Optional, Protocol

from repro.noc.flit import Packet
from repro.noc.network import Network
from .stats import DeadlockError, DrainTimeoutError, Stats


class Workload(Protocol):
    """A packet source driven by the engine."""

    def step(self, now: int) -> Iterable[Packet]:
        """Packets created at cycle ``now`` (may be empty)."""
        ...

    def done(self, now: int) -> bool:
        """True once the workload will never produce packets again."""
        ...


class Engine:
    """Drives one simulation run."""

    def __init__(
        self,
        network: Network,
        workload: Workload,
        stats: Stats,
        *,
        deadlock_threshold: Optional[int] = 20_000,
    ) -> None:
        self.network = network
        self.workload = workload
        self.stats = stats
        self.deadlock_threshold = deadlock_threshold
        self.cycle = 0
        #: Optional postmortem sink (duck-typed
        #: :class:`repro.telemetry.forensics.ForensicsSession`).  When set,
        #: any failure escaping :meth:`run` / :meth:`run_until_drained`
        #: writes a bundle first and gains a ``bundle_path`` attribute.
        self.forensics = None

    def run(self, cycles: int) -> Stats:
        """Advance the simulation by ``cycles`` cycles."""
        end = self.cycle + cycles
        try:
            while self.cycle < end:
                self._tick()
        except (RuntimeError, AssertionError) as exc:
            self._capture_failure(exc)
            raise
        return self.stats

    def run_until_drained(self, max_cycles: int) -> Stats:
        """Run until the workload is exhausted and the network is empty.

        Used for trace replay, where every packet of the trace should be
        delivered before statistics are read.  Raises
        :class:`~repro.sim.stats.DrainTimeoutError` — carrying a per-router
        buffered-flit census — if the network fails to drain within
        ``max_cycles``.
        """
        deadline = self.cycle + max_cycles
        try:
            while self.cycle < deadline:
                self._tick()
                if self.workload.done(self.cycle) and self._empty():
                    return self.stats
        except (RuntimeError, AssertionError) as exc:
            self._capture_failure(exc)
            raise
        census = {
            router.node: flits
            for router in self.network.routers
            if (flits := router.buffered_flits()) > 0
        }
        error = DrainTimeoutError(
            self.cycle,
            max_cycles,
            census,
            self.network.in_flight_flits(),
            self.cycle - self.stats.last_movement_cycle,
        )
        self._capture_failure(error)
        raise error

    def _capture_failure(self, exc: BaseException) -> None:
        """Write a postmortem bundle for ``exc`` (best effort, never masks it).

        ``AssertionError`` covers the sanitizer's ``InvariantViolation``
        without importing :mod:`repro.analysis` (which would create an
        import cycle through the topology builders).
        """
        session = self.forensics
        if session is None:
            return
        if isinstance(exc, DrainTimeoutError):
            reason = "drain-timeout"
        elif isinstance(exc, DeadlockError):
            reason = "deadlock"
        elif isinstance(exc, AssertionError):
            reason = "invariant-violation"
        else:
            reason = "runtime-error"
        try:
            path = session.capture_to_file(reason, self.cycle, error=exc)
        except Exception:  # noqa: BLE001 - forensics must not mask the failure
            return
        if getattr(exc, "bundle_path", None) is None:
            try:
                exc.bundle_path = str(path)
            except AttributeError:
                pass  # exception type refuses new attributes

    def run_profiled(
        self,
        cycles: int,
        *,
        drain: bool = False,
        sort: str = "cumulative",
        top: int = 25,
    ) -> tuple[Stats, str]:
        """Run under :mod:`cProfile` and return ``(stats, report_text)``.

        With ``drain=True`` this wraps :meth:`run_until_drained` (``cycles``
        becomes the drain deadline); otherwise :meth:`run`.  The report lists
        the ``top`` hottest functions sorted by ``sort`` (any
        :mod:`pstats` sort key).
        """
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            if drain:
                self.run_until_drained(cycles)
            else:
                self.run(cycles)
        finally:
            profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats(sort).print_stats(top)
        return self.stats, buffer.getvalue()

    def _empty(self) -> bool:
        return self.network.buffered_flits() == 0 and self.network.in_flight_flits() == 0

    def _tick(self) -> None:
        now = self.cycle
        stats = self.stats
        stats.now = now
        for packet in self.workload.step(now):
            stats.note_packet_injected(packet)
            self.network.inject(packet)
        self.network.step(now)
        self.cycle = now + 1
        if (
            self.deadlock_threshold is not None
            and now - stats.last_movement_cycle > self.deadlock_threshold
        ):
            buffered = self.network.buffered_flits()
            if buffered > 0:
                raise DeadlockError(now, buffered, now - stats.last_movement_cycle)
            stats.last_movement_cycle = now
