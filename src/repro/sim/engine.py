"""Cycle-driven simulation engine.

The engine ties together a :class:`~repro.noc.network.Network`, a workload
(anything with a ``step(now) -> list[Packet]`` method) and a
:class:`~repro.sim.stats.Stats` collector, and advances them cycle by cycle.
It also watches for lack of forward progress, turning routing deadlocks
into a :class:`~repro.sim.stats.DeadlockError` instead of a silent hang —
this is how the deadlock-freedom tests exercise Theorem 1.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Iterable, Optional, Protocol

from repro.noc.flit import Packet
from repro.noc.network import Network
from .stats import DeadlockError, DrainTimeoutError, Stats


class ProfileReport:
    """A cProfile capture of one engine run, plus folding helpers.

    Returned by :meth:`Engine.run_profiled`.  The raw profiler stays
    accessible as ``.profile`` so callers can fold it into flamegraph /
    speedscope artifacts (see :mod:`repro.telemetry.hostprof`); ``text()``
    renders the classic :mod:`pstats` table.
    """

    def __init__(
        self, profile: cProfile.Profile, *, sort: str = "cumulative", top: int = 25
    ) -> None:
        self.profile = profile
        self.sort = sort
        self.top = top

    def text(self, *, sort: Optional[str] = None, top: Optional[int] = None) -> str:
        """The ``top`` hottest functions sorted by ``sort`` (pstats keys)."""
        buffer = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buffer)
        stats.sort_stats(sort or self.sort).print_stats(top or self.top)
        return buffer.getvalue()

    def folded(self) -> list[tuple[tuple[str, ...], int]]:
        """Phase-rooted folded stacks (``hostprof.fold_profile``)."""
        from repro.telemetry.hostprof import fold_profile

        return fold_profile(self.profile)

    def collapsed(self) -> str:
        """Collapsed-stack flamegraph text (``flamegraph.pl`` input)."""
        from repro.telemetry.hostprof import collapsed_stacks

        return collapsed_stacks(self.folded())

    def speedscope(self, *, name: str = "repro profile") -> dict[str, Any]:
        """Speedscope-compatible JSON document of the folded stacks."""
        from repro.telemetry.hostprof import speedscope_document

        return speedscope_document(self.folded(), name=name)


class Workload(Protocol):
    """A packet source driven by the engine."""

    def step(self, now: int) -> Iterable[Packet]:
        """Packets created at cycle ``now`` (may be empty)."""
        ...

    def done(self, now: int) -> bool:
        """True once the workload will never produce packets again."""
        ...


class Engine:
    """Drives one simulation run."""

    def __init__(
        self,
        network: Network,
        workload: Workload,
        stats: Stats,
        *,
        deadlock_threshold: Optional[int] = 20_000,
    ) -> None:
        self.network = network
        self.workload = workload
        self.stats = stats
        self.deadlock_threshold = deadlock_threshold
        self.cycle = 0
        #: Optional postmortem sink (duck-typed
        #: :class:`repro.telemetry.forensics.ForensicsSession`).  When set,
        #: any failure escaping :meth:`run` / :meth:`run_until_drained`
        #: writes a bundle first and gains a ``bundle_path`` attribute.
        self.forensics = None
        #: Optional host-time ledger (duck-typed
        #: :class:`repro.telemetry.hostprof.HostTimeLedger`).  When set,
        #: ticks route through :meth:`_tick_profiled`, which attributes
        #: wall time to named phases; when ``None`` the plain tick runs
        #: and the engine behaves identically (passive observer).
        self.hostprof = None
        #: Optional live feed (duck-typed
        #: :class:`repro.telemetry.live.LiveFeed`).  When set, a failure
        #: escaping :meth:`run` / :meth:`run_until_drained` lands in the
        #: feed as a terminal ``failure`` event — with the postmortem
        #: bundle path when forensics captured one — so ``repro watch``
        #: surfaces the death without waiting for the registry.
        self.livefeed = None

    def run(self, cycles: int) -> Stats:
        """Advance the simulation by ``cycles`` cycles."""
        end = self.cycle + cycles
        tick = self._tick if self.hostprof is None else self._tick_profiled
        try:
            while self.cycle < end:
                tick()
        except (RuntimeError, AssertionError) as exc:
            self._capture_failure(exc)
            raise
        return self.stats

    def run_until_drained(self, max_cycles: int) -> Stats:
        """Run until the workload is exhausted and the network is empty.

        Used for trace replay, where every packet of the trace should be
        delivered before statistics are read.  Raises
        :class:`~repro.sim.stats.DrainTimeoutError` — carrying a per-router
        buffered-flit census — if the network fails to drain within
        ``max_cycles``.
        """
        deadline = self.cycle + max_cycles
        tick = self._tick if self.hostprof is None else self._tick_profiled
        try:
            while self.cycle < deadline:
                tick()
                if self.workload.done(self.cycle) and self._empty():
                    return self.stats
        except (RuntimeError, AssertionError) as exc:
            self._capture_failure(exc)
            raise
        census = {
            router.node: flits
            for router in self.network.routers
            if (flits := router.buffered_flits()) > 0
        }
        error = DrainTimeoutError(
            self.cycle,
            max_cycles,
            census,
            self.network.in_flight_flits(),
            self.cycle - self.stats.last_movement_cycle,
        )
        self._capture_failure(error)
        raise error

    def _capture_failure(self, exc: BaseException) -> None:
        """Write a postmortem bundle for ``exc`` (best effort, never masks it).

        ``AssertionError`` covers the sanitizer's ``InvariantViolation``
        without importing :mod:`repro.analysis` (which would create an
        import cycle through the topology builders).
        """
        if isinstance(exc, DrainTimeoutError):
            reason = "drain-timeout"
        elif isinstance(exc, DeadlockError):
            reason = "deadlock"
        elif isinstance(exc, AssertionError):
            reason = "invariant-violation"
        else:
            reason = "runtime-error"
        path = None
        session = self.forensics
        if session is not None:
            try:
                path = session.capture_to_file(reason, self.cycle, error=exc)
            except Exception:  # noqa: BLE001 - forensics must not mask the failure
                path = None
            if path is not None and getattr(exc, "bundle_path", None) is None:
                try:
                    exc.bundle_path = str(path)
                except AttributeError:
                    pass  # exception type refuses new attributes
        feed = self.livefeed
        if feed is not None:
            try:
                feed.fail(
                    reason,
                    self.cycle,
                    error=f"{type(exc).__name__}: {exc}",
                    bundle=str(path) if path is not None else None,
                )
            except Exception:  # noqa: BLE001 - telemetry must not mask the failure
                pass

    def run_profiled(
        self,
        cycles: int,
        *,
        drain: bool = False,
        sort: str = "cumulative",
        top: int = 25,
    ) -> tuple[Stats, ProfileReport]:
        """Run under :mod:`cProfile`; return ``(stats, ProfileReport)``.

        With ``drain=True`` this wraps :meth:`run_until_drained` (``cycles``
        becomes the drain deadline); otherwise :meth:`run`.  The report
        defaults to the ``top`` hottest functions sorted by ``sort`` (any
        :mod:`pstats` sort key) and can be folded into flamegraph /
        speedscope artifacts — ``repro profile`` is the CLI front end.
        """
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            if drain:
                self.run_until_drained(cycles)
            else:
                self.run(cycles)
        finally:
            profiler.disable()
        return self.stats, ProfileReport(profiler, sort=sort, top=top)

    def _empty(self) -> bool:
        return self.network.buffered_flits() == 0 and self.network.in_flight_flits() == 0

    def _tick(self) -> None:
        now = self.cycle
        stats = self.stats
        stats.now = now
        for packet in self.workload.step(now):
            stats.note_packet_injected(packet)
            self.network.inject(packet)
        self.network.step(now)
        self.cycle = now + 1
        if (
            self.deadlock_threshold is not None
            and now - stats.last_movement_cycle > self.deadlock_threshold
        ):
            buffered = self.network.buffered_flits()
            if buffered > 0:
                raise DeadlockError(now, buffered, now - stats.last_movement_cycle)
            stats.last_movement_cycle = now

    def _tick_profiled(self) -> None:
        """:meth:`_tick` with host wall-time attribution.

        Same statement order and semantics as :meth:`_tick`; the only
        additions are ``perf_counter_ns`` reads at phase boundaries,
        chained lap-timer style (each phase charges the time since the
        previous reading), so every timed nanosecond is attributed — the
        conservation check in :mod:`repro.telemetry.hostprof` would catch
        any phase this tick forgot to charge.  Phase keys sync with
        :data:`repro.telemetry.hostprof.PHASES`.  Stride-skipped cycles
        run the plain tick so sampling overhead stays near zero.
        """
        ledger = self.hostprof
        now = self.cycle
        if not ledger.wants(now):
            self._tick()
            ledger.note_plain_cycle()
            return
        pc = ledger.clock
        phases = ledger.phases
        t0 = pc()
        stats = self.stats
        stats.now = now
        for packet in self.workload.step(now):
            stats.note_packet_injected(packet)
            self.network.inject(packet)
        t1 = pc()
        phases["inject"] += t1 - t0
        t2 = self.network.step_timed(now, pc, phases, t1)
        self.cycle = now + 1
        if (
            self.deadlock_threshold is not None
            and now - stats.last_movement_cycle > self.deadlock_threshold
        ):
            buffered = self.network.buffered_flits()
            if buffered > 0:
                raise DeadlockError(now, buffered, now - stats.last_movement_cycle)
            stats.last_movement_cycle = now
        t3 = pc()
        phases["stats"] += t3 - t2
        ledger.note_timed_cycle(t3 - t0)
