"""High-level experiment harness.

One-call helpers for the evaluation workflows of the paper: run a
synthetic pattern at a rate, replay a trace to completion, or sweep the
injection rate and report the latency curve (the structure of every
latency-vs-injection figure).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.phy import HeteroPhyLink
from repro.noc.network import Network
from repro.telemetry import TelemetryConfig, TelemetrySession
from repro.telemetry.runstore import system_digest
from repro.topology.system import SystemSpec
from repro.traffic.injection import SyntheticWorkload
from repro.traffic.patterns import make_pattern
from repro.traffic.trace import Trace, TraceWorkload
from .build import build_network
from .engine import Engine
from .stats import Stats


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    system: str
    workload: str
    policy: str
    n_nodes: int
    cycles: int
    stats: Stats
    #: (parallel, serial) flit counts over all hetero-PHY links.
    phy_split: tuple[int, int] = (0, 0)
    extras: dict[str, float] = field(default_factory=dict)
    #: Finalized telemetry session (set when ``telemetry=`` was requested).
    telemetry: Optional[TelemetrySession] = None
    #: Workload RNG seed (None for trace replays).
    seed: Optional[int] = None
    #: Wall-clock seconds the engine spent simulating (excludes build).
    wall_seconds: float = math.nan
    #: Digest of system + config + workload + policy (see
    #: :func:`repro.telemetry.runstore.system_digest`).
    config_hash: str = ""

    @property
    def avg_latency(self) -> float:
        return self.stats.avg_latency

    @property
    def stage_totals(self) -> Optional[dict[str, int]]:
        """Ledger stage totals (None unless ``latency_breakdown`` ran)."""
        if self.telemetry is None or self.telemetry.ledger is None:
            return None
        return self.telemetry.ledger.stage_totals()

    @property
    def latency_breakdown(self) -> Optional[dict]:
        """Full attribution summary (None unless ``latency_breakdown`` ran)."""
        if self.telemetry is None or self.telemetry.ledger is None:
            return None
        return self.telemetry.ledger.summary()

    @property
    def digest(self) -> Optional[dict]:
        """Digest block (``RunDigest.record_summary``; None unless collected)."""
        if self.telemetry is None or self.telemetry.digest is None:
            return None
        return self.telemetry.digest.record_summary()

    @property
    def host_phases(self) -> Optional[dict]:
        """Compact host-time attribution (None unless ``host_time`` ran)."""
        if self.telemetry is None or self.telemetry.hostprof is None:
            return None
        return self.telemetry.hostprof.record_summary()

    @property
    def cycles_per_second(self) -> float:
        """Simulation throughput in simulated cycles per wall-clock second."""
        if math.isnan(self.wall_seconds) or self.wall_seconds <= 0:
            return math.nan
        return self.cycles / self.wall_seconds

    @property
    def avg_energy_pj(self) -> float:
        return self.stats.avg_energy_pj

    @property
    def saturated(self) -> bool:
        """Heuristic: the network failed to deliver most measured packets."""
        frac = self.stats.delivered_fraction
        return not math.isnan(frac) and frac < 0.6


def _collect_phy_split(network: Network) -> tuple[int, int]:
    par = ser = 0
    for link in network.links:
        if isinstance(link, HeteroPhyLink):
            par += link.flits_parallel
            ser += link.flits_serial
    return par, ser


def run_synthetic(
    spec: SystemSpec,
    pattern: str,
    rate: float,
    *,
    policy: Optional[str] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seed: int = 1,
    pattern_kwargs: Optional[dict] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """Simulate one synthetic-pattern point (one marker of Fig 11/14).

    Pass a :class:`~repro.telemetry.TelemetryConfig` as ``telemetry`` to
    collect per-epoch metrics, a Chrome trace, live progress and/or a
    cProfile report; the finalized session lands on ``RunResult.telemetry``.
    """
    config = spec.config
    cycles = cycles if cycles is not None else config.sim_cycles
    warmup = warmup if warmup is not None else config.warmup_cycles
    stats = Stats(measure_from=warmup)
    network = build_network(spec, stats, policy=policy)
    pattern_obj = make_pattern(pattern, spec.grid.n_nodes, **(pattern_kwargs or {}))
    workload = SyntheticWorkload(
        pattern_obj,
        spec.grid.n_nodes,
        rate,
        config.packet_length,
        until=cycles,
        seed=seed,
    )
    engine = Engine(network, workload, stats)
    workload_name = f"{pattern}@{rate:g}"
    resolved_policy = policy or config.scheduling_policy
    session: Optional[TelemetrySession] = None
    if telemetry is not None:
        session = TelemetrySession.attach(
            network, telemetry, warmup=warmup, total_cycles=cycles
        )
        engine.forensics = session.forensics
        engine.hostprof = session.hostprof
        engine.livefeed = session.live
        if session.digest is not None:
            grid = spec.grid
            session.digest.meta = {
                "system": spec.name,
                "family": spec.family,
                "chiplets": [grid.chiplets_x, grid.chiplets_y],
                "nodes": [grid.nodes_x, grid.nodes_y],
                "pattern": pattern,
                "rate": rate,
                "seed": seed,
                "cycles": cycles,
                "warmup": warmup,
                "policy": resolved_policy,
                "config_hash": system_digest(
                    spec, workload=workload_name, policy=resolved_policy
                ),
            }
        if session.live is not None:
            session.live.start(
                {
                    "system": spec.name,
                    "workload": workload_name,
                    "policy": resolved_policy,
                    "n_nodes": spec.grid.n_nodes,
                    "seed": seed,
                    "warmup": warmup,
                    "config_hash": system_digest(
                        spec, workload=workload_name, policy=resolved_policy
                    ),
                }
            )
    start = time.perf_counter()
    if session is not None and telemetry is not None and telemetry.profile:
        _, report = engine.run_profiled(cycles, top=telemetry.profile_top)
        session.profile_report = report
        session.profile_text = report.text()
    else:
        engine.run(cycles)
    wall_seconds = time.perf_counter() - start
    if session is not None:
        session.finalize(engine.cycle)
    return RunResult(
        system=spec.name,
        workload=workload_name,
        policy=resolved_policy,
        n_nodes=spec.grid.n_nodes,
        cycles=cycles,
        stats=stats,
        phy_split=_collect_phy_split(network),
        telemetry=session,
        seed=seed,
        wall_seconds=wall_seconds,
        config_hash=system_digest(spec, workload=workload_name, policy=resolved_policy),
    )


def run_trace(
    spec: SystemSpec,
    trace: Trace,
    *,
    policy: Optional[str] = None,
    warmup: int = 0,
    drain_margin: int = 200_000,
    strict: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """Replay a trace to completion (Fig 12/13/15/17 methodology).

    With ``strict=False`` a network that cannot drain the trace within the
    margin (a saturated operating point) returns its partial statistics
    instead of raising; ``delivered_fraction`` then reflects the loss.
    Pass ``telemetry=`` exactly as in :func:`run_synthetic`.
    """
    stats = Stats(measure_from=warmup)
    network = build_network(spec, stats, policy=policy)
    workload = TraceWorkload(trace)
    engine = Engine(network, workload, stats)
    deadline = trace.duration + drain_margin
    resolved_policy = policy or spec.config.scheduling_policy
    session: Optional[TelemetrySession] = None
    if telemetry is not None:
        session = TelemetrySession.attach(
            network, telemetry, warmup=warmup, total_cycles=None
        )
        engine.forensics = session.forensics
        engine.hostprof = session.hostprof
        engine.livefeed = session.live
        if session.digest is not None:
            # Trace replays carry no synthetic-workload descriptor, so the
            # meta is not re-simulable; ``repro diff`` then localizes only
            # to checkpoint granularity.
            grid = spec.grid
            session.digest.meta = {
                "system": spec.name,
                "family": spec.family,
                "chiplets": [grid.chiplets_x, grid.chiplets_y],
                "nodes": [grid.nodes_x, grid.nodes_y],
                "workload": trace.name,
                "warmup": warmup,
                "policy": resolved_policy,
                "config_hash": system_digest(
                    spec, workload=trace.name, policy=resolved_policy
                ),
            }
        if session.live is not None:
            session.live.start(
                {
                    "system": spec.name,
                    "workload": trace.name,
                    "policy": resolved_policy,
                    "n_nodes": spec.grid.n_nodes,
                    "warmup": warmup,
                    "config_hash": system_digest(
                        spec, workload=trace.name, policy=resolved_policy
                    ),
                }
            )
    start = time.perf_counter()
    try:
        if session is not None and telemetry is not None and telemetry.profile:
            _, report = engine.run_profiled(
                deadline, drain=True, top=telemetry.profile_top
            )
            session.profile_report = report
            session.profile_text = report.text()
        else:
            engine.run_until_drained(deadline)
    except RuntimeError:
        if strict:
            raise
    finally:
        wall_seconds = time.perf_counter() - start
        if session is not None:
            session.finalize(engine.cycle)
    return RunResult(
        system=spec.name,
        workload=trace.name,
        policy=resolved_policy,
        n_nodes=spec.grid.n_nodes,
        cycles=engine.cycle,
        stats=stats,
        phy_split=_collect_phy_split(network),
        telemetry=session,
        wall_seconds=wall_seconds,
        config_hash=system_digest(spec, workload=trace.name, policy=resolved_policy),
    )


@dataclass
class SweepPoint:
    """One point of a latency-vs-injection-rate curve."""

    rate: float
    avg_latency: float
    delivered_fraction: float
    avg_energy_pj: float

    @property
    def saturated(self) -> bool:
        return math.isnan(self.avg_latency) or self.delivered_fraction < 0.6


def latency_rate_sweep(
    spec: SystemSpec,
    pattern: str,
    rates: Sequence[float],
    *,
    policy: Optional[str] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    seed: int = 1,
    stop_after_saturation: bool = True,
    pattern_kwargs: Optional[dict] = None,
) -> list[SweepPoint]:
    """Latency curve over injection rates (one line of Fig 11/13/14/15).

    By default the sweep stops once a rate saturates (delivery collapses);
    the remaining points would only burn time confirming the cliff.
    """
    points: list[SweepPoint] = []
    for rate in rates:
        result = run_synthetic(
            spec,
            pattern,
            rate,
            policy=policy,
            cycles=cycles,
            warmup=warmup,
            seed=seed,
            pattern_kwargs=pattern_kwargs,
        )
        point = SweepPoint(
            rate=rate,
            avg_latency=result.avg_latency,
            delivered_fraction=result.stats.delivered_fraction,
            avg_energy_pj=result.avg_energy_pj,
        )
        points.append(point)
        if stop_after_saturation and point.saturated:
            break
    return points


def saturation_rate(points: Sequence[SweepPoint]) -> float:
    """The highest non-saturated rate of a sweep (nan if all saturated)."""
    best = float("nan")
    for point in points:
        if not point.saturated:
            best = point.rate
    return best
