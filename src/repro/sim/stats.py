"""Simulation statistics.

Collects per-packet latency, throughput, hop and energy figures.  Packets
created before the end of the warm-up window are delivered normally but
excluded from the measured population, matching the paper's methodology
(Table 2: 100000 cycles with 10000 cycles of warm-up).
"""

from __future__ import annotations

import math

from typing import Sequence

from repro.noc.channel import KINDS_BY_ID, ChannelKind
from repro.noc.flit import Packet


def percentile(values: Sequence[float], pct: float, *, presorted: bool = False) -> float:
    """The ``pct``-th percentile of ``values`` (ceil-rank convention).

    ``pct`` must satisfy ``0 < pct <= 100``; anything else (including NaN)
    raises :class:`ValueError` naming the offending value.  Returns NaN for
    an empty sequence.  ``presorted=True`` skips the sort when the caller
    already keeps the values ordered (the latency ledger's aggregates).
    """
    if math.isnan(pct) or not 0 < pct <= 100:
        raise ValueError(
            f"percentile pct must be in (0, 100], got {pct!r}"
        )
    if not values:
        return math.nan
    ordered = values if presorted else sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(pct / 100 * len(ordered)) - 1))
    return float(ordered[idx])


class Stats:
    """Statistics sink passed to the network.

    Parameters
    ----------
    measure_from:
        First cycle whose packets are included in the measured population
        (usually the warm-up length).
    """

    def __init__(self, measure_from: int = 0) -> None:
        self.measure_from = measure_from
        self.now = 0
        # Progress tracking (used for deadlock detection).
        self.last_movement_cycle = 0
        self.router_flits = 0
        # Link-level counters, indexed by channel-kind id (hot path).
        self._link_flits = [0] * len(KINDS_BY_ID)
        self._link_energy_pj = [0.0] * len(KINDS_BY_ID)
        # Measured packet population.
        self.latencies: list[int] = []
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.packets_injected = 0
        self.flits_injected = 0
        self.measured_injected = 0
        self.hops_onchip = 0
        self.hops_interface = 0
        self.energy_onchip_pj = 0.0
        self.energy_interface_pj = 0.0

    # -- sink protocol ------------------------------------------------------
    def note_link_flit(self, kind_id: int, energy_pj: float) -> None:
        self._link_flits[kind_id] += 1
        self._link_energy_pj[kind_id] += energy_pj

    def note_router_flit(self) -> None:
        self.router_flits += 1
        self.last_movement_cycle = self.now

    @property
    def link_flits(self) -> dict[ChannelKind, int]:
        """Flits transmitted per channel kind."""
        return dict(zip(KINDS_BY_ID, self._link_flits))

    @property
    def link_energy_pj(self) -> dict[ChannelKind, float]:
        """Link energy consumed per channel kind (pJ), all traffic."""
        return dict(zip(KINDS_BY_ID, self._link_energy_pj))

    def note_packet_injected(self, packet: Packet) -> None:
        self.packets_injected += 1
        self.flits_injected += packet.length
        if packet.create_cycle >= self.measure_from:
            self.measured_injected += 1

    def note_packet_delivered(self, packet: Packet, now: int) -> None:
        if packet.create_cycle < self.measure_from:
            return
        self.packets_delivered += 1
        self.flits_delivered += packet.length
        self.latencies.append(now - packet.create_cycle)
        self.hops_onchip += packet.hops_onchip
        self.hops_interface += packet.hops_interface
        self.energy_onchip_pj += packet.energy_onchip_pj
        self.energy_interface_pj += packet.energy_interface_pj

    # -- derived metrics -------------------------------------------------------
    @property
    def avg_latency(self) -> float:
        """Mean creation-to-delivery latency of measured packets."""
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    @property
    def latency_variance(self) -> float:
        """Population variance of measured packet latency."""
        n = len(self.latencies)
        if n < 2:
            return math.nan
        mean = self.avg_latency
        return sum((lat - mean) ** 2 for lat in self.latencies) / n

    @property
    def latency_stddev(self) -> float:
        var = self.latency_variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile (0 < pct <= 100) of measured packets."""
        return percentile(self.latencies, pct)

    def throughput(self, n_nodes: int, measured_cycles: int) -> float:
        """Accepted traffic in flits/cycle/node over the measurement window."""
        if n_nodes <= 0 or measured_cycles <= 0:
            raise ValueError("n_nodes and measured_cycles must be positive")
        return self.flits_delivered / (n_nodes * measured_cycles)

    @property
    def avg_energy_pj(self) -> float:
        """Mean link energy per delivered packet (pJ), on-chip + interface."""
        if self.packets_delivered == 0:
            return math.nan
        total = self.energy_onchip_pj + self.energy_interface_pj
        return total / self.packets_delivered

    @property
    def avg_energy_onchip_pj(self) -> float:
        if self.packets_delivered == 0:
            return math.nan
        return self.energy_onchip_pj / self.packets_delivered

    @property
    def avg_energy_interface_pj(self) -> float:
        if self.packets_delivered == 0:
            return math.nan
        return self.energy_interface_pj / self.packets_delivered

    @property
    def avg_hops(self) -> float:
        """Mean hop count (on-chip + interface) per delivered packet."""
        if self.packets_delivered == 0:
            return math.nan
        return (self.hops_onchip + self.hops_interface) / self.packets_delivered

    @property
    def delivered_fraction(self) -> float:
        """Measured packets delivered / measured packets injected."""
        if self.measured_injected == 0:
            return math.nan
        return self.packets_delivered / self.measured_injected

    def summary(self) -> dict[str, float | int]:
        """A flat dictionary of the headline metrics.

        Counters (``packets_delivered``) stay :class:`int`; derived metrics
        are :class:`float` (``nan`` when the measured population is empty).
        """
        return {
            "packets_delivered": self.packets_delivered,
            "avg_latency": self.avg_latency,
            "latency_stddev": self.latency_stddev,
            "p99_latency": self.latency_percentile(99),
            "avg_hops": self.avg_hops,
            "avg_energy_pj": self.avg_energy_pj,
            "avg_energy_onchip_pj": self.avg_energy_onchip_pj,
            "avg_energy_interface_pj": self.avg_energy_interface_pj,
            "delivered_fraction": self.delivered_fraction,
        }


class DeadlockError(RuntimeError):
    """Raised when buffered flits stop moving for too long.

    When a :class:`~repro.telemetry.forensics.ForensicsSession` is attached
    to the engine, ``bundle_path`` names the postmortem bundle written for
    this failure (``None`` otherwise).
    """

    def __init__(self, cycle: int, buffered: int, stalled_for: int) -> None:
        super().__init__(
            f"no flit movement for {stalled_for} cycles at cycle {cycle} "
            f"with {buffered} flits buffered - likely routing deadlock"
        )
        self.cycle = cycle
        self.buffered = buffered
        self.stalled_for = stalled_for
        self.bundle_path: str | None = None


class DrainTimeoutError(DeadlockError):
    """The network failed to drain within the allotted cycles.

    Carries a buffered-flit census: ``census`` maps each node still holding
    flits in its router buffers to the flit count, and ``in_flight`` counts
    flits inside link pipelines.  ``stalled_for`` is the cycles since the
    last flit movement (0 means traffic was still moving — an undersized
    deadline rather than a wedge).
    """

    def __init__(
        self,
        cycle: int,
        max_cycles: int,
        census: dict[int, int],
        in_flight: int,
        stalled_for: int,
    ) -> None:
        buffered = sum(census.values())
        hotspots = sorted(census.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        where = ", ".join(f"node {node}: {flits}" for node, flits in hotspots)
        RuntimeError.__init__(
            self,
            f"network failed to drain within {max_cycles} cycles "
            f"({buffered} flits still buffered across {len(census)} routers"
            + (f" [{where}]" if where else "")
            + f", {in_flight} in flight on links)",
        )
        self.cycle = cycle
        self.max_cycles = max_cycles
        self.census = census
        self.buffered = buffered
        self.in_flight = in_flight
        self.stalled_for = stalled_for
        self.bundle_path = None
