"""Unified observability for the simulator (see ``docs/observability.md``).

* :class:`TelemetryBus` — the single instrumentation seam: named events,
  zero-cost with no subscribers (``repro.telemetry.bus``);
* :class:`EpochMetrics` — per-epoch time-series collectors with CSV/JSON
  export (``repro.telemetry.metrics``);
* :class:`ChromeTraceBuilder` — Perfetto-loadable Chrome trace-event
  export of sampled packets and component lanes
  (``repro.telemetry.trace``);
* :class:`ProgressReporter` — live cycles/sec + in-flight + delivered
  status line for long runs (``repro.telemetry.progress``);
* :class:`TelemetryConfig` / :class:`TelemetrySession` — one-call
  attachment used by ``run_synthetic`` / ``run_trace`` and the
  ``repro simulate`` CLI (``repro.telemetry.session``).

Import note: ``repro.noc`` imports :mod:`repro.telemetry.bus` at module
load, so this package initializer must stay free of ``repro.noc`` imports;
collector submodules only reference simulator types under
``typing.TYPE_CHECKING``.
"""

from .bus import EVENT_NAMES, NULL_BUS, TelemetryBus
from .metrics import EpochMetrics, EpochSample
from .progress import ProgressReporter
from .session import TelemetryConfig, TelemetrySession
from .trace import ChromeTraceBuilder

__all__ = [
    "EVENT_NAMES",
    "NULL_BUS",
    "TelemetryBus",
    "EpochMetrics",
    "EpochSample",
    "ProgressReporter",
    "TelemetryConfig",
    "TelemetrySession",
    "ChromeTraceBuilder",
]
