"""Unified observability for the simulator (see ``docs/observability.md``).

* :class:`TelemetryBus` — the single instrumentation seam: named events,
  zero-cost with no subscribers (``repro.telemetry.bus``);
* :class:`LatencyLedger` — per-packet latency attribution with an exact
  conservation invariant, aggregate breakdowns and topology bottleneck
  tables (``repro.telemetry.attribution``);
* :class:`EpochMetrics` — per-epoch time-series collectors with CSV/JSON
  export (``repro.telemetry.metrics``);
* :class:`ChromeTraceBuilder` — Perfetto-loadable Chrome trace-event
  export of sampled packets and component lanes
  (``repro.telemetry.trace``);
* :class:`ProgressReporter` / :class:`EtaEstimator` — live cycles/sec +
  in-flight + delivered + ETA status line for long runs
  (``repro.telemetry.progress``);
* :class:`LiveFeed` — schema-versioned JSONL streaming of run lifecycle,
  progress/ETA, epoch samples and health events to
  ``runs/live/<run_id>.jsonl`` for ``repro watch``
  (``repro.telemetry.live``);
* :mod:`repro.telemetry.server` — the stdlib SSE fleet-observability
  service behind ``repro watch`` (imported lazily by the CLI);
* :class:`FlightRecorder` / :class:`HealthMonitor` /
  :class:`ForensicsSession` — bounded event ring buffer, live health
  probes and automatic postmortem bundles for wedged runs, rendered by
  ``repro postmortem`` (``repro.telemetry.forensics``);
* :class:`TelemetryConfig` / :class:`TelemetrySession` — one-call
  attachment used by ``run_synthetic`` / ``run_trace`` and the
  ``repro simulate`` CLI (``repro.telemetry.session``);
* :class:`RunDigest` — streaming platform-stable chained hash of every
  bus event, with checkpoint chains, golden-trace files and the
  three-granularity differential oracle behind ``repro diff`` /
  ``repro golden`` (``repro.telemetry.digest`` /
  ``repro.telemetry.diff``);
* :class:`HostTimeLedger` — host wall-time attribution across engine /
  router / link / PHY phases plus cProfile→speedscope folding, driven by
  ``repro profile`` (``repro.telemetry.hostprof``);
* :class:`MemLedger` — tracemalloc/``ru_maxrss`` heap observability with
  allocation sites folded to the same phase taxonomy, riding an untimed
  ``repro bench`` rep and ``repro profile --mem``
  (``repro.telemetry.memprof``);
* :func:`load_history` / :func:`analyze_history` — per-metric time
  series over the registry's bench records and the rank-based
  changepoint sentinel behind ``repro regress``
  (``repro.telemetry.history`` / ``repro.telemetry.sentinel``);
* :class:`RunStore` / :class:`RunRecord` — the append-only cross-run
  registry under ``runs/`` (``repro.telemetry.runstore``);
* :mod:`repro.telemetry.bench` / :mod:`repro.telemetry.compare` /
  :mod:`repro.telemetry.dashboard` — the ``repro bench`` perf suite,
  the noise-aware regression diff, and the static HTML dashboard
  (see ``docs/perf.md``).

Import note: ``repro.noc`` imports :mod:`repro.telemetry.bus` at module
load, so this package initializer must stay free of ``repro.noc`` imports;
collector submodules only reference simulator types under
``typing.TYPE_CHECKING``, and the bench/dashboard modules import the
simulator inside functions only.
"""

from .attribution import (
    STAGES,
    AttributionError,
    LatencyLedger,
    render_breakdown,
)
from .bench import BENCH_SCHEMA_VERSION, EventCounters, run_bench, write_bench
from .bus import EVENT_NAMES, NULL_BUS, TelemetryBus
from .compare import MetricVerdict, compare_bench, compare_records, compare_paths
from .diff import (
    DiffError,
    DiffReport,
    Diffable,
    check_golden_file,
    diff_runs,
    load_diffable,
    parse_sim_spec,
    record_golden_case,
    resimulate,
)
from .digest import (
    DIGEST_ALGO,
    DIGEST_SCHEMA_VERSION,
    GOLDEN_SCHEMA_VERSION,
    DigestError,
    RunDigest,
    digests_comparable,
    golden_files,
    golden_path,
    load_golden,
    make_golden,
    validate_digest_block,
    write_golden,
)
from .forensics import (
    FORENSICS_SCHEMA_VERSION,
    FlightRecorder,
    ForensicsConfig,
    ForensicsSession,
    HealthMonitor,
    HealthThresholds,
    capture_bundle,
    load_bundle,
    render_bundle_html,
    render_bundle_text,
    validate_bundle,
    write_bundle,
)
from .history import MetricSeries, RunHistory, SeriesPoint, load_history
from .hostprof import (
    PHASES as HOST_PHASES,  # package-level alias: avoids clashing with attribution.STAGES
    HostprofError,
    HostTimeLedger,
    render_host_table,
    validate_speedscope,
)
from .live import (
    LIVE_SCHEMA_VERSION,
    LiveFeed,
    LiveFeedError,
    feed_status,
    live_feed_path,
    read_feed,
    validate_live_event,
)
from .memprof import (
    MEM_SCHEMA_VERSION,
    MemLedger,
    MemProfError,
    render_mem_table,
    validate_mem_block,
)
from .metrics import EpochMetrics, EpochSample
from .progress import EtaEstimator, ProgressReporter, format_eta
from .runstore import (
    RUN_SCHEMA_VERSION,
    RunRecord,
    RunStore,
    RunStoreError,
    record_from_result,
)
from .sentinel import (
    SENTINEL_SCHEMA_VERSION,
    MetricReport,
    SentinelConfig,
    SentinelReport,
    analyze_history,
    detect_changepoint,
    render_sentinel,
)
from .session import TelemetryConfig, TelemetrySession
from .trace import ChromeTraceBuilder

__all__ = [
    "AttributionError",
    "BENCH_SCHEMA_VERSION",
    "DIGEST_ALGO",
    "DIGEST_SCHEMA_VERSION",
    "DiffError",
    "DiffReport",
    "Diffable",
    "DigestError",
    "EVENT_NAMES",
    "GOLDEN_SCHEMA_VERSION",
    "FORENSICS_SCHEMA_VERSION",
    "FlightRecorder",
    "ForensicsConfig",
    "ForensicsSession",
    "HealthMonitor",
    "HealthThresholds",
    "HOST_PHASES",
    "HostTimeLedger",
    "HostprofError",
    "LIVE_SCHEMA_VERSION",
    "LatencyLedger",
    "LiveFeed",
    "LiveFeedError",
    "MEM_SCHEMA_VERSION",
    "MemLedger",
    "MemProfError",
    "MetricReport",
    "MetricSeries",
    "NULL_BUS",
    "RUN_SCHEMA_VERSION",
    "SENTINEL_SCHEMA_VERSION",
    "STAGES",
    "SentinelConfig",
    "SentinelReport",
    "SeriesPoint",
    "render_breakdown",
    "TelemetryBus",
    "EpochMetrics",
    "EpochSample",
    "EtaEstimator",
    "EventCounters",
    "MetricVerdict",
    "ProgressReporter",
    "RunDigest",
    "RunHistory",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "TelemetryConfig",
    "TelemetrySession",
    "ChromeTraceBuilder",
    "analyze_history",
    "capture_bundle",
    "check_golden_file",
    "compare_bench",
    "compare_paths",
    "compare_records",
    "detect_changepoint",
    "diff_runs",
    "digests_comparable",
    "feed_status",
    "golden_files",
    "golden_path",
    "load_diffable",
    "load_golden",
    "make_golden",
    "parse_sim_spec",
    "record_golden_case",
    "resimulate",
    "validate_digest_block",
    "write_golden",
    "format_eta",
    "live_feed_path",
    "load_bundle",
    "load_history",
    "record_from_result",
    "render_bundle_html",
    "render_bundle_text",
    "render_host_table",
    "render_mem_table",
    "render_sentinel",
    "read_feed",
    "run_bench",
    "validate_bundle",
    "validate_live_event",
    "validate_mem_block",
    "validate_speedscope",
    "write_bundle",
]
