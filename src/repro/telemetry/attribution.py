"""Per-packet latency attribution (``repro simulate --latency-breakdown``).

The :class:`LatencyLedger` subscribes to the telemetry bus and decomposes
every *measured* packet's end-to-end latency into named stages — source
queueing, per-hop VC-allocation wait, credit stalls, switch
serialization, link/PHY traversal split by interface kind, ROB reorder
wait and ejection — with the invariant that **the stage cycles of a
packet sum exactly to its measured latency** (``arrive - create``).  A
violation raises :class:`AttributionError` immediately; nothing is ever
silently dropped into an "other" bucket.

How the decomposition stays exact
---------------------------------
A packet's latency is the time from creation to *tail-flit* ejection, so
the ledger follows only the tail flit.  Every bus event the tail touches
(``flit_send``, ``flit_recv``, ``phy_dispatch``, ``rob_insert``,
``rob_release``, ``packet_eject``) carries a cycle stamp, and the ledger
attributes the gap since the previous stamp to one stage — consecutive
gaps telescope to the total latency by construction.  Within a router
visit the gap is subdivided arithmetically using the per-hop
``route_compute`` / ``vc_alloc`` stamps and the counted ``credit_stall``
cycles; the subdivision sums back to the gap, so exactness survives.

Credit stalls are counted for a packet only while its tail is resident
at the stalling router — a stall observed while the tail still sits
upstream overlaps time already attributed there and would double-count.
(Those stalls still feed the per-link congestion totals below.)

On top of the per-packet ledger sit aggregate breakdowns (mean and
p50/p95/p99 per stage, overall and per traffic class / interface
profile) and a bottleneck attributor ranking links and routers by the
queueing cycles measured tails spent waiting to get onto them — the
topology congestion table of ``docs/observability.md``.

Import note: pure stdlib at module load (the telemetry package is
imported by ``repro.noc``); simulator types appear only behind
``TYPE_CHECKING`` and function-local imports.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.flit import Flit, Packet
    from repro.noc.link import Link
    from repro.noc.network import Network
    from repro.noc.router import Router

#: Attribution stages, in presentation order.  ``link_*`` names must match
#: :data:`repro.noc.link.TRAVERSAL_STAGES` (checked by the tests).
STAGES: tuple[str, ...] = (
    "source_queue",   # creation -> routing computation at the source router
    "va_wait",        # per hop: RC (or tail arrival) -> VC-allocation grant
    "credit_stall",   # post-VA cycles stalled on zero downstream credits
    "switch_wait",    # residual in-router wait: SA contention + switch serialization
    "link_onchip",    # tail traversal of on-chip wires
    "link_parallel",  # tail traversal of parallel-interface links
    "link_serial",    # tail traversal of serial-interface links (incl. SerDes)
    "phy_tx_queue",   # hetero-PHY adapter: TX FIFO wait until dispatch
    "phy_parallel",   # hetero-PHY parallel-PHY pipeline traversal
    "phy_serial",     # hetero-PHY serial-PHY pipeline traversal (incl. SerDes)
    "rob_wait",       # hetero-PHY reorder-buffer wait at the receiver
    "ejection",       # post-VA wait at the destination's ejection port
)

_IDX = {name: index for index, name in enumerate(STAGES)}
_N = len(STAGES)
_I_SOURCE = _IDX["source_queue"]
_I_VA = _IDX["va_wait"]
_I_STALL = _IDX["credit_stall"]
_I_SWITCH = _IDX["switch_wait"]
_I_TXQ = _IDX["phy_tx_queue"]
_I_PHY_P = _IDX["phy_parallel"]
_I_PHY_S = _IDX["phy_serial"]
_I_ROB = _IDX["rob_wait"]
_I_EJECT = _IDX["ejection"]

#: Interface profile of packets that never crossed an interface link.
ONCHIP_PROFILE = "onchip"


class AttributionError(RuntimeError):
    """The conservation invariant (stage sums == latency) was violated."""


class _PacketState:
    """Tail-flit tracking state of one in-flight measured packet."""

    __slots__ = (
        "t_last",      # cycle of the tail's last attributed event
        "stages",      # accumulated cycles per stage index
        "tail_node",   # router currently holding the tail (-1: in flight)
        "hops",        # tail link crossings completed (0 => source hop)
        "ctx",         # per-router hop context: node -> [rc, va, stalls].
                       # Keyed by node because the head flit can run several
                       # hops ahead of the tail, creating downstream contexts
                       # before the upstream one has been consumed.
        "phy",         # PHY carrying the tail's current hetero crossing
        "ifaces",      # interface kinds traversed (None until first one)
    )

    def __init__(self, create_cycle: int, src: int) -> None:
        self.t_last = create_cycle
        self.stages = [0] * _N
        self.tail_node = src
        self.hops = 0
        self.ctx: dict[int, list[int]] = {}
        self.phy = ""
        self.ifaces: Optional[set[str]] = None

    def add_iface(self, kind: str) -> None:
        if self.ifaces is None:
            self.ifaces = {kind}
        else:
            self.ifaces.add(kind)


class LatencyLedger:
    """Bus subscriber attributing measured packets' latency to stages.

    Parameters
    ----------
    network:
        A built network; the ledger subscribes to its telemetry bus
        immediately and :meth:`detach` restores the zero-subscriber fast
        path.
    measure_from:
        First creation cycle included in the measured population — pass
        the warm-up length so the ledger's population matches
        :class:`~repro.sim.stats.Stats`.
    """

    def __init__(self, network: "Network", *, measure_from: int = 0) -> None:
        self._network = network
        self.measure_from = measure_from
        self._live: dict[int, _PacketState] = {}
        # Completed packets: (msg_class, interface profile, stage cycles, total).
        self._packets: list[tuple[str, str, tuple[int, ...], int]] = []
        self._totals = [0] * _N
        self.total_cycles = 0
        # link index -> [attributed queueing cycles, raw stall cycles, tails]
        self._link_acc: dict[int, list[int]] = {}
        # router node -> [attributed queueing cycles, tails]
        self._router_acc: dict[int, list[int]] = {}
        bus = network.telemetry
        self._subscriptions = [
            (name, bus.subscribe(name, handler))
            for name, handler in (
                ("packet_inject", self._on_inject),
                ("route_compute", self._on_route_compute),
                ("vc_alloc", self._on_vc_alloc),
                ("credit_stall", self._on_credit_stall),
                ("flit_send", self._on_flit_send),
                ("flit_recv", self._on_flit_recv),
                ("phy_dispatch", self._on_phy_dispatch),
                ("rob_insert", self._on_rob_insert),
                ("rob_release", self._on_rob_release),
                ("packet_eject", self._on_eject),
            )
        ]

    # -- lifecycle ----------------------------------------------------------
    def detach(self) -> None:
        """Unsubscribe every handler (idempotent)."""
        bus = self._network.telemetry
        for name, handler in self._subscriptions:
            bus.unsubscribe(name, handler)
        self._subscriptions = []

    @property
    def packets(self) -> int:
        """Measured packets fully attributed so far."""
        return len(self._packets)

    @property
    def in_flight(self) -> int:
        """Measured packets currently tracked but not yet ejected."""
        return len(self._live)

    # -- event handlers -----------------------------------------------------
    def _on_inject(self, network: "Network", packet: "Packet") -> None:
        if packet.create_cycle < self.measure_from:
            return
        self._live[packet.pid] = _PacketState(packet.create_cycle, packet.src)

    def _on_route_compute(
        self, router: "Router", packet: "Packet", in_port: int, in_vc: int, now: int
    ) -> None:
        st = self._live.get(packet.pid)
        if st is None:
            return
        st.ctx[router.node] = [now, -1, 0]

    def _on_vc_alloc(
        self,
        router: "Router",
        packet: "Packet",
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        now: int,
    ) -> None:
        st = self._live.get(packet.pid)
        if st is None:
            return
        ctx = st.ctx.get(router.node)
        if ctx is not None:
            ctx[1] = now

    def _on_credit_stall(
        self, router: "Router", out_port: int, vc: int, now: int
    ) -> None:
        out = router.outputs[out_port]
        link = out.link
        if link is not None:
            acc = self._link_acc.get(link.index)
            if acc is None:
                acc = self._link_acc[link.index] = [0, 0, 0]
            acc[1] += 1
        ivc = out.vc_owner[vc]
        if ivc is None or not ivc.queue:
            return
        st = self._live.get(ivc.queue[0].packet.pid)
        if st is None or st.tail_node != router.node:
            # Only tail-resident stalls are charged to the packet; earlier
            # ones overlap time attributed at the tail's upstream location.
            return
        ctx = st.ctx.get(router.node)
        if ctx is not None:
            ctx[2] += 1

    def _on_flit_send(
        self, router: "Router", flit: "Flit", out_port: int, out_vc: int, now: int
    ) -> None:
        if not flit.is_tail:
            return
        st = self._live.get(flit.packet.pid)
        if st is None:
            return
        gap = now - st.t_last
        stages = st.stages
        ctx = st.ctx.pop(router.node, None)
        if ctx is not None:
            rc, va, stall_count = ctx
            if st.hops == 0:
                src_q = min(gap, max(0, rc - st.t_last))
                va_start = rc
            else:
                src_q = 0
                va_start = st.t_last
            va_end = va if va >= 0 else va_start
            va_wait = min(gap - src_q, max(0, va_end - va_start))
            post = gap - src_q - va_wait
            stalls = min(stall_count, post)
            residual = post - stalls
            stages[_I_SOURCE] += src_q
            stages[_I_VA] += va_wait
            stages[_I_STALL] += stalls
        else:  # pragma: no cover - defensive: send without a hop context
            va_wait = stalls = 0
            residual = gap
        if out_port == 0:  # Router.EJECT_PORT
            stages[_I_EJECT] += residual
        else:
            stages[_I_SWITCH] += residual
        queued = va_wait + stalls + residual
        if queued:
            racc = self._router_acc.get(router.node)
            if racc is None:
                racc = self._router_acc[router.node] = [0, 0]
            racc[0] += queued
            racc[1] += 1
            link = router.outputs[out_port].link
            if link is not None:
                acc = self._link_acc.get(link.index)
                if acc is None:
                    acc = self._link_acc[link.index] = [0, 0, 0]
                acc[0] += queued
                acc[2] += 1
        st.t_last = now

    def _on_flit_recv(
        self, router: "Router", port: int, vc: int, flit: "Flit", now: int
    ) -> None:
        if not flit.is_tail:
            return
        st = self._live.get(flit.packet.pid)
        if st is None:
            return
        gap = now - st.t_last
        link = router.inputs[port].link
        stage = link.traversal_stage
        if stage is None:
            # Hetero-PHY: rob_release advanced t_last this same cycle, so
            # the gap is zero; any drift would mean the ordering contract
            # of HeteroPhyLink._receive broke — keep it visible in rob_wait.
            st.stages[_I_ROB] += gap
        else:
            st.stages[_IDX[stage]] += gap
            if link.spec.is_interface:
                st.add_iface(link.spec.kind.value)
        st.t_last = now
        st.tail_node = router.node
        st.hops += 1

    def _on_phy_dispatch(
        self, link: "Link", flit: "Flit", vc: int, phy: str, now: int
    ) -> None:
        if not flit.is_tail:
            return
        st = self._live.get(flit.packet.pid)
        if st is None:
            return
        gap = now - st.t_last
        st.stages[_I_TXQ] += gap
        st.t_last = now
        st.phy = phy
        st.tail_node = -1
        st.add_iface(link.spec.kind.value)
        if gap:
            acc = self._link_acc.get(link.index)
            if acc is None:
                acc = self._link_acc[link.index] = [0, 0, 0]
            acc[0] += gap

    def _on_rob_insert(self, link: "Link", flit: "Flit", vc: int, now: int) -> None:
        if not flit.is_tail:
            return
        st = self._live.get(flit.packet.pid)
        if st is None:
            return
        gap = now - st.t_last
        st.stages[_I_PHY_S if st.phy == "S" else _I_PHY_P] += gap
        st.t_last = now

    def _on_rob_release(self, link: "Link", flit: "Flit", vc: int, now: int) -> None:
        if not flit.is_tail:
            return
        st = self._live.get(flit.packet.pid)
        if st is None:
            return
        gap = now - st.t_last
        st.stages[_I_ROB] += gap
        st.t_last = now
        if gap:
            acc = self._link_acc.get(link.index)
            if acc is None:
                acc = self._link_acc[link.index] = [0, 0, 0]
            acc[0] += gap

    def _on_eject(self, router: "Router", packet: "Packet", now: int) -> None:
        st = self._live.pop(packet.pid, None)
        if st is None:
            return
        if st.t_last != now:
            raise AttributionError(
                f"packet {packet.pid}: tail timeline ends at cycle {st.t_last} "
                f"but ejection happened at {now}"
            )
        total = now - packet.create_cycle
        attributed = sum(st.stages)
        if attributed != total:
            detail = ", ".join(
                f"{name}={cycles}"
                for name, cycles in zip(STAGES, st.stages)
                if cycles
            )
            raise AttributionError(
                f"packet {packet.pid}: attributed {attributed} cycles but "
                f"measured latency is {total} ({detail})"
            )
        profile = "+".join(sorted(st.ifaces)) if st.ifaces else ONCHIP_PROFILE
        self._packets.append(
            (str(packet.msg_class), profile, tuple(st.stages), total)
        )
        totals = self._totals
        for index, cycles in enumerate(st.stages):
            totals[index] += cycles
        self.total_cycles += total

    # -- aggregates ---------------------------------------------------------
    def stage_totals(self) -> dict[str, int]:
        """Total attributed cycles per stage over all completed packets."""
        return dict(zip(STAGES, self._totals))

    def _stage_block(
        self, rows: Sequence[tuple[str, str, tuple[int, ...], int]]
    ) -> dict[str, dict[str, float]]:
        from repro.sim.stats import percentile

        block: dict[str, dict[str, float]] = {}
        group_total = sum(row[3] for row in rows) or 1
        for index, name in enumerate(STAGES):
            values = sorted(row[2][index] for row in rows)
            total = sum(values)
            count = len(values) or 1
            block[name] = {
                "total": total,
                "share": total / group_total,
                "mean": total / count,
                "p50": percentile(values, 50, presorted=True),
                "p95": percentile(values, 95, presorted=True),
                "p99": percentile(values, 99, presorted=True),
            }
        return block

    def bottleneck_links(self, top: int = 5) -> list[dict[str, Any]]:
        """Links ranked by queueing cycles measured tails spent reaching them.

        ``queue_cycles`` counts VA wait + credit stalls + switch wait at
        the upstream router (plus adapter TX-FIFO and ROB wait for
        hetero-PHY links); ``stall_cycles`` counts every raw
        ``credit_stall`` event toward the link, tail-resident or not.
        """
        links = self._network.links
        ranked = sorted(
            self._link_acc.items(), key=lambda item: (-item[1][0], item[0])
        )
        table = []
        for index, (queue_cycles, stall_cycles, tails) in ranked[: top or None]:
            spec = links[index].spec
            table.append(
                {
                    "link": index,
                    "src": spec.src,
                    "dst": spec.dst,
                    "kind": spec.kind.value,
                    "queue_cycles": queue_cycles,
                    "stall_cycles": stall_cycles,
                    "packets": tails,
                }
            )
        return table

    def bottleneck_routers(self, top: int = 5) -> list[dict[str, Any]]:
        """Routers ranked by attributed in-router queueing cycles."""
        ranked = sorted(
            self._router_acc.items(), key=lambda item: (-item[1][0], item[0])
        )
        return [
            {"node": node, "queue_cycles": acc[0], "packets": acc[1]}
            for node, acc in ranked[: top or None]
        ]

    def summary(self, *, top: int = 5) -> dict[str, Any]:
        """JSON-able breakdown: per-stage stats overall and per group.

        Keys: ``packets``, ``avg_latency``, ``total_cycles``, ``stages``,
        ``by_class``, ``by_interface``, ``bottleneck_links``,
        ``bottleneck_routers``.
        """
        rows = self._packets
        by_class: dict[str, list] = {}
        by_iface: dict[str, list] = {}
        for row in rows:
            by_class.setdefault(row[0], []).append(row)
            by_iface.setdefault(row[1], []).append(row)
        return {
            "packets": len(rows),
            "avg_latency": (self.total_cycles / len(rows)) if rows else 0.0,
            "total_cycles": self.total_cycles,
            "stages": self._stage_block(rows),
            "by_class": {
                name: {"packets": len(group), "stages": self._stage_block(group)}
                for name, group in sorted(by_class.items())
            },
            "by_interface": {
                name: {"packets": len(group), "stages": self._stage_block(group)}
                for name, group in sorted(by_iface.items())
            },
            "bottleneck_links": self.bottleneck_links(top),
            "bottleneck_routers": self.bottleneck_routers(top),
        }

    def record_summary(self, *, top: int = 5) -> dict[str, Any]:
        """The compact subset persisted into a ``RunRecord``."""
        full = self.summary(top=top)
        return {
            key: full[key]
            for key in ("packets", "avg_latency", "stages", "bottleneck_links")
        }

    # -- export -------------------------------------------------------------
    def write_csv(self, path: str | Path) -> Path:
        """Write per-stage stats (scopes: all / class:X / iface:Y) as CSV."""
        path = Path(path)
        if path.parent != Path():
            path.parent.mkdir(parents=True, exist_ok=True)
        summary = self.summary(top=0)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["scope", "packets", "stage", "total_cycles", "share",
                 "mean", "p50", "p95", "p99"]
            )

            def rows_for(scope: str, packets: int, block: dict) -> None:
                for name in STAGES:
                    cell = block[name]
                    writer.writerow(
                        [scope, packets, name, cell["total"],
                         f"{cell['share']:.6f}", f"{cell['mean']:.4f}",
                         cell["p50"], cell["p95"], cell["p99"]]
                    )

            rows_for("all", summary["packets"], summary["stages"])
            for name, group in summary["by_class"].items():
                rows_for(f"class:{name}", group["packets"], group["stages"])
            for name, group in summary["by_interface"].items():
                rows_for(f"iface:{name}", group["packets"], group["stages"])
        return path


def render_breakdown(summary: dict[str, Any], *, show_zero: bool = False) -> str:
    """Text tables for one :meth:`LatencyLedger.summary` (CLI output)."""
    lines = [
        f"latency breakdown ({summary['packets']} packets, "
        f"avg {summary['avg_latency']:.1f} cycles)"
    ]
    lines.append(
        f"{'stage':<14s} {'total':>12s} {'share':>7s} {'mean':>9s} "
        f"{'p50':>7s} {'p95':>7s} {'p99':>7s}"
    )
    for name in STAGES:
        cell = summary["stages"][name]
        if not show_zero and not cell["total"]:
            continue
        lines.append(
            f"{name:<14s} {cell['total']:>12,.0f} {cell['share']:>6.1%} "
            f"{cell['mean']:>9.2f} {cell['p50']:>7.0f} {cell['p95']:>7.0f} "
            f"{cell['p99']:>7.0f}"
        )
    links = summary.get("bottleneck_links") or []
    if links:
        lines.append("")
        lines.append("top bottleneck links (queueing cycles of measured tails)")
        lines.append(
            f"{'link':>5s} {'route':>12s} {'kind':>10s} {'queue_cyc':>10s} "
            f"{'stall_cyc':>10s} {'packets':>8s}"
        )
        for entry in links:
            route = f"{entry['src']}->{entry['dst']}"
            lines.append(
                f"{entry['link']:>5d} {route:>12s} {entry['kind']:>10s} "
                f"{entry['queue_cycles']:>10,d} {entry['stall_cycles']:>10,d} "
                f"{entry['packets']:>8,d}"
            )
    routers = summary.get("bottleneck_routers") or []
    if routers:
        lines.append("")
        lines.append("top bottleneck routers")
        lines.append(f"{'node':>5s} {'queue_cyc':>10s} {'packets':>8s}")
        for entry in routers:
            lines.append(
                f"{entry['node']:>5d} {entry['queue_cycles']:>10,d} "
                f"{entry['packets']:>8,d}"
            )
    return "\n".join(lines)
