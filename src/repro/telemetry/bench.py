"""Standardized simulator performance suite (``repro bench``).

Runs a small canon of configurations drawn from the paper's evaluation —
the Fig 11 hetero-PHY torus, the Fig 14 hetero-channel system and the
Table 3 parallel-mesh baseline — ``reps`` times each (plus one discarded
warm-up repetition), and writes a schema-versioned ``BENCH_<n>.json``
with median/IQR wall time and simulated cycles per second, the run's
headline statistics, and exact hot-path event counts collected through
the telemetry bus.  ``repro compare`` diffs two such files with a
noise-aware threshold; CI runs the suite on every push (see
``docs/perf.md``).

Timing repetitions run with **zero** bus subscribers (the measured number
is the uninstrumented simulator); event counts come from one extra,
untimed, fully instrumented repetition.

Import note: simulator modules are imported inside functions only — this
module is imported by the ``repro.telemetry`` package machinery and must
not pull ``repro.noc`` in at module load.
"""

from __future__ import annotations

import json
import re
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from .bus import EVENT_NAMES
from .runstore import git_revision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

#: Version of the ``BENCH_<n>.json`` schema.
BENCH_SCHEMA_VERSION = 1

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

#: Simulation horizons per scale: (cycles, warm-up) — mirrors
#: ``repro.exps.common.HORIZONS`` without importing the simulator.
_HORIZONS = {
    "tiny": (2_000, 400),
    "small": (6_000, 1_000),
    "paper": (100_000, 10_000),
}


@dataclass(frozen=True)
class BenchCase:
    """One canonical configuration of the perf suite."""

    name: str
    family: str
    chiplets: tuple[int, int]
    nodes: tuple[int, int]
    pattern: str
    rate: float


#: The canonical suite: one representative per headline artifact.
CASES: tuple[BenchCase, ...] = (
    BenchCase("fig11_hetero_phy", "hetero_phy_torus", (2, 2), (4, 4), "uniform", 0.15),
    BenchCase("fig14_hetero_channel", "hetero_channel", (2, 2), (3, 3), "uniform", 0.15),
    BenchCase("table3_parallel_mesh", "parallel_mesh", (4, 4), (2, 2), "uniform", 0.10),
)

CASE_NAMES: tuple[str, ...] = tuple(case.name for case in CASES)


class EventCounters:
    """Counts every telemetry-bus event by name (hot-path census)."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.counts: dict[str, int] = dict.fromkeys(EVENT_NAMES, 0)
        self._callbacks: dict[str, Callable[..., None]] = {}
        bus = network.telemetry
        for name in EVENT_NAMES:
            callback = self._make_counter(name)
            self._callbacks[name] = callback
            bus.subscribe(name, callback)

    def _make_counter(self, name: str) -> Callable[..., None]:
        counts = self.counts

        def on_event(*_args: Any) -> None:
            counts[name] += 1

        return on_event

    def detach(self) -> None:
        bus = self.network.telemetry
        for name, callback in self._callbacks.items():
            bus.unsubscribe(name, callback)
        self._callbacks.clear()

    def nonzero(self) -> dict[str, int]:
        return {name: count for name, count in self.counts.items() if count}


def _median_iqr(samples: Sequence[float]) -> tuple[float, float]:
    if not samples:
        return float("nan"), float("nan")
    if len(samples) == 1:
        return float(samples[0]), 0.0
    quartiles = statistics.quantiles(samples, n=4, method="inclusive")
    return float(statistics.median(samples)), float(quartiles[2] - quartiles[0])


def _run_case(
    case: BenchCase, scale: str, reps: int, seed: int, host_stride: int, mem_top: int
) -> dict[str, Any]:
    from repro.sim.build import build_network
    from repro.sim.config import SimConfig
    from repro.sim.engine import Engine
    from repro.sim.experiment import run_synthetic
    from repro.sim.stats import Stats
    from repro.topology.grid import ChipletGrid
    from repro.topology.system import build_system
    from repro.traffic.injection import SyntheticWorkload
    from repro.traffic.patterns import make_pattern

    from .session import TelemetryConfig

    cycles, warmup = _HORIZONS[scale]
    grid = ChipletGrid(case.chiplets[0], case.chiplets[1], case.nodes[0], case.nodes[1])
    config = SimConfig().replace(sim_cycles=cycles, warmup_cycles=warmup)
    spec = build_system(case.family, grid, config)

    # Timing repetitions: zero subscribers; the first rep warms caches and
    # is discarded.
    walls: list[float] = []
    result = None
    for rep in range(reps + 1):
        result = run_synthetic(spec, case.pattern, case.rate, seed=seed)
        if rep > 0:
            walls.append(result.wall_seconds)
    assert result is not None
    cps = [cycles / wall for wall in walls if wall > 0]

    # One extra instrumented repetition for the hot-path event census
    # (untimed: the counters themselves cost per-event dispatches).  The
    # run digest rides the same repetition, so BENCH documents carry a
    # reproducibility fingerprint without adding a timed subscriber.
    from .digest import RunDigest

    stats = Stats(measure_from=warmup)
    network = build_network(spec, stats)
    counters = EventCounters(network)
    digest = RunDigest(network)
    digest.meta = {
        "system": spec.name,
        "family": case.family,
        "chiplets": list(case.chiplets),
        "nodes": list(case.nodes),
        "pattern": case.pattern,
        "rate": case.rate,
        "seed": seed,
        "cycles": cycles,
        "warmup": warmup,
    }
    workload = SyntheticWorkload(
        make_pattern(case.pattern, grid.n_nodes),
        grid.n_nodes,
        case.rate,
        config.packet_length,
        until=cycles,
        seed=seed,
    )
    Engine(network, workload, stats).run(cycles)
    counters.detach()
    digest.detach()

    # One more untimed repetition with the host-time ledger attached: the
    # per-phase wall-time shares that tell `repro compare` *which* pipeline
    # stage a cycles/sec regression lives in (strided to keep it cheap).
    host_result = run_synthetic(
        spec,
        case.pattern,
        case.rate,
        seed=seed,
        telemetry=TelemetryConfig(
            host_time=True, host_stride=host_stride, epoch_metrics=False
        ),
    )
    host = host_result.telemetry.hostprof.record_summary()

    # And one final untimed repetition under the memory ledger (tracing
    # roughly doubles allocation cost, so it can never ride a timed rep):
    # peak/current heap plus top allocation sites folded to the same
    # phase taxonomy as the host block.
    from .memprof import MemLedger

    with MemLedger(top_n=mem_top) as mem_ledger:
        run_synthetic(spec, case.pattern, case.rate, seed=seed)
    mem = mem_ledger.record_summary()

    wall_median, wall_iqr = _median_iqr(walls)
    cps_median, cps_iqr = _median_iqr(cps)
    return {
        "family": case.family,
        "chiplets": list(case.chiplets),
        "nodes": list(case.nodes),
        "pattern": case.pattern,
        "rate": case.rate,
        "n_nodes": grid.n_nodes,
        "cycles": cycles,
        "warmup": warmup,
        "config_hash": result.config_hash,
        "wall_s": {"median": wall_median, "iqr": wall_iqr, "samples": walls},
        "cps": {"median": cps_median, "iqr": cps_iqr, "samples": cps},
        "events": counters.nonzero(),
        "digest": digest.summary(),
        "host": host,
        "mem": mem,
        "stats": {
            "avg_latency": result.avg_latency,
            "packets_delivered": result.stats.packets_delivered,
            "delivered_fraction": result.stats.delivered_fraction,
        },
    }


def run_bench(
    *,
    scale: str = "tiny",
    reps: int = 5,
    seed: int = 1,
    cases: Optional[Sequence[BenchCase]] = None,
    git_rev: Optional[str] = None,
    host_stride: int = 4,
    mem_top: int = 10,
) -> dict[str, Any]:
    """Execute the suite and return the (not yet written) bench document.

    ``host_stride`` controls the host-time ledger's sampling stride on
    the extra attribution repetition (see
    :class:`~repro.telemetry.hostprof.HostTimeLedger`); the timed
    repetitions always run unledgered.  ``mem_top`` caps the allocation
    sites kept in each case's ``mem`` block (its own untimed rep).
    """
    if scale not in _HORIZONS:
        raise ValueError(f"scale must be one of {tuple(_HORIZONS)}, got {scale!r}")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    if host_stride < 1:
        raise ValueError("host_stride must be >= 1")
    if mem_top < 1:
        raise ValueError("mem_top must be >= 1")
    from .runstore import utc_now_iso

    suite = tuple(cases) if cases is not None else CASES
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "created": utc_now_iso(),
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "scale": scale,
        "reps": reps,
        "seed": seed,
        "cases": {
            case.name: _run_case(case, scale, reps, seed, host_stride, mem_top)
            for case in suite
        },
    }


def next_bench_path(directory: str | Path = ".") -> Path:
    """The first unused ``BENCH_<n>.json`` path under ``directory``."""
    directory = Path(directory)
    taken = [
        int(match.group(1))
        for path in directory.glob("BENCH_*.json")
        if (match := _BENCH_NAME.match(path.name))
    ]
    index = max(taken) + 1 if taken else 0
    return directory / f"BENCH_{index}.json"


def write_bench(doc: dict[str, Any], directory: str | Path = ".") -> Path:
    """Write a bench document to the next free ``BENCH_<n>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = next_bench_path(directory)
    path.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return path


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and schema-check one bench file."""
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    version = doc.get("schema_version") if isinstance(doc, dict) else None
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema v{version!r} is not supported "
            f"(this build reads v{BENCH_SCHEMA_VERSION})"
        )
    return doc


def bench_files(directory: str | Path = ".") -> list[Path]:
    """All ``BENCH_<n>.json`` files under ``directory``, in index order."""
    directory = Path(directory)
    indexed = [
        (int(match.group(1)), path)
        for path in directory.glob("BENCH_*.json")
        if (match := _BENCH_NAME.match(path.name))
    ]
    return [path for _, path in sorted(indexed)]


def render_bench(doc: dict[str, Any]) -> str:
    """A plain-text summary table of one bench document."""
    lines = [
        f"bench @ {doc.get('git_rev', 'unknown')} "
        f"(scale={doc.get('scale')}, reps={doc.get('reps')}, "
        f"created {doc.get('created', '?')})",
        f"{'case':>24s} {'cyc/s med':>12s} {'cyc/s IQR':>12s} "
        f"{'wall med':>10s} {'avg_lat':>8s} {'peak heap':>10s}  {'top host phase':<16s}",
    ]
    from .memprof import fmt_bytes

    for name, case in doc.get("cases", {}).items():
        cps = case["cps"]
        top_phase = ""
        shares = (case.get("host") or {}).get("shares") or {}
        ranked = sorted(
            (
                (phase, share)
                for phase, share in shares.items()
                if isinstance(share, (int, float)) and share == share
            ),
            key=lambda item: -item[1],
        )
        if ranked:
            top_phase = f"{ranked[0][0]} {ranked[0][1]:.0%}"
        mem = case.get("mem") or {}
        peak = fmt_bytes(mem["peak_bytes"]) if "peak_bytes" in mem else "n/a"
        lines.append(
            f"{name:>24s} {cps['median']:>12,.0f} {cps['iqr']:>12,.0f} "
            f"{case['wall_s']['median']:>9.3f}s "
            f"{case['stats']['avg_latency']:>8.1f} {peak:>10s}  {top_phase:<16s}"
        )
    return "\n".join(lines)
