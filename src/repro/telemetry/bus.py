"""Unified telemetry event bus.

One :class:`TelemetryBus` per :class:`~repro.noc.network.Network` is the
single instrumentation seam of the simulator.  Every probe — the route
tracer, the invariant sanitizer, the epoch metric collectors, the trace
exporter, the progress reporter — subscribes to named events instead of
monkey-patching simulator methods, so probes compose and the hot path
stays intact.

Zero-cost contract
------------------
Each event is an attribute on the bus that is ``None`` while nobody
listens.  Emission sites are written as::

    bus = self._telemetry
    if bus.link_accept is not None:
        bus.link_accept(self, flit, vc, now)

so an uninstrumented run pays one attribute load and one ``is not None``
test per event site — measured at well under the 5% wall-clock budget
(see ``docs/observability.md``).  Subscribing rebinds the attribute to the
callback (or to a fan-out dispatcher when several callbacks are attached);
unsubscribing the last callback restores ``None``.

Event catalogue (arguments each callback receives):

=================  ===========================================================
``packet_inject``  ``(network, packet)`` — packet handed to its source router
``packet_eject``   ``(router, packet, now)`` — tail flit ejected, packet done
``route_compute``  ``(router, packet, in_port, in_vc, now)`` — routing
                   computation produced the packet's candidate outputs here
``vc_alloc``       ``(router, packet, in_port, in_vc, out_port, out_vc, now)``
                   — VC allocation granted the packet an output VC
``flit_send``      ``(router, flit, out_port, out_vc, now)`` — switch traversal
``flit_recv``      ``(router, port, vc, flit, now)`` — flit entered an input VC
``link_accept``    ``(link, flit, vc, now)`` — flit entered a link at the TX
``credit_return``  ``(link, vc, now)`` — a buffer slot credit left downstream
``credit_stall``   ``(router, out_port, vc, now)`` — an active VC had a flit
                   ready but zero downstream credits this cycle
``phy_dispatch``   ``(link, flit, vc, phy, now)`` — hetero-PHY TX dispatched a
                   flit on ``phy`` (``"P"`` parallel or ``"S"`` serial, the
                   dispatch-policy vocabulary of ``repro.core.scheduling``)
``rob_insert``     ``(link, flit, vc, now)`` — flit entered the reorder buffer
``rob_release``    ``(link, flit, vc, now)`` — flit released in order to RX
``cycle_end``      ``(network, now)`` — the network finished stepping ``now``
=================  ===========================================================

Ordering guarantees
-------------------
Two properties every collector may rely on (the latency ledger does):

* **Event order is emission order** and emission cycles never decrease:
  within one cycle, links step before routers and ``cycle_end`` fires
  last (see :meth:`repro.noc.network.Network.step`).
* **Subscriber order is subscription order.**  With several callbacks on
  one event, emission fans out over a tuple snapshot in the order the
  callbacks subscribed; attaching or detaching *other* subscribers (a
  progress reporter, a tracer) never reorders events relative to each
  other or changes what an existing subscriber observes.  Callbacks run
  synchronously and must not mutate simulator state.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: All event names, in catalogue order.
EVENT_NAMES: tuple[str, ...] = (
    "packet_inject",
    "packet_eject",
    "route_compute",
    "vc_alloc",
    "flit_send",
    "flit_recv",
    "link_accept",
    "credit_return",
    "credit_stall",
    "phy_dispatch",
    "rob_insert",
    "rob_release",
    "cycle_end",
)

Callback = Callable[..., None]


class TelemetryBus:
    """Publish/subscribe hub for simulator instrumentation events."""

    __slots__ = (*EVENT_NAMES, "_subscribers")

    packet_inject: Optional[Callback]
    packet_eject: Optional[Callback]
    route_compute: Optional[Callback]
    vc_alloc: Optional[Callback]
    flit_send: Optional[Callback]
    flit_recv: Optional[Callback]
    link_accept: Optional[Callback]
    credit_return: Optional[Callback]
    credit_stall: Optional[Callback]
    phy_dispatch: Optional[Callback]
    rob_insert: Optional[Callback]
    rob_release: Optional[Callback]
    cycle_end: Optional[Callback]

    def __init__(self) -> None:
        for name in EVENT_NAMES:
            setattr(self, name, None)
        self._subscribers: dict[str, list[Callback]] = {name: [] for name in EVENT_NAMES}

    # -- subscription management -------------------------------------------
    def subscribe(self, event: str, callback: Callback) -> Callback:
        """Attach ``callback`` to ``event``; returns the callback."""
        subscribers = self._subscribers_for(event)
        subscribers.append(callback)
        self._rebind(event)
        return callback

    def unsubscribe(self, event: str, callback: Callback) -> None:
        """Detach one previously subscribed callback (no-op if absent)."""
        subscribers = self._subscribers_for(event)
        try:
            subscribers.remove(callback)
        except ValueError:
            return
        self._rebind(event)

    def active(self, event: str) -> bool:
        """True when at least one subscriber listens to ``event``."""
        return bool(self._subscribers_for(event))

    def subscriber_count(self, event: str) -> int:
        return len(self._subscribers_for(event))

    def clear(self) -> None:
        """Drop every subscription (all events go back to zero-cost)."""
        for name in EVENT_NAMES:
            self._subscribers[name].clear()
            setattr(self, name, None)

    # -- internals ----------------------------------------------------------
    def _subscribers_for(self, event: str) -> list[Callback]:
        try:
            return self._subscribers[event]
        except KeyError:
            raise ValueError(
                f"unknown telemetry event {event!r}; known events: "
                + ", ".join(EVENT_NAMES)
            ) from None

    def _rebind(self, event: str) -> None:
        subscribers = self._subscribers[event]
        if not subscribers:
            setattr(self, event, None)
        elif len(subscribers) == 1:
            setattr(self, event, subscribers[0])
        else:
            # Fan-out closure over a snapshot: subscribing mid-dispatch
            # never mutates the tuple an emission is iterating.
            targets = tuple(subscribers)

            def dispatch(*args: Any, _targets: tuple[Callback, ...] = targets) -> None:
                for target in _targets:
                    target(*args)

            setattr(self, event, dispatch)


class _InertBus(TelemetryBus):
    """Placeholder bus for links not yet attached to a network.

    Emission through it is a no-op (every hook is ``None``); subscribing is
    an error, because events from the object would flow to the network's
    real bus after :meth:`~repro.noc.link.Link.attach`.
    """

    __slots__ = ()

    def subscribe(self, event: str, callback: Callback) -> Callback:
        raise RuntimeError(
            "cannot subscribe to an unattached component's inert bus; "
            "subscribe to network.telemetry instead"
        )


#: Shared inert bus used as the pre-attach default.
NULL_BUS = _InertBus()
