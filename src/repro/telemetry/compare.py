"""Noise-aware comparison of bench files and run records (``repro compare``).

Simulator throughput jitters run to run, so a naive A/B diff flags noise
as regressions.  Every metric is judged against a threshold of

    ``max(rel_floor * |baseline|, k * IQR)``

where the IQR comes from the bench repetitions (zero for single run
records).  A metric moves past the threshold in the wrong direction →
``regressed``; in the right direction → ``improved``; otherwise
``noise``.  ``repro compare`` prints one verdict per metric and exits
non-zero only when ``--strict`` is given *and* at least one (gated)
metric regressed — without ``--strict`` it always exits 0, which is the
warn-only CI mode of ``docs/perf.md``.

Given more than two operands, ``repro compare`` chains them in the
given order (oldest first) and renders one table of adjacent-step
verdicts; ``--json PATH`` writes the verdicts machine-readably.

Pure stdlib; knows nothing about the simulator.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

from .bench import load_bench
from .runstore import RunRecord, RunStore, RunStoreError

#: Default relative floor under which a delta is noise regardless of IQR.
DEFAULT_REL_FLOOR = 0.05
#: Default IQR multiplier of the noise threshold.
DEFAULT_IQR_K = 1.5
#: Relative floor for per-phase host-time metrics.  A single strided
#: attribution repetition backs them (no IQR), and small phases jitter
#: hard, so only large per-phase movements are signal.
HOST_REL_FLOOR = 0.25
#: Host phases whose ns/cycle is below this fraction of the total are
#: skipped by :func:`compare_bench` — a 0.5% phase tripling is noise in
#: absolute terms but would read as a 200% regression.
HOST_MIN_SHARE = 0.02
#: Relative floor for peak-heap comparisons.  A single untimed tracing
#: repetition backs the ``mem`` block (no IQR) and allocator behaviour
#: shifts a few percent run to run, so only double-digit movements are
#: signal.
MEM_REL_FLOOR = 0.10


@dataclass
class MetricVerdict:
    """The comparison outcome for one metric of one case."""

    case: str
    metric: str
    a: float
    b: float
    threshold: float
    higher_is_better: bool
    #: ``"improved"``, ``"regressed"``, ``"noise"`` or ``"n/a"``.
    verdict: str

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel_delta(self) -> float:
        if self.a == 0 or math.isnan(self.a) or math.isnan(self.b):
            return math.nan
        return (self.b - self.a) / abs(self.a)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for ``repro compare --json`` (NaN → null)."""

        def num(value: float) -> Optional[float]:
            return None if math.isnan(value) else value

        return {
            "case": self.case,
            "metric": self.metric,
            "a": num(self.a),
            "b": num(self.b),
            "threshold": num(self.threshold),
            "higher_is_better": self.higher_is_better,
            "rel_delta": num(self.rel_delta),
            "verdict": self.verdict,
        }


def classify(
    case: str,
    metric: str,
    a: float,
    b: float,
    *,
    higher_is_better: bool,
    iqr: float = 0.0,
    rel_floor: float = DEFAULT_REL_FLOOR,
    k: float = DEFAULT_IQR_K,
) -> MetricVerdict:
    """Judge one metric pair against the noise threshold."""
    if math.isnan(a) or math.isnan(b):
        verdict = "n/a"
        threshold = math.nan
    else:
        threshold = max(rel_floor * abs(a), k * (iqr if not math.isnan(iqr) else 0.0))
        delta = b - a
        if abs(delta) <= threshold:
            verdict = "noise"
        elif (delta > 0) == higher_is_better:
            verdict = "improved"
        else:
            verdict = "regressed"
    return MetricVerdict(
        case=case,
        metric=metric,
        a=a,
        b=b,
        threshold=threshold,
        higher_is_better=higher_is_better,
        verdict=verdict,
    )


def compare_bench(
    a: dict[str, Any],
    b: dict[str, Any],
    *,
    rel_floor: float = DEFAULT_REL_FLOOR,
    k: float = DEFAULT_IQR_K,
) -> list[MetricVerdict]:
    """Per-case, per-metric verdicts between two bench documents.

    Cases present in only one document are skipped.  Event counts are
    deterministic for a fixed seed, so they use the relative floor alone
    (a count drift beyond it means the simulated work itself changed).
    """
    verdicts: list[MetricVerdict] = []
    cases_a = a.get("cases", {})
    cases_b = b.get("cases", {})
    for name in cases_a:
        if name not in cases_b:
            continue
        ca, cb = cases_a[name], cases_b[name]
        verdicts.append(
            classify(
                name,
                "cycles_per_second",
                ca["cps"]["median"],
                cb["cps"]["median"],
                higher_is_better=True,
                iqr=max(ca["cps"]["iqr"], cb["cps"]["iqr"]),
                rel_floor=rel_floor,
                k=k,
            )
        )
        verdicts.append(
            classify(
                name,
                "wall_seconds",
                ca["wall_s"]["median"],
                cb["wall_s"]["median"],
                higher_is_better=False,
                iqr=max(ca["wall_s"]["iqr"], cb["wall_s"]["iqr"]),
                rel_floor=rel_floor,
                k=k,
            )
        )
        events_a = ca.get("events", {})
        events_b = cb.get("events", {})
        for event in sorted(set(events_a) | set(events_b)):
            verdicts.append(
                classify(
                    name,
                    f"events.{event}",
                    float(events_a.get(event, 0)),
                    float(events_b.get(event, 0)),
                    higher_is_better=False,
                    iqr=0.0,
                    rel_floor=rel_floor,
                    k=k,
                )
            )
        verdicts.extend(_compare_host(name, ca.get("host"), cb.get("host")))
        verdicts.append(_compare_mem(name, ca.get("mem"), cb.get("mem")))
        verdicts.append(_compare_digest(name, ca.get("digest"), cb.get("digest")))
    return verdicts


def _compare_mem(case: str, ma: Optional[dict], mb: Optional[dict]) -> MetricVerdict:
    """One ``mem.peak_bytes`` verdict between two ``mem`` blocks.

    Pre-mem bench files carry no ``mem`` block — the verdict then reads
    ``n/a`` rather than failing the compare.  Lower peak heap is better;
    the wide :data:`MEM_REL_FLOOR` keeps allocator jitter out.
    """

    def peak(block: Optional[dict]) -> float:
        if isinstance(block, dict) and isinstance(block.get("peak_bytes"), (int, float)):
            return float(block["peak_bytes"])
        return math.nan

    return classify(
        case,
        "mem.peak_bytes",
        peak(ma),
        peak(mb),
        higher_is_better=False,
        iqr=0.0,
        rel_floor=MEM_REL_FLOOR,
    )


def _compare_digest(
    case: str, da: Optional[dict], db: Optional[dict]
) -> MetricVerdict:
    """One ``digest.match`` verdict between two ``digest`` blocks.

    Older bench files (pre run-digest) carry no ``digest`` block — the
    verdict then reads ``n/a`` rather than failing the compare, as do
    blocks an algorithm or horizon change made incomparable.  Matching
    final chains score 1/1 (noise); a mismatch scores 1/0 and reads
    ``regressed`` — the simulated behavior itself changed, which is what
    ``repro diff`` then localizes.
    """
    comparable = (
        isinstance(da, dict)
        and isinstance(db, dict)
        and da.get("final")
        and db.get("final")
    )
    if comparable:
        from .digest import digests_comparable

        comparable = digests_comparable(da, db) is None  # type: ignore[arg-type]
    if not comparable:
        a = b = math.nan
    else:
        assert isinstance(da, dict) and isinstance(db, dict)
        a = 1.0
        b = 1.0 if da["final"] == db["final"] else 0.0
    return classify(
        case, "digest.match", a, b, higher_is_better=True, iqr=0.0, rel_floor=0.0
    )


def _compare_host(
    case: str, ha: Optional[dict], hb: Optional[dict]
) -> list[MetricVerdict]:
    """Per-phase ns/cycle verdicts between two ``host`` blocks.

    Older bench files (pre host-time ledger) carry no ``host`` block —
    every phase then reads ``n/a`` rather than failing the compare.
    Lower ns/cycle is better; the wide :data:`HOST_REL_FLOOR` and the
    :data:`HOST_MIN_SHARE` cut keep single-repetition jitter out of the
    verdict column so a named phase only flags on a real slowdown.
    """
    npc_a = (ha or {}).get("ns_per_cycle") or {}
    npc_b = (hb or {}).get("ns_per_cycle") or {}

    def total(npc: dict) -> float:
        return sum(v for v in npc.values() if isinstance(v, (int, float)) and v == v)

    total_a, total_b = total(npc_a), total(npc_b)
    verdicts = []
    for phase in sorted(set(npc_a) | set(npc_b)):
        a = float(npc_a.get(phase, math.nan))
        b = float(npc_b.get(phase, math.nan))
        share_a = a / total_a if total_a and a == a else 0.0
        share_b = b / total_b if total_b and b == b else 0.0
        if max(share_a, share_b) < HOST_MIN_SHARE:
            continue
        verdicts.append(
            classify(
                case,
                f"host.{phase}",
                a,
                b,
                higher_is_better=False,
                iqr=0.0,
                rel_floor=HOST_REL_FLOOR,
            )
        )
    return verdicts


#: Run-record metrics compared by :func:`compare_records`.
_RECORD_METRICS: tuple[tuple[str, bool], ...] = (
    ("cycles_per_second", True),
    ("wall_seconds", False),
    ("stats.avg_latency", False),
    ("stats.delivered_fraction", True),
    ("stats.avg_energy_pj", False),
)


def _record_metric(record: RunRecord, dotted: str) -> float:
    if dotted.startswith("stats."):
        value = record.stats.get(dotted[len("stats."):], math.nan)
    else:
        value = getattr(record, dotted, math.nan)
    try:
        return float(value)
    except (TypeError, ValueError):
        return math.nan


def compare_records(
    a: RunRecord,
    b: RunRecord,
    *,
    rel_floor: float = DEFAULT_REL_FLOOR,
    k: float = DEFAULT_IQR_K,
) -> list[MetricVerdict]:
    """Verdicts between two run records (no repetition IQR available)."""
    case = a.label or a.workload or "run"
    return [
        classify(
            case,
            metric,
            _record_metric(a, metric),
            _record_metric(b, metric),
            higher_is_better=higher_is_better,
            iqr=0.0,
            rel_floor=rel_floor,
            k=k,
        )
        for metric, higher_is_better in _RECORD_METRICS
    ]


def load_comparable(path: str | Path) -> tuple[str, Any]:
    """Load ``path`` as ``("bench", doc)`` or ``("record", RunRecord)``.

    Accepts a ``BENCH_<n>.json`` file, a single-record JSON file, or a
    ``runs.jsonl`` store (the latest record is used).
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no such file: {path}")
    if path.suffix == ".jsonl":
        latest = RunStore(path.parent).latest(1)
        if not latest:
            raise RunStoreError(f"{path}: run store holds no readable records")
        return "record", latest[0]
    doc = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(doc, dict) and "cases" in doc:
        return "bench", load_bench(path)
    if isinstance(doc, dict) and "stats" in doc:
        return "record", RunRecord.from_dict(doc)
    raise ValueError(f"{path}: neither a bench document nor a run record")


def compare_paths(
    path_a: str | Path,
    path_b: str | Path,
    *,
    rel_floor: float = DEFAULT_REL_FLOOR,
    k: float = DEFAULT_IQR_K,
) -> list[MetricVerdict]:
    """Compare two files of matching type (bench/bench or record/record)."""
    kind_a, a = load_comparable(path_a)
    kind_b, b = load_comparable(path_b)
    if kind_a != kind_b:
        raise ValueError(
            f"cannot compare a {kind_a} ({path_a}) against a {kind_b} ({path_b})"
        )
    if kind_a == "bench":
        return compare_bench(a, b, rel_floor=rel_floor, k=k)
    return compare_records(a, b, rel_floor=rel_floor, k=k)


def compare_chain(
    paths: Sequence[str | Path],
    *,
    rel_floor: float = DEFAULT_REL_FLOOR,
    k: float = DEFAULT_IQR_K,
) -> list[tuple[str, str, list[MetricVerdict]]]:
    """Adjacent-pair verdicts across N files given oldest → newest.

    Every operand must load as the same kind (all bench or all record);
    each returned step is ``(label_a, label_b, verdicts)`` with labels
    taken from the file names.  Two paths degenerate to one step — the
    classic A/B compare.
    """
    if len(paths) < 2:
        raise ValueError("compare_chain needs at least two paths")
    loaded = [load_comparable(path) for path in paths]
    kinds = {kind for kind, _ in loaded}
    if len(kinds) > 1:
        raise ValueError(
            f"cannot compare mixed kinds ({', '.join(sorted(kinds))}) across "
            f"{len(paths)} operands"
        )
    kind = loaded[0][0]
    steps: list[tuple[str, str, list[MetricVerdict]]] = []
    for (before_path, (_, before)), (after_path, (_, after)) in zip(
        zip(paths, loaded), zip(paths[1:], loaded[1:])
    ):
        if kind == "bench":
            verdicts = compare_bench(before, after, rel_floor=rel_floor, k=k)
        else:
            verdicts = compare_records(before, after, rel_floor=rel_floor, k=k)
        steps.append((Path(before_path).name, Path(after_path).name, verdicts))
    return steps


def render_chain(steps: Sequence[tuple[str, str, list[MetricVerdict]]]) -> str:
    """One combined table across every chained comparison step."""
    if len(steps) == 1:
        label_a, label_b, verdicts = steps[0]
        return render_comparison(verdicts, label_a=label_a, label_b=label_b)
    blocks = []
    total = 0
    for index, (label_a, label_b, verdicts) in enumerate(steps, start=1):
        total += len(regressions(verdicts))
        blocks.append(f"step {index}/{len(steps)}: {label_a} -> {label_b}")
        blocks.append(render_comparison(verdicts, label_a="before", label_b="after"))
        blocks.append("")
    blocks.append(f"chain total: {total} regression(s) across {len(steps)} step(s)")
    return "\n".join(blocks)


def chain_report(
    steps: Sequence[tuple[str, str, list[MetricVerdict]]],
    *,
    gate: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """The machine-readable ``repro compare --json`` document."""
    return {
        "kind": "compare",
        "steps": [
            {
                "a": label_a,
                "b": label_b,
                "verdicts": [v.to_dict() for v in verdicts],
                "regressions": len(regressions(verdicts, gate=gate)),
            }
            for label_a, label_b, verdicts in steps
        ],
        "regressions": sum(
            len(regressions(verdicts, gate=gate)) for _, _, verdicts in steps
        ),
    }


def regressions(
    verdicts: list[MetricVerdict],
    *,
    gate: Optional[Sequence[str]] = None,
) -> list[MetricVerdict]:
    """Regressed verdicts, optionally filtered to gated metric names.

    ``gate`` entries match a metric exactly or as a dotted prefix
    (``"events"`` gates every ``events.*`` metric).  ``None`` / empty
    gates everything — the pre-``--gate`` behaviour.
    """
    flagged = [v for v in verdicts if v.verdict == "regressed"]
    if not gate:
        return flagged
    return [
        v
        for v in flagged
        if any(v.metric == g or v.metric.startswith(g + ".") for g in gate)
    ]


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "n/a"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_comparison(
    verdicts: list[MetricVerdict], *, label_a: str = "A", label_b: str = "B"
) -> str:
    """Aligned text report of the verdict list."""
    if not verdicts:
        return "no overlapping cases/metrics to compare"
    marks = {"improved": "+", "regressed": "!", "noise": "=", "n/a": "?"}
    lines = [
        f"{'case':>24s} {'metric':>26s} {label_a:>12s} {label_b:>12s} "
        f"{'delta':>8s}  verdict"
    ]
    for v in verdicts:
        rel = v.rel_delta
        delta = "n/a" if math.isnan(rel) else f"{rel:+.1%}"
        lines.append(
            f"{v.case:>24s} {v.metric:>26s} {_fmt(v.a):>12s} {_fmt(v.b):>12s} "
            f"{delta:>8s}  {marks[v.verdict]} {v.verdict}"
        )
    worst = regressions(verdicts)
    summary = (
        f"{len(worst)} regression(s), "
        f"{sum(1 for v in verdicts if v.verdict == 'improved')} improvement(s), "
        f"{sum(1 for v in verdicts if v.verdict == 'noise')} within noise"
    )
    lines.append(summary)
    return "\n".join(lines)
