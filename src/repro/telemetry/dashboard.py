"""Static paper-figure + perf dashboard (``repro dashboard``).

Renders one self-contained HTML page — zero third-party imports, inline
SVG via :func:`repro.viz.svg_line_chart` — with:

* the Fig 11 latency-vs-load curves from ``benchmarks/results/*.csv``;
* the paper-vs-measured agreement summary (``repro report``'s text);
* the perf trajectory across every stored ``BENCH_<n>.json``;
* the latency-attribution panel (stacked per-stage bars via
  :func:`repro.viz.svg_stacked_bars` + top-bottleneck-links table) for
  runs recorded with ``--latency-breakdown``;
* the per-run health panel (anomaly flags + oldest-packet-age
  sparklines via :func:`repro.viz.svg_sparkline`) for runs recorded
  with ``--health`` or ones that captured a postmortem bundle;
* the most recent entries of the ``runs/`` registry.

The page carries its own light/dark palette as CSS custom properties
(the chart SVGs reference ``var(--series-N)`` and ink/surface roles), so
it respects ``prefers-color-scheme`` without any scripting.

The registry-backed panel builders (:func:`bench_section`,
:func:`hostperf_section`, :func:`breakdown_section`,
:func:`health_section`, :func:`determinism_section`,
:func:`runs_section`) and the page shell
(:data:`PAGE_STYLE`, :func:`render_page`) are public: the live fleet
service (:mod:`repro.telemetry.server`, ``repro watch``) renders the
same panels instead of duplicating them, so the static and live views
cannot drift apart.

Import note: simulator modules are imported inside functions only (see
the package initializer's import note).
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from .bench import bench_files, load_bench
from .runstore import RunRecord, RunStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exps.common import ExperimentResult


class DashboardError(ValueError):
    """The dashboard cannot be built (e.g. no benchmark results exist)."""


PAGE_STYLE = """
:root {
  color-scheme: light dark;
}
body.viz-root {
  --surface-1: #fcfcfb;
  --surface-2: #f4f3f1;
  --grid: #e6e4df;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  --series-5: #e87ba4;
  --series-6: #008300;
  --series-7: #4a3aa7;
  --series-8: #e34948;
  margin: 0;
  padding: 24px 32px 48px;
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
  max-width: 1080px;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --surface-1: #1a1a19;
    --surface-2: #242423;
    --grid: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
    --series-5: #d55181;
    --series-6: #008300;
    --series-7: #9085e9;
    --series-8: #e66767;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
p.meta { color: var(--text-secondary); margin: 0 0 16px; }
figure { margin: 0 0 12px; }
table { border-collapse: collapse; font-size: 13px; }
th, td { padding: 4px 10px; text-align: right; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
pre { background: var(--surface-2); padding: 12px; overflow-x: auto;
      font-size: 12px; border-radius: 6px; }
.empty { color: var(--text-secondary); font-style: italic; }
.alarm { color: var(--series-8); font-weight: 600; }
"""


def fmt_value(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return html.escape(str(value))


def _find_results_csv(results_dir: Path, artifact: str, scale: str) -> Optional[Path]:
    preferred = results_dir / f"{artifact}_{scale}.csv"
    if preferred.is_file():
        return preferred
    fallbacks = sorted(results_dir.glob(f"{artifact}_*.csv"))
    return fallbacks[0] if fallbacks else None


def _fig11_section(results_dir: Path, scale: str) -> str:
    from repro.exps.report import load_result
    from repro.viz import svg_line_chart

    path = _find_results_csv(results_dir, "fig11", scale)
    if path is None:
        return '<p class="empty">no fig11 CSV found — run the benchmark suite first.</p>'
    result = load_result(path)
    patterns = sorted(set(result.column("pattern")))
    pattern = "uniform" if "uniform" in patterns else patterns[0]
    series = []
    for network in sorted(set(result.column("network"))):
        rows = result.filtered(pattern=pattern, network=network)
        rows.sort(key=lambda row: row[result.headers.index("rate")])
        xs = [row[result.headers.index("rate")] for row in rows]
        ys = [row[result.headers.index("avg_latency")] for row in rows]
        series.append((network, xs, ys))
    chart = svg_line_chart(
        series,
        title=f"Fig 11 — avg latency vs injection rate ({pattern}, {path.name})",
        x_label="injection rate (flits/cycle/node)",
        y_label="avg latency (cycles)",
    )
    return f"<figure>{chart}</figure>" + _result_table(result, pattern)


def _result_table(result: "ExperimentResult", pattern: str) -> str:
    rows = result.filtered(pattern=pattern)
    head = "".join(f"<th>{html.escape(h)}</th>" for h in result.headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{fmt_value(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (
        "<details><summary>data table</summary>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        "</details>"
    )


def _agreement_section(results_dir: Path, scale: str) -> str:
    from repro.exps.report import summarize

    text = summarize(results_dir, scale)
    return f"<pre>{html.escape(text)}</pre>"


def bench_section(bench_dirs: list[Path]) -> str:
    from repro.viz import svg_line_chart

    docs: list[tuple[str, dict[str, Any]]] = []
    for directory in bench_dirs:
        for path in bench_files(directory):
            try:
                docs.append((path.name, load_bench(path)))
            except (ValueError, OSError):
                continue
    if not docs:
        return (
            '<p class="empty">no BENCH_*.json files found — '
            "run <code>repro bench</code> first.</p>"
        )
    case_names: list[str] = []
    for _, doc in docs:
        for name in doc.get("cases", {}):
            if name not in case_names:
                case_names.append(name)
    series = []
    for name in case_names:
        xs, ys = [], []
        for index, (_, doc) in enumerate(docs):
            case = doc.get("cases", {}).get(name)
            if case:
                xs.append(float(index))
                ys.append(case["cps"]["median"])
        if xs:
            series.append((name, xs, ys))
    if not series:
        # Bench files that parse but carry no cases would otherwise feed
        # the chart an all-empty series list and render a blank axis box.
        return (
            '<p class="empty">no bench history yet — '
            "run <code>repro bench</code> first.</p>"
        )
    chart = svg_line_chart(
        series,
        title="simulator throughput across stored bench files",
        x_label="bench file (index order)",
        y_label="cycles / second (median)",
        y_zero=True,
    )
    latest_name, latest = docs[-1]
    rows = []
    for name, case in latest.get("cases", {}).items():
        rows.append(
            "<tr>"
            f"<td>{html.escape(name)}</td>"
            f"<td>{fmt_value(case['cps']['median'])}</td>"
            f"<td>{fmt_value(case['cps']['iqr'])}</td>"
            f"<td>{fmt_value(case['wall_s']['median'])}</td>"
            f"<td>{fmt_value(case['stats']['avg_latency'])}</td>"
            "</tr>"
        )
    table = (
        f"<p class=\"meta\">latest: {html.escape(latest_name)} @ "
        f"{html.escape(str(latest.get('git_rev', 'unknown')))} "
        f"(scale={html.escape(str(latest.get('scale')))}, "
        f"reps={latest.get('reps')})</p>"
        "<table><thead><tr><th>case</th><th>cyc/s median</th><th>cyc/s IQR</th>"
        "<th>wall median (s)</th><th>avg latency</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    return f"<figure>{chart}</figure>{table}"


def hostperf_section(runs_dir: Path, max_records: int = 12) -> str:
    """Host-performance panel from the registry's ``kind="bench"`` records.

    Charts simulated cycles/second across bench history plus the latest
    run's per-phase host-time shares (``HostTimeLedger`` attribution), so
    a throughput drop and the pipeline phase that caused it sit side by
    side.
    """
    from repro.viz import svg_line_chart, svg_stacked_bars

    from .hostprof import ALL_PHASES

    store = RunStore(runs_dir)
    records = [
        record
        for record in store.load(strict=False)
        if record.kind == "bench" and record.bench
    ][-max_records:]
    if not records:
        return (
            '<p class="empty">no bench history yet — '
            "<code>repro bench</code> appends a bench record (cycles/sec "
            "and per-phase host-time shares) to the run registry.</p>"
        )
    case_names: list[str] = []
    for record in records:
        for name in record.bench:
            if name not in case_names:
                case_names.append(name)
    series = []
    for name in case_names:
        xs, ys = [], []
        for index, record in enumerate(records):
            case = record.bench.get(name) or {}
            cps = case.get("cps_median")
            if isinstance(cps, (int, float)) and cps == cps:
                xs.append(float(index))
                ys.append(float(cps))
        if xs:
            series.append((name, xs, ys))
    if not series:
        return (
            '<p class="empty">no bench history yet — the registry\'s bench '
            "records carry no cycles/sec samples.</p>"
        )
    chart = svg_line_chart(
        series,
        title="simulator throughput across registered bench runs",
        x_label="bench record (registry order)",
        y_label="cycles / second (median)",
        y_zero=True,
    )
    latest = records[-1]

    def shares_of(case: Optional[dict]) -> dict[str, float]:
        shares = ((case or {}).get("host") or {}).get("shares") or {}
        return {
            phase: float(value)
            for phase, value in shares.items()
            if isinstance(value, (int, float)) and value == value
        }

    segments = [
        phase
        for phase in ALL_PHASES
        if any(shares_of(case).get(phase) for case in latest.bench.values())
    ]
    if segments:
        bars = [
            (name, [shares_of(case).get(phase, 0.0) * 100 for phase in segments])
            for name, case in latest.bench.items()
        ]
        phase_chart = svg_stacked_bars(
            bars,
            segments,
            title="host wall-time share by pipeline phase (latest bench)",
            x_label="% of timed loop",
        )
        phase_figure = f"<figure>{phase_chart}</figure>"
    else:
        phase_figure = (
            '<p class="empty">the latest bench record carries no host-time '
            "attribution — re-run <code>repro bench</code> on this build.</p>"
        )
    meta = (
        f'<p class="meta">latest: {html.escape(latest.created)} @ '
        f"{html.escape(latest.git_rev)} ({html.escape(latest.label)}, "
        f"seed={html.escape(str(latest.seed))})</p>"
    )
    return f"<figure>{chart}</figure>{phase_figure}{meta}"


def sentinel_section(
    runs_dir: Path, bench_dirs: Optional[list[Path]] = None
) -> str:
    """Regression-sentinel panel: verdicts + annotated trajectory charts.

    Runs the changepoint detector (:mod:`repro.telemetry.sentinel`) over
    the registry's bench history and renders one throughput chart per
    case with detected changepoints as dashed marks
    (:func:`repro.viz.svg_annotated_line`), above the verdict table
    ``repro regress`` prints.  Shares the "no bench history" placeholder
    discipline with :func:`hostperf_section`.
    """
    from repro.viz import svg_annotated_line

    from .history import load_history
    from .memprof import fmt_bytes
    from .sentinel import analyze_history

    history = load_history(runs_dir, bench_dirs=bench_dirs or [])
    if not history.series:
        return (
            '<p class="empty">no bench history yet — the regression '
            "sentinel watches the registry's <code>repro bench</code> "
            "records; run the suite a few times to grow a trajectory.</p>"
        )
    report = analyze_history(history)
    by_case_cp = {
        r.case: r
        for r in report.reports
        if r.metric == "cycles_per_second" and r.changepoint is not None
    }
    figures = []
    for case in history.cases():
        series = history.get(case, "cycles_per_second")
        if series is None or series.finite_count() == 0:
            continue
        xs = [float(i) for i in range(len(series.points))]
        ys = series.values
        annotations = []
        cp_report = by_case_cp.get(case)
        if cp_report is not None and cp_report.changepoint is not None:
            annotations.append(
                (
                    float(cp_report.changepoint.index),
                    f"changepoint @ {cp_report.changepoint_key or '?'}",
                )
            )
        figures.append(
            "<figure>"
            + svg_annotated_line(
                [(case, xs, ys)],
                annotations=annotations,
                height=220,
                title=f"{case}: throughput trajectory",
                x_label="suite run (oldest first)",
                y_label="cycles / second",
                y_zero=True,
            )
            + "</figure>"
        )

    def fmt_metric(metric: str, value: float) -> str:
        if not (isinstance(value, float) and math.isfinite(value)):
            return "n/a"
        if metric == "mem.peak_bytes":
            return fmt_bytes(value)
        if metric == "digest.stable":
            return "stable" if value == 1.0 else "DIVERGED"
        return fmt_value(value)

    rows = []
    for r in report.reports:
        if r.verdict == "n/a":
            continue  # metrics this history never carried: pure noise rows
        verdict = html.escape(r.verdict)
        if r.verdict == "regressed":
            verdict = f'<span class="alarm">{verdict}</span>'
        where = html.escape(r.changepoint_key) if r.changepoint_key else "&mdash;"
        culprit = html.escape(r.culprit) if r.culprit else "&mdash;"
        rows.append(
            "<tr>"
            f"<td>{html.escape(r.case)}</td>"
            f"<td>{html.escape(r.metric)}</td>"
            f"<td>{r.finite_points}</td>"
            f"<td>{fmt_metric(r.metric, r.baseline)}</td>"
            f"<td>{fmt_metric(r.metric, r.latest)}</td>"
            f"<td>{verdict}</td>"
            f"<td>{where}</td>"
            f"<td>{culprit}</td>"
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>case</th><th>metric</th><th>runs</th>"
        "<th>baseline</th><th>latest</th><th>verdict</th>"
        "<th>changepoint</th><th>culprit</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        if rows
        else '<p class="empty">no analyzable metrics in the bench history yet.</p>'
    )
    meta = (
        f'<p class="meta">{history.runs} suite run(s) analyzed, '
        f"{len(report.regressions())} regression(s) — "
        f"<code>repro regress</code> prints this table.</p>"
    )
    return "".join(figures) + table + meta


def breakdown_section(runs_dir: Path, max_bars: int = 4) -> str:
    """Stacked per-stage latency bars + bottleneck table from the registry."""
    from repro.viz import svg_stacked_bars

    from .attribution import STAGES

    store = RunStore(runs_dir)
    records = [
        record
        for record in store.load(strict=False)
        if record.breakdown.get("stages")
    ][-max_bars:]
    if not records:
        return (
            '<p class="empty">no runs with a latency breakdown yet — '
            "record one with <code>repro simulate --latency-breakdown"
            "</code>.</p>"
        )
    # Keep only stages that contribute somewhere, in canonical order.
    segments = [
        name
        for name in STAGES
        if any(
            record.breakdown["stages"].get(name, {}).get("total")
            for record in records
        )
    ] or list(STAGES)
    bars = []
    for record in records:
        label = f"{record.label} {record.workload} · {record.created[:10]}"
        stages = record.breakdown["stages"]
        bars.append(
            (label, [stages.get(name, {}).get("mean", 0.0) for name in segments])
        )
    chart = svg_stacked_bars(
        bars,
        segments,
        title="mean cycles per packet, attributed to pipeline stages",
        x_label="cycles",
    )
    latest = records[-1]
    stage_rows = "".join(
        "<tr>"
        f"<td>{html.escape(name)}</td>"
        f"<td>{fmt_value(float(cell.get('mean', 0.0)))}</td>"
        f"<td>{fmt_value(float(cell.get('p95', 0.0)))}</td>"
        f"<td>{fmt_value(float(cell.get('p99', 0.0)))}</td>"
        f"<td>{float(cell.get('share', 0.0)):.1%}</td>"
        "</tr>"
        for name, cell in latest.breakdown["stages"].items()
        if cell.get("total")
    )
    stage_table = (
        "<details><summary>stage table (latest run)</summary>"
        "<table><thead><tr><th>stage</th><th>mean</th><th>p95</th>"
        "<th>p99</th><th>share</th></tr></thead>"
        f"<tbody>{stage_rows}</tbody></table></details>"
    )
    links = latest.breakdown.get("bottleneck_links") or []
    if links:
        link_rows = "".join(
            "<tr>"
            f"<td>{entry.get('src')}&rarr;{entry.get('dst')}</td>"
            f"<td>{html.escape(str(entry.get('kind', '')))}</td>"
            f"<td>{fmt_value(float(entry.get('queue_cycles', 0)))}</td>"
            f"<td>{fmt_value(float(entry.get('stall_cycles', 0)))}</td>"
            f"<td>{fmt_value(float(entry.get('packets', 0)))}</td>"
            "</tr>"
            for entry in links[:5]
        )
        bottlenecks = (
            f"<p class=\"meta\">top bottleneck links of "
            f"{html.escape(latest.label)} {html.escape(latest.workload)} "
            "(queueing cycles attributed to measured tails)</p>"
            "<table><thead><tr><th>link</th><th>kind</th>"
            "<th>queue cycles</th><th>stall cycles</th><th>packets</th>"
            f"</tr></thead><tbody>{link_rows}</tbody></table>"
        )
    else:
        bottlenecks = (
            '<p class="empty">no congested links recorded for the latest '
            "breakdown run.</p>"
        )
    return f"<figure>{chart}</figure>{stage_table}{bottlenecks}"


def health_section(runs_dir: Path, max_runs: int = 8) -> str:
    """Per-run health panel for records carrying forensics summaries.

    One row per run recorded with ``--health``: anomaly flags, probe
    count, max in-flight packet age, and the oldest-packet-age series as
    a sparkline.  Runs that captured a postmortem bundle link its path.
    """
    from repro.viz import svg_sparkline

    store = RunStore(runs_dir)
    records = [
        record
        for record in store.load(strict=False)
        if record.forensics.get("health") or record.forensics.get("bundle")
    ][-max_runs:]
    if not records:
        return (
            '<p class="empty">no runs with health probes yet — record one '
            "with <code>repro simulate --health</code> (a captured "
            "postmortem bundle also lands here).</p>"
        )
    rows = []
    for record in reversed(records):
        health = record.forensics.get("health") or {}
        flags = health.get("flags") or []
        flags_cell = (
            '<span class="alarm">' + html.escape(", ".join(flags)) + "</span>"
            if flags
            else "ok"
        )
        # The series is stored as (cycle, age) pairs; the sparkline only
        # plots the ages (probe spacing is uniform anyway).
        ages = [
            float(point[1]) if isinstance(point, (list, tuple)) else float(point)
            for point in health.get("oldest_age_series") or []
        ]
        spark = (
            svg_sparkline(ages, title="oldest in-flight packet age")
            if ages
            else '<span class="empty">n/a</span>'
        )
        bundle = record.forensics.get("bundle")
        bundle_cell = (
            f"<code>{html.escape(str(bundle))}</code>" if bundle else "—"
        )
        rows.append(
            "<tr>"
            f"<td>{html.escape(record.created)}</td>"
            f"<td>{html.escape(record.label)}</td>"
            f"<td>{html.escape(record.workload)}</td>"
            f"<td>{flags_cell}</td>"
            f"<td>{fmt_value(health.get('probes', 0))}</td>"
            f"<td>{fmt_value(health.get('max_oldest_age', 0))}</td>"
            f"<td>{spark}</td>"
            f"<td>{bundle_cell}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>created</th><th>label</th><th>workload</th>"
        "<th>anomalies</th><th>probes</th><th>max age</th>"
        "<th>oldest-age trend</th><th>bundle</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def determinism_section(
    runs_dir: Path,
    goldens_dir: str | Path = "benchmarks/goldens",
    max_runs: int = 8,
) -> str:
    """Determinism panel: committed golden traces + recent digested runs.

    One row per golden file (case, scale, final chain, horizon) and one
    per recent registry record that carries a digest block — the same
    fingerprints ``repro diff`` and ``repro golden check`` compare, so a
    glance shows which runs are covered by the differential oracle.
    """
    from .digest import golden_files, load_golden

    parts = []
    golden_rows = []
    for path in golden_files(goldens_dir):
        try:
            golden = load_golden(path)
        except (ValueError, OSError):
            golden_rows.append(
                "<tr>"
                f"<td>{html.escape(path.name)}</td>"
                '<td colspan="4"><span class="alarm">unreadable golden '
                "file</span></td></tr>"
            )
            continue
        digest = golden.get("digest") or {}
        golden_rows.append(
            "<tr>"
            f"<td>{html.escape(path.name)}</td>"
            f"<td>{html.escape(str(golden.get('case')))}</td>"
            f"<td>{html.escape(str(golden.get('scale')))}</td>"
            f"<td>{fmt_value(digest.get('cycles', math.nan))}</td>"
            f"<td><code>{html.escape(str(digest.get('final')))}</code></td>"
            "</tr>"
        )
    if golden_rows:
        parts.append(
            "<table><thead><tr><th>golden</th><th>case</th><th>scale</th>"
            "<th>cycles</th><th>digest chain</th></tr></thead>"
            f"<tbody>{''.join(golden_rows)}</tbody></table>"
        )
    else:
        parts.append(
            '<p class="empty">no golden traces yet — record them with '
            "<code>repro golden record</code>.</p>"
        )
    store = RunStore(runs_dir)
    digested = [
        record for record in store.load(strict=False) if record.digest
    ][-max_runs:]
    if digested:
        run_rows = "".join(
            "<tr>"
            f"<td>{html.escape(record.created)}</td>"
            f"<td>{html.escape(record.kind)}</td>"
            f"<td>{html.escape(record.label)}</td>"
            f"<td>{html.escape(record.workload)}</td>"
            f"<td>{fmt_value(record.digest.get('events_total', math.nan))}</td>"
            f"<td><code>{html.escape(str(record.digest.get('final')))}</code></td>"
            "</tr>"
            for record in reversed(digested)
        )
        parts.append(
            '<p class="meta">recent digested runs '
            "(compare any two with <code>repro diff</code>)</p>"
            "<table><thead><tr><th>created</th><th>kind</th><th>label</th>"
            "<th>workload</th><th>events</th><th>digest chain</th></tr>"
            f"</thead><tbody>{run_rows}</tbody></table>"
        )
    else:
        parts.append(
            '<p class="empty">no digested runs in the registry yet — record '
            "one with <code>repro simulate --digest</code>.</p>"
        )
    return "".join(parts)


def skipped_warning(store: RunStore) -> str:
    """Warning fragment for malformed registry lines ('' when clean).

    Meaningful after a lenient read populated :attr:`RunStore.skipped`;
    both the static dashboard and the ``repro watch`` fleet view show it.
    """
    if not store.skipped:
        return ""
    noun = "line" if store.skipped == 1 else "lines"
    return (
        f'<p class="alarm">{store.skipped} unreadable registry {noun} '
        f"skipped in <code>{html.escape(str(store.path))}</code> — "
        "inspect the file for corruption or foreign schema versions.</p>"
    )


def runs_section(runs_dir: Path, top: int) -> str:
    store = RunStore(runs_dir)
    records: list[RunRecord] = store.latest(top, strict=False)
    warning = skipped_warning(store)
    if not records:
        return warning + (
            '<p class="empty">no run records yet — every '
            "<code>repro run</code> / <code>repro simulate</code> appends "
            f"one to <code>{html.escape(str(store.path))}</code>.</p>"
        )
    rows = []
    for record in reversed(records):
        rows.append(
            "<tr>"
            f"<td>{html.escape(record.created)}</td>"
            f"<td>{html.escape(record.kind)}</td>"
            f"<td>{html.escape(record.label)}</td>"
            f"<td>{html.escape(record.workload)}</td>"
            f"<td>{html.escape(str(record.seed))}</td>"
            f"<td>{html.escape(record.git_rev)}</td>"
            f"<td>{html.escape(record.config_hash)}</td>"
            f"<td>{fmt_value(record.cycles_per_second)}</td>"
            f"<td>{fmt_value(record.stats.get('avg_latency', math.nan))}</td>"
            "</tr>"
        )
    return warning + (
        "<table><thead><tr><th>created</th><th>kind</th><th>label</th>"
        "<th>workload</th><th>seed</th><th>git</th><th>config</th>"
        "<th>cyc/s</th><th>avg latency</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def render_page(title: str, body: str, *, head_extra: str = "") -> str:
    """Wrap rendered sections in the shared HTML page shell.

    ``head_extra`` lets the live server add its ``<meta>`` hints; the
    static dashboard passes nothing and stays script-free.
    """
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{PAGE_STYLE}</style>{head_extra}</head>"
        f"<body class=\"viz-root\">{body}</body></html>\n"
    )


def build_dashboard(
    results_dir: str | Path = "benchmarks/results",
    *,
    scale: str = "tiny",
    bench_dirs: Optional[list[str | Path]] = None,
    runs_dir: str | Path = "runs",
    top_runs: int = 20,
) -> str:
    """Build the dashboard HTML.

    Raises :class:`DashboardError` (not a traceback) when
    ``results_dir`` is missing or holds no CSVs — the paper-figure
    section is the page's reason to exist.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir() or not any(results_dir.glob("*.csv")):
        raise DashboardError(
            f"no benchmark CSVs in {results_dir}/ — regenerate them with "
            "`pytest benchmarks/ --benchmark-only` (or point --results-dir "
            "at a directory that has them)"
        )
    from .runstore import git_revision, utc_now_iso

    dirs = [Path(d) for d in (bench_dirs if bench_dirs is not None else ["."])]
    sections = [
        f"<h1>repro — paper figures &amp; performance</h1>"
        f'<p class="meta">generated {html.escape(utc_now_iso())} @ '
        f"{html.escape(git_revision())} · scale {html.escape(scale)} · "
        f"results {html.escape(str(results_dir))}</p>",
        "<h2>Paper figure: Fig 11 latency-load curves</h2>",
        _fig11_section(results_dir, scale),
        "<h2>Paper-vs-measured agreement</h2>",
        _agreement_section(results_dir, scale),
        "<h2>Performance trajectory</h2>",
        bench_section(dirs),
        "<h2>Host performance</h2>",
        hostperf_section(Path(runs_dir)),
        "<h2>Regression sentinel</h2>",
        sentinel_section(Path(runs_dir), bench_dirs=dirs),
        "<h2>Latency attribution</h2>",
        breakdown_section(Path(runs_dir)),
        "<h2>Run health</h2>",
        health_section(Path(runs_dir)),
        "<h2>Determinism</h2>",
        determinism_section(Path(runs_dir)),
        "<h2>Recent runs</h2>",
        runs_section(Path(runs_dir), top_runs),
    ]
    return render_page("repro dashboard", "".join(sections))


def write_dashboard(
    out_path: str | Path,
    results_dir: str | Path = "benchmarks/results",
    **kwargs: Any,
) -> Path:
    """Build and write the dashboard; returns the written path."""
    out_path = Path(out_path)
    html_text = build_dashboard(results_dir, **kwargs)
    if out_path.parent != Path():
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(html_text, encoding="utf-8")
    return out_path
