"""Differential comparison of two runs (``repro diff A B``).

Turns "the numbers look different" into "first divergence at cycle 412"
by comparing two runs' :mod:`~repro.telemetry.digest` blocks at three
escalating granularities:

1. **Summary** — headline statistics and the per-event-kind census.  Two
   runs with equal digest chains are behaviorally identical and the diff
   stops here with exit status 0.
2. **Census** — per-event-kind count deltas plus a binary search over the
   recorded ``(cycle, chain)`` checkpoints.  Chained hashes diverge
   permanently once they diverge, so "is checkpoint *i* divergent?" is a
   monotone predicate and bisection pins the divergence to one
   checkpoint interval without any re-simulation.
3. **Cycle** — both sides are re-simulated from the digest's ``meta``
   (family, geometry, pattern, rate, seed, horizon, policy) with
   per-cycle chain capture over the divergent interval; a second
   bisection over the captured chains names the **first divergent
   cycle**, and the losing side is re-run once more with the flight
   recorder windowed on that cycle to print the event-level context.

Diffable sources (``load_diffable``): golden-trace files
(``GOLDEN_*.json``), run-registry records (a record JSON or a
``runs.jsonl`` store, optionally ``#run_id``-suffixed), and live
re-simulations described by a ``sim:`` spec string such as::

    sim:family=hetero_phy_torus,chiplets=2x2,nodes=4x4,pattern=uniform,
        rate=0.15,seed=1,cycles=2000,warmup=400

A ``perturb=CYCLE`` key injects one extra single-flit packet at that
cycle — a real behavioral perturbation the localization tests and CI's
determinism-smoke job use to prove the diff names the exact cycle.

Import note: simulator modules are imported inside functions only (see
the package initializer's import note).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional

from .digest import (
    DEFAULT_CHECKPOINT_EVERY,
    DigestError,
    RunDigest,
    digests_comparable,
    golden_path,
    load_golden,
    make_golden,
    validate_digest_block,
    write_golden,
)
from .runstore import RunRecord, RunStore, RunStoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.flit import Packet

    from .bench import BenchCase

#: Meta keys a digest must carry to be re-simulated for localization.
RESIM_KEYS = ("family", "chiplets", "nodes", "pattern", "rate", "seed", "cycles")

#: Flight-recorder retention (cycles) on the event-context re-run.
_CONTEXT_WINDOW = 64


class DiffError(ValueError):
    """A diff input could not be loaded or re-simulated."""


@dataclass
class Diffable:
    """One side of a diff: a digest block plus optional summary stats."""

    label: str
    #: ``"golden"``, ``"record"`` or ``"sim"``.
    source: str
    digest: dict[str, Any]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def meta(self) -> dict[str, Any]:
        return self.digest.get("meta") or {}

    @property
    def resimulable(self) -> bool:
        """Whether the digest carries enough meta to re-run the simulation."""
        return all(self.meta.get(key) is not None for key in RESIM_KEYS)


@dataclass
class DiffReport:
    """Outcome of one ``repro diff`` invocation, at its final granularity."""

    label_a: str
    label_b: str
    digest_a: dict[str, Any]
    digest_b: dict[str, Any]
    identical: bool
    #: False when the blocks cannot be meaningfully compared (algorithm or
    #: horizon mismatch); the divergence fields are then meaningless.
    comparable: bool = True
    notes: list[str] = field(default_factory=list)
    #: ``(stat, a, b)`` for summary statistics that differ.
    stats_diffs: list[tuple[str, Any, Any]] = field(default_factory=list)
    #: ``(event, a, b)`` for event-kind counts that differ.
    event_diffs: list[tuple[str, int, int]] = field(default_factory=list)
    #: Checkpoint interval ``(lo, hi]`` (in cycles-completed labels) whose
    #: chains bracket the divergence (None until granularity 2 ran).
    interval: Optional[tuple[int, int]] = None
    #: First divergent simulation cycle (0-based engine ``now``; None
    #: until granularity 3 localized it).
    divergent_cycle: Optional[int] = None
    #: Decoded loser-side events at the divergent cycle.
    context: list[dict[str, Any]] = field(default_factory=list)
    #: Context events beyond the cap that were not included.
    context_truncated: int = 0

    @property
    def exit_code(self) -> int:
        return 0 if self.identical else 1

    def render(self) -> str:
        """Plain-text report, one granularity per section."""
        a, b = self.digest_a, self.digest_b
        lines = [
            f"repro diff: {self.label_a}  vs  {self.label_b}",
            f"  A: {a.get('final', '?')}  ({a.get('events_total', '?')} events, "
            f"{a.get('cycles', '?')} cycles)",
            f"  B: {b.get('final', '?')}  ({b.get('events_total', '?')} events, "
            f"{b.get('cycles', '?')} cycles)",
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        if not self.comparable:
            lines.append("verdict: NOT COMPARABLE")
            return "\n".join(lines)
        if self.identical:
            lines.append("verdict: IDENTICAL (digest chains match)")
            return "\n".join(lines)
        lines.append("verdict: DIVERGED")
        if self.stats_diffs:
            lines.append("granularity 1 — summary stats that differ:")
            for stat, va, vb in self.stats_diffs:
                lines.append(f"  {stat:<26s} {va!s:>14s} {vb!s:>14s}")
        else:
            lines.append("granularity 1 — summary stats agree")
        if self.event_diffs:
            lines.append("granularity 2 — event census deltas:")
            for event, ca, cb in self.event_diffs:
                lines.append(f"  {event:<26s} {ca:>14d} {cb:>14d} ({cb - ca:+d})")
        else:
            lines.append("granularity 2 — event census agrees")
        if self.interval is not None:
            lo, hi = self.interval
            lines.append(
                f"  checkpoint bisection: chains agree through cycle {lo}, "
                f"diverged by cycle {hi}"
            )
        if self.divergent_cycle is not None:
            lines.append(
                f"granularity 3 — first divergent cycle: {self.divergent_cycle}"
            )
            if self.context:
                lines.append(
                    f"  event context at cycle {self.divergent_cycle} "
                    f"({self.label_b}):"
                )
                for event in self.context:
                    fields = " ".join(
                        f"{key}={value}"
                        for key, value in event.items()
                        if key not in ("event", "cycle")
                    )
                    lines.append(f"    {event.get('event', '?'):<14s} {fields}")
                if self.context_truncated:
                    lines.append(
                        f"    … {self.context_truncated} more event(s) at this cycle"
                    )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# re-simulation harness
# ---------------------------------------------------------------------------


class PerturbedWorkload:
    """Wraps a workload, injecting one extra single-flit packet at a cycle.

    The extra packet is a real behavioral perturbation — it occupies a
    VC, consumes credits and shifts every later packet's canonical id —
    so the digest diverges at exactly the perturbed cycle and stays
    diverged, which is what the localization tests assert.
    """

    def __init__(self, inner: Any, cycle: int, *, src: int = 0, dst: int = 1) -> None:
        self.inner = inner
        self.cycle = cycle
        self.src = src
        self.dst = dst

    def step(self, now: int) -> Iterable["Packet"]:
        from repro.noc.flit import Packet

        packets = list(self.inner.step(now))
        if now == self.cycle:
            packets.append(Packet(self.src, self.dst, 1, now))
        return packets

    def done(self, now: int) -> bool:
        return self.inner.done(now)


def resimulate(
    meta: dict[str, Any],
    *,
    cycles: Optional[int] = None,
    capture: Optional[tuple[int, int]] = None,
    recorder: bool = False,
) -> tuple[Any, RunDigest, Optional[Any]]:
    """Re-run a simulation described by a digest's ``meta`` block.

    Returns ``(stats, digest, flight_recorder)``; the recorder is only
    attached when ``recorder=True`` (the event-context pass).  ``cycles``
    truncates the horizon — determinism makes any prefix of the run
    identical to the same prefix of the full run, so localization passes
    never simulate past the cycle they care about.
    """
    missing = [key for key in RESIM_KEYS if meta.get(key) is None]
    if missing:
        raise DiffError(
            f"digest meta cannot be re-simulated; missing: {', '.join(missing)}"
        )
    from repro.sim.build import build_network
    from repro.sim.config import SimConfig
    from repro.sim.engine import Engine
    from repro.sim.stats import Stats
    from repro.topology.grid import ChipletGrid
    from repro.topology.system import build_system
    from repro.traffic.injection import SyntheticWorkload
    from repro.traffic.patterns import make_pattern

    from .forensics import FlightRecorder

    total = int(meta["cycles"])
    run_cycles = total if cycles is None else min(int(cycles), total)
    warmup = int(meta.get("warmup") or 0)
    cx, cy = meta["chiplets"]
    nx, ny = meta["nodes"]
    grid = ChipletGrid(int(cx), int(cy), int(nx), int(ny))
    config = SimConfig().replace(sim_cycles=total, warmup_cycles=warmup)
    spec = build_system(str(meta["family"]), grid, config)
    stats = Stats(measure_from=warmup)
    policy = meta.get("policy") or None
    network = build_network(spec, stats, policy=policy)
    workload: Any = SyntheticWorkload(
        make_pattern(str(meta["pattern"]), grid.n_nodes),
        grid.n_nodes,
        float(meta["rate"]),
        config.packet_length,
        until=total,
        seed=int(meta["seed"]),
    )
    if meta.get("perturb") is not None:
        workload = PerturbedWorkload(
            workload, int(meta["perturb"]), dst=max(1, grid.n_nodes - 1)
        )
    digest = RunDigest(
        network,
        checkpoint_every=int(meta.get("checkpoint_every") or DEFAULT_CHECKPOINT_EVERY),
        capture=capture,
    )
    digest.meta = dict(meta)
    flight = (
        FlightRecorder(network, window=_CONTEXT_WINDOW, events="full")
        if recorder
        else None
    )
    Engine(network, workload, stats).run(run_cycles)
    digest.detach()
    if flight is not None:
        flight.detach()
    return stats, digest, flight


# ---------------------------------------------------------------------------
# diffable loading
# ---------------------------------------------------------------------------

#: ``sim:`` spec defaults (family is required).
_SIM_DEFAULTS: dict[str, Any] = {
    "chiplets": "2x2",
    "nodes": "3x3",
    "pattern": "uniform",
    "rate": 0.1,
    "seed": 1,
    "cycles": 2_000,
    "warmup": 400,
}


def parse_sim_spec(text: str) -> dict[str, Any]:
    """Parse a ``sim:key=value,...`` spec into a re-simulation meta dict."""
    body = text[len("sim:"):]
    raw: dict[str, str] = {}
    for item in filter(None, body.split(",")):
        if "=" not in item:
            raise DiffError(f"sim spec item {item!r} is not key=value")
        key, value = item.split("=", 1)
        raw[key.strip()] = value.strip()
    unknown = set(raw) - {
        "family", "chiplets", "nodes", "pattern", "rate", "seed",
        "cycles", "warmup", "policy", "perturb", "checkpoint_every",
    }
    if unknown:
        raise DiffError(f"unknown sim spec key(s): {', '.join(sorted(unknown))}")
    if "family" not in raw:
        raise DiffError("sim spec requires family=<system family>")

    def pair(value: str, what: str) -> list[int]:
        try:
            x, y = value.lower().split("x")
            return [int(x), int(y)]
        except ValueError:
            raise DiffError(f"invalid {what} {value!r}; expected e.g. 2x2") from None

    meta: dict[str, Any] = {
        "family": raw["family"],
        "chiplets": pair(raw.get("chiplets", _SIM_DEFAULTS["chiplets"]), "chiplets"),
        "nodes": pair(raw.get("nodes", _SIM_DEFAULTS["nodes"]), "nodes"),
        "pattern": raw.get("pattern", _SIM_DEFAULTS["pattern"]),
        "rate": float(raw.get("rate", _SIM_DEFAULTS["rate"])),
        "seed": int(raw.get("seed", _SIM_DEFAULTS["seed"])),
        "cycles": int(raw.get("cycles", _SIM_DEFAULTS["cycles"])),
        "warmup": int(raw.get("warmup", _SIM_DEFAULTS["warmup"])),
    }
    if raw.get("policy"):
        meta["policy"] = raw["policy"]
    if raw.get("perturb") is not None:
        meta["perturb"] = int(raw["perturb"])
    if raw.get("checkpoint_every") is not None:
        meta["checkpoint_every"] = int(raw["checkpoint_every"])
    return meta


def _record_diffable(record: RunRecord, label: str) -> Diffable:
    if not record.digest:
        raise DiffError(
            f"{label}: run record {record.run_id or '?'} carries no digest "
            "block — record one with `repro simulate --digest`"
        )
    validate_digest_block(record.digest, where=label)
    return Diffable(
        label=label, source="record", digest=record.digest, stats=dict(record.stats)
    )


def load_diffable(token: str, *, runs_dir: str | Path = "runs") -> Diffable:
    """Resolve one ``repro diff`` operand into a :class:`Diffable`.

    Accepts a ``sim:`` spec (re-simulates now), a golden file, a run-record
    JSON, or a ``runs.jsonl`` store (latest digest-bearing record;
    ``store.jsonl#run_id`` selects one record).
    """
    if token.startswith("sim:"):
        meta = parse_sim_spec(token)
        stats, digest, _ = resimulate(meta)
        return Diffable(
            label=token,
            source="sim",
            digest=digest.summary(),
            stats=dict(stats.summary()),
        )
    path_text, _, selector = token.partition("#")
    path = Path(path_text)
    if not path.is_file():
        raise DiffError(f"no such file: {path}")
    if path.suffix == ".jsonl":
        store = RunStore(path.parent)
        chosen: Optional[RunRecord] = None
        for record in store.iter_records(strict=False):
            if selector and record.run_id != selector:
                continue
            if selector or record.digest:
                chosen = record
        if chosen is None:
            what = f"record {selector!r}" if selector else "digest-bearing record"
            raise DiffError(f"{path}: no {what} in the run store")
        return _record_diffable(chosen, token)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DiffError(f"{path}: not valid JSON: {exc}") from None
    if isinstance(doc, dict) and doc.get("kind") == "golden":
        golden = load_golden(path)
        return Diffable(
            label=f"{path.name} ({golden['case']}@{golden['scale']})",
            source="golden",
            digest=golden["digest"],
            stats=dict(golden.get("stats") or {}),
        )
    if isinstance(doc, dict) and "cases" in doc:
        raise DiffError(
            f"{path}: bench documents are compared with `repro compare`; "
            "diff golden files or run records instead"
        )
    if isinstance(doc, dict) and "run_id" in doc:
        try:
            record = RunRecord.from_dict(doc)
        except RunStoreError as exc:
            raise DiffError(f"{path}: {exc}") from None
        return _record_diffable(record, token)
    raise DiffError(f"{path}: not a golden trace, run record or runs.jsonl store")


# ---------------------------------------------------------------------------
# the three-granularity diff
# ---------------------------------------------------------------------------


def _stats_diffs(a: dict[str, Any], b: dict[str, Any]) -> list[tuple[str, Any, Any]]:
    diffs = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb and not (va != va and vb != vb):  # NaN == NaN for our purposes
            diffs.append((key, va, vb))
    return diffs


def _event_diffs(a: dict[str, Any], b: dict[str, Any]) -> list[tuple[str, int, int]]:
    counts_a = a.get("events") or {}
    counts_b = b.get("events") or {}
    return [
        (event, int(counts_a.get(event, 0)), int(counts_b.get(event, 0)))
        for event in sorted(set(counts_a) | set(counts_b))
        if counts_a.get(event, 0) != counts_b.get(event, 0)
    ]


def _bisect_first_divergent(
    labels: list[int], chain_a: dict[int, Any], chain_b: dict[int, Any]
) -> Optional[int]:
    """First label whose chains differ (None: all agree).

    Sound because chained digests diverge permanently: "diverged at label
    i" is monotone in i, so binary search applies.
    """
    if not labels or chain_a[labels[-1]] == chain_b[labels[-1]]:
        return None
    lo, hi = 0, len(labels) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if chain_a[labels[mid]] != chain_b[labels[mid]]:
            hi = mid
        else:
            lo = mid + 1
    return labels[lo]


def _checkpoint_interval(
    a: dict[str, Any], b: dict[str, Any]
) -> tuple[tuple[int, int], list[str]]:
    """Granularity 2: bracket the divergence between two checkpoints.

    Returns ``((lo, hi], notes)`` where chains agree at label ``lo``
    (0 = start of run) and differ at label ``hi``.
    """
    notes: list[str] = []
    map_a = {int(cycle): chain for cycle, chain in a.get("checkpoints") or []}
    map_b = {int(cycle): chain for cycle, chain in b.get("checkpoints") or []}
    labels = sorted(set(map_a) & set(map_b))
    if (map_a or map_b) and not labels:
        notes.append(
            "no common checkpoint cycles (different checkpoint_every?); "
            "bisecting from the start of the run"
        )
    first = _bisect_first_divergent(labels, map_a, map_b)
    if first is None:
        # Every common checkpoint agrees; the divergence sits in the tail
        # between the last checkpoint and the final chain.
        lo = labels[-1] if labels else 0
        hi = min(int(a.get("cycles") or 0), int(b.get("cycles") or 0))
        return (lo, hi), notes
    index = labels.index(first)
    lo = labels[index - 1] if index > 0 else 0
    return (lo, first), notes


def diff_runs(
    a: Diffable,
    b: Diffable,
    *,
    localize: bool = True,
    context: int = 12,
) -> DiffReport:
    """Compare two diffables at escalating granularity (see module doc)."""
    validate_digest_block(a.digest, where=a.label)
    validate_digest_block(b.digest, where=b.label)
    report = DiffReport(
        label_a=a.label,
        label_b=b.label,
        digest_a=a.digest,
        digest_b=b.digest,
        identical=False,
    )
    reason = digests_comparable(a.digest, b.digest)
    if reason is not None:
        report.comparable = False
        report.notes.append(reason)
        return report
    if a.digest.get("final") == b.digest.get("final"):
        report.identical = True
        return report

    # Granularity 1 — summary stats; granularity 2 — census + bisection.
    report.stats_diffs = _stats_diffs(a.stats, b.stats)
    report.event_diffs = _event_diffs(a.digest, b.digest)
    report.interval, notes = _checkpoint_interval(a.digest, b.digest)
    report.notes.extend(notes)
    if not localize:
        return report

    # Granularity 3 — re-simulate both sides with per-cycle capture over
    # the divergent interval and bisect down to the exact cycle.
    if not (a.resimulable and b.resimulable):
        stuck = [d.label for d in (a, b) if not d.resimulable]
        report.notes.append(
            "cannot localize beyond the checkpoint interval — no "
            f"re-simulation meta for: {', '.join(stuck)}"
        )
        return report
    lo, hi = report.interval
    if hi <= lo:
        report.notes.append(
            "degenerate checkpoint interval; cannot localize further"
        )
        return report
    window = (lo + 1, hi)
    _, rerun_a, _ = resimulate(a.meta, cycles=hi, capture=window)
    _, rerun_b, _ = resimulate(b.meta, cycles=hi, capture=window)
    for side, original, rerun in (("A", a, rerun_a), ("B", b, rerun_b)):
        recorded = dict(
            (int(cycle), chain) for cycle, chain in original.digest["checkpoints"]
        )
        expected = recorded.get(hi) or (
            original.digest.get("final") if hi == original.digest.get("cycles") else None
        )
        from .digest import chain_hex

        got = rerun.captured.get(hi)
        if expected is not None and got is not None and chain_hex(got) != expected:
            report.notes.append(
                f"warning: side {side} ({original.label}) did not re-simulate "
                "reproducibly — its localization may be unreliable"
            )
    labels = sorted(set(rerun_a.captured) & set(rerun_b.captured))
    first = _bisect_first_divergent(
        labels, rerun_a.captured, rerun_b.captured
    )
    if first is None:
        report.notes.append(
            "re-simulated chains agree over the divergent interval — the "
            "recorded digests disagree with this build's behavior"
        )
        return report
    divergent_now = first - 1  # chain labels count completed cycles
    report.divergent_cycle = divergent_now

    # Re-run the loser with the flight recorder windowed on that cycle.
    _, _, flight = resimulate(b.meta, cycles=first, recorder=True)
    assert flight is not None
    at_cycle = [
        event for event in flight.events() if event.get("cycle") == divergent_now
    ]
    report.context = at_cycle[:context]
    report.context_truncated = max(0, len(at_cycle) - context)
    return report


# ---------------------------------------------------------------------------
# golden record / check (the ``repro golden`` verbs)
# ---------------------------------------------------------------------------


def golden_meta_for_case(
    case: "BenchCase", scale: str, seed: int
) -> dict[str, Any]:
    """Re-simulation meta for one bench-suite canonical case."""
    from .bench import _HORIZONS

    cycles, warmup = _HORIZONS[scale]
    return {
        "family": case.family,
        "chiplets": list(case.chiplets),
        "nodes": list(case.nodes),
        "pattern": case.pattern,
        "rate": case.rate,
        "seed": seed,
        "cycles": cycles,
        "warmup": warmup,
    }


def record_golden_case(
    case: "BenchCase",
    *,
    scale: str,
    seed: int,
    directory: str | Path,
    git_rev: str = "unknown",
    created: str = "",
) -> Path:
    """Simulate one canonical case and write its golden trace."""
    meta = golden_meta_for_case(case, scale, seed)
    stats, digest, _ = resimulate(meta)
    doc = make_golden(
        case.name,
        scale,
        digest.summary(),
        stats=dict(stats.summary()),
        git_rev=git_rev,
        created=created,
    )
    return write_golden(doc, golden_path(case.name, scale, directory))


def check_golden_file(
    path: str | Path, *, localize: bool = True
) -> tuple[bool, str, Optional[DiffReport]]:
    """Re-simulate one golden's case and verify the digest chain matches.

    Returns ``(ok, one-line message, report)``; the report carries the
    localized divergence on mismatch.  Foreign or corrupt files raise
    :class:`~repro.telemetry.digest.DigestError`.
    """
    golden_doc = load_golden(path)
    golden = Diffable(
        label=f"{Path(path).name} (recorded)",
        source="golden",
        digest=golden_doc["digest"],
        stats=dict(golden_doc.get("stats") or {}),
    )
    stats, digest, _ = resimulate(golden.meta)
    current = Diffable(
        label="this build (re-simulated)",
        source="sim",
        digest=digest.summary(),
        stats=dict(stats.summary()),
    )
    report = diff_runs(golden, current, localize=localize)
    case = f"{golden_doc['case']}@{golden_doc['scale']}"
    if report.identical:
        return True, f"{case}: OK ({golden.digest.get('final')})", report
    where = (
        f" (first divergent cycle {report.divergent_cycle})"
        if report.divergent_cycle is not None
        else ""
    )
    return False, f"{case}: DIGEST MISMATCH{where}", report
