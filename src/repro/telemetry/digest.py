"""Deterministic run digests and golden traces (``repro diff`` / ``repro golden``).

:class:`RunDigest` folds every :class:`~repro.telemetry.bus.TelemetryBus`
event into one platform-stable 64-bit **chained hash**: each event's
fields are mixed into a per-cycle accumulator, and at ``cycle_end`` the
accumulator is folded into the running chain.  Two runs that emit the
same events in the same order — the bus's documented ordering guarantee —
produce byte-identical chains; the *first* cycle whose events differ
permanently diverges the chains from that cycle on.  That monotonicity is
what makes :mod:`repro.telemetry.diff` able to binary-search a divergence
down to its exact cycle.

This is the differential oracle ROADMAP item 1 (the batched fast-engine
rewrite) is gated on: any engine-core replacement must reproduce the
digest of the current reference engine on the fig11/fig14/table3 canonical
cases before it can land (see "Determinism & differential testing" in
``docs/observability.md``).

Design constraints, in order:

* **Platform stability.**  No ``hash()`` (salted per process), no
  pickling, no floats.  The mix is a pure-integer FNV-1a-style fold over
  small event fields, identical on every CPython/PyPy/OS/word size.
* **Process stability.**  Raw ``Packet.pid`` values come from a module
  global counter and differ between two runs in one process, so the
  digest canonicalizes them: packets are renumbered 0,1,2,… in injection
  order (which *is* deterministic) and every event hashes the canonical
  id, never the raw pid.
* **Zero cost when off.**  The digest is one more bus subscriber behind
  the zero-subscriber contract; plain runs never pay for it.

Artifacts:

* ``RunDigest.summary()`` — the schema-versioned ``digest`` block stored
  on :class:`~repro.telemetry.runstore.RunRecord`, in ``BENCH_*.json``
  cases and in golden files: final chain, per-event-kind counters,
  periodic ``(cycle, chain)`` checkpoints and the run's re-simulation
  ``meta`` (family/geometry/pattern/rate/seed/horizon/policy).
* Golden traces — ``GOLDEN_<case>_<scale>.json`` under
  ``benchmarks/goldens/``, written by ``repro golden record`` and
  re-verified by ``repro golden check`` and CI's determinism-smoke job.

Import note: like every collector in this package, this module must not
import ``repro.noc`` / ``repro.sim`` at module load; simulator types
appear only under ``typing.TYPE_CHECKING``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from .bus import EVENT_NAMES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.flit import Flit, Packet
    from repro.noc.network import Network

#: Version of the ``digest`` block schema (run records, bench cases,
#: golden files).  Bump on incompatible changes; loaders reject blocks
#: written by a different version.
DIGEST_SCHEMA_VERSION = 1

#: Hash-algorithm tag carried by every digest block.  Two blocks are only
#: comparable when their tags match; the tag changes whenever the mix or
#: the per-event field encoding changes.
DIGEST_ALGO = "fnv64-chain-v1"

#: Version of the ``GOLDEN_*.json`` file schema.
GOLDEN_SCHEMA_VERSION = 1

#: Default directory for golden traces (``repro golden``).
DEFAULT_GOLDENS_DIR = "benchmarks/goldens"

#: Default cycles between checkpoint samples — matches the default epoch
#: length so checkpoints line up with epoch boundaries in the live feed.
DEFAULT_CHECKPOINT_EVERY = 1_000

# FNV-1a 64-bit parameters; the fold below deviates from textbook FNV only
# in consuming whole small ints per step instead of bytes, which keeps the
# per-event cost at a handful of arithmetic ops.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1

#: Event-kind tags mixed ahead of each event's fields, derived from the
#: bus catalogue order (stable: the catalogue is append-only).
_EVENT_TAG = {name: index + 1 for index, name in enumerate(EVENT_NAMES)}


class DigestError(ValueError):
    """A digest block or golden file could not be validated."""


def chain_hex(value: int) -> str:
    """Canonical 16-digit hex rendering of one 64-bit chain value."""
    return f"{value & _MASK:016x}"


class RunDigest:
    """Streaming canonical digest of one run's telemetry event stream.

    Parameters
    ----------
    network:
        The built network whose bus is digested.
    checkpoint_every:
        Cycles between ``(cycle, chain)`` checkpoint samples.
    capture:
        Optional inclusive ``(lo, hi)`` cycle window; within it the
        per-cycle chain value is recorded in :attr:`captured`.  This is
        the re-simulation hook :mod:`repro.telemetry.diff` uses to narrow
        a divergent checkpoint interval to its exact cycle — leave it
        ``None`` for normal runs.
    """

    def __init__(
        self,
        network: "Network",
        *,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        capture: Optional[tuple[int, int]] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if capture is not None and capture[0] > capture[1]:
            raise ValueError("capture window must satisfy lo <= hi")
        self.network = network
        self.checkpoint_every = checkpoint_every
        self.capture = capture
        #: Per-cycle chain values inside the capture window (cycle -> int).
        self.captured: dict[int, int] = {}
        #: ``(cycle, chain)`` samples, one per ``checkpoint_every`` cycles.
        self.checkpoints: list[tuple[int, int]] = []
        #: Event counts by bus event name.
        self.counts: dict[str, int] = dict.fromkeys(EVENT_NAMES, 0)
        #: Re-simulation metadata, filled in by the experiment harness
        #: (family, geometry, pattern, rate, seed, horizon, policy).
        self.meta: dict[str, Any] = {}
        self.cycles = 0
        self._chain = _FNV_OFFSET
        self._acc = _FNV_OFFSET
        # Raw pid -> canonical injection-order id.  Raw pids come from a
        # process-global counter and are NOT stable across runs; injection
        # order is.
        self._pids: dict[int, int] = {}
        self._attached = False
        bus = network.telemetry
        self._handlers = {
            "packet_inject": self._on_packet_inject,
            "packet_eject": self._on_packet_eject,
            "route_compute": self._on_route_compute,
            "vc_alloc": self._on_vc_alloc,
            "flit_send": self._on_flit_send,
            "flit_recv": self._on_flit_recv,
            "link_accept": self._on_link_accept,
            "credit_return": self._on_credit_return,
            "credit_stall": self._on_credit_stall,
            "phy_dispatch": self._on_phy_dispatch,
            "rob_insert": self._on_rob,
            "rob_release": self._on_rob_release,
            "cycle_end": self._on_cycle_end,
        }
        for name, handler in self._handlers.items():
            bus.subscribe(name, handler)
        self._attached = True

    # -- canonical encoding --------------------------------------------------
    def _pid(self, packet: "Packet") -> int:
        pids = self._pids
        canon = pids.get(packet.pid)
        if canon is None:
            canon = pids[packet.pid] = len(pids)
        return canon

    def _mix(self, tag: int, *values: int) -> None:
        acc = ((self._acc ^ tag) * _FNV_PRIME) & _MASK
        for value in values:
            acc = ((acc ^ (value & _MASK)) * _FNV_PRIME) & _MASK
        self._acc = acc

    # -- event taps ----------------------------------------------------------
    # One tap per event, mixing exactly the fields that define simulated
    # behaviour (ids, ports, VCs) and never host-side state.  Argument
    # shapes follow the bus module's event catalogue.

    def _on_packet_inject(self, network: "Network", packet: "Packet") -> None:
        self.counts["packet_inject"] += 1
        self._mix(
            _EVENT_TAG["packet_inject"],
            self._pid(packet),
            packet.src,
            packet.dst,
            packet.length,
            packet.create_cycle,
        )

    def _on_packet_eject(self, router: Any, packet: "Packet", now: int) -> None:
        self.counts["packet_eject"] += 1
        self._mix(_EVENT_TAG["packet_eject"], router.node, self._pid(packet))

    def _on_route_compute(
        self, router: Any, packet: "Packet", in_port: int, in_vc: int, now: int
    ) -> None:
        self.counts["route_compute"] += 1
        self._mix(
            _EVENT_TAG["route_compute"],
            router.node,
            self._pid(packet),
            in_port,
            in_vc,
        )

    def _on_vc_alloc(
        self,
        router: Any,
        packet: "Packet",
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        now: int,
    ) -> None:
        self.counts["vc_alloc"] += 1
        self._mix(
            _EVENT_TAG["vc_alloc"],
            router.node,
            self._pid(packet),
            in_port,
            in_vc,
            out_port,
            out_vc,
        )

    def _on_flit_send(
        self, router: Any, flit: "Flit", out_port: int, out_vc: int, now: int
    ) -> None:
        self.counts["flit_send"] += 1
        self._mix(
            _EVENT_TAG["flit_send"],
            router.node,
            self._pid(flit.packet),
            flit.index,
            out_port,
            out_vc,
        )

    def _on_flit_recv(
        self, router: Any, port: int, vc: int, flit: "Flit", now: int
    ) -> None:
        self.counts["flit_recv"] += 1
        self._mix(
            _EVENT_TAG["flit_recv"],
            router.node,
            port,
            vc,
            self._pid(flit.packet),
            flit.index,
        )

    def _on_link_accept(self, link: Any, flit: "Flit", vc: int, now: int) -> None:
        self.counts["link_accept"] += 1
        self._mix(
            _EVENT_TAG["link_accept"],
            link.index,
            self._pid(flit.packet),
            flit.index,
            vc,
        )

    def _on_credit_return(self, link: Any, vc: int, now: int) -> None:
        self.counts["credit_return"] += 1
        self._mix(_EVENT_TAG["credit_return"], link.index, vc)

    def _on_credit_stall(self, router: Any, out_port: int, vc: int, now: int) -> None:
        self.counts["credit_stall"] += 1
        self._mix(_EVENT_TAG["credit_stall"], router.node, out_port, vc)

    def _on_phy_dispatch(
        self, link: Any, flit: "Flit", vc: int, phy: str, now: int
    ) -> None:
        self.counts["phy_dispatch"] += 1
        self._mix(
            _EVENT_TAG["phy_dispatch"],
            link.index,
            self._pid(flit.packet),
            flit.index,
            vc,
            ord(phy[0]),
        )

    def _on_rob(self, link: Any, flit: "Flit", vc: int, now: int) -> None:
        self.counts["rob_insert"] += 1
        self._mix(
            _EVENT_TAG["rob_insert"],
            link.index,
            self._pid(flit.packet),
            flit.index,
            vc,
        )

    def _on_rob_release(self, link: Any, flit: "Flit", vc: int, now: int) -> None:
        self.counts["rob_release"] += 1
        self._mix(
            _EVENT_TAG["rob_release"],
            link.index,
            self._pid(flit.packet),
            flit.index,
            vc,
        )

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        self.counts["cycle_end"] += 1
        # Fold this cycle's accumulator into the chain.  Once two runs'
        # chains differ they differ forever (the old chain feeds the new
        # value), which is the monotonicity the diff bisection relies on.
        chain = ((self._chain ^ now) * _FNV_PRIME) & _MASK
        chain = ((chain ^ self._acc) * _FNV_PRIME) & _MASK
        self._chain = chain
        self._acc = _FNV_OFFSET
        cycle = now + 1
        self.cycles = cycle
        capture = self.capture
        if capture is not None and capture[0] <= cycle <= capture[1]:
            self.captured[cycle] = chain
        if cycle % self.checkpoint_every == 0:
            self.checkpoints.append((cycle, chain))

    # -- lifecycle / output --------------------------------------------------
    @property
    def final(self) -> str:
        """The chain after the last folded cycle, canonical hex."""
        return chain_hex(self._chain)

    @property
    def events_total(self) -> int:
        """Events digested so far, ``cycle_end`` ticks excluded."""
        return sum(
            count for name, count in self.counts.items() if name != "cycle_end"
        )

    def detach(self) -> None:
        """Unsubscribe every tap; the bus reverts to the zero-cost path."""
        if not self._attached:
            return
        bus = self.network.telemetry
        for name, handler in self._handlers.items():
            bus.unsubscribe(name, handler)
        self._attached = False

    def summary(self) -> dict[str, Any]:
        """The schema-versioned ``digest`` block for records and artifacts."""
        return {
            "schema_version": DIGEST_SCHEMA_VERSION,
            "algo": DIGEST_ALGO,
            "cycles": self.cycles,
            "final": self.final,
            "events_total": self.events_total,
            "events": {
                name: count
                for name, count in self.counts.items()
                if count and name != "cycle_end"
            },
            "checkpoint_every": self.checkpoint_every,
            "checkpoints": [
                [cycle, chain_hex(chain)] for cycle, chain in self.checkpoints
            ],
            "meta": dict(self.meta),
        }

    #: Run-record alias (the ``record_from_result`` harvest convention).
    record_summary = summary


def validate_digest_block(block: Any, *, where: str = "digest block") -> dict[str, Any]:
    """Schema-check one ``digest`` block; returns it on success."""
    if not isinstance(block, dict):
        raise DigestError(f"{where}: not a JSON object")
    version = block.get("schema_version")
    if version != DIGEST_SCHEMA_VERSION:
        raise DigestError(
            f"{where}: digest schema v{version!r} is not supported "
            f"(this build reads v{DIGEST_SCHEMA_VERSION})"
        )
    for name in ("algo", "cycles", "final", "events", "checkpoints"):
        if name not in block:
            raise DigestError(f"{where}: missing field {name!r}")
    if not isinstance(block["checkpoints"], list):
        raise DigestError(f"{where}: checkpoints is not a list")
    return block


def digests_comparable(a: dict[str, Any], b: dict[str, Any]) -> Optional[str]:
    """Why two digest blocks cannot be meaningfully compared (None: they can).

    Different hash algorithms or different simulated horizons make chain
    inequality expected rather than informative; callers render ``n/a``
    instead of a verdict.
    """
    if a.get("algo") != b.get("algo"):
        return f"digest algorithms differ ({a.get('algo')} vs {b.get('algo')})"
    if a.get("cycles") != b.get("cycles"):
        return f"simulated horizons differ ({a.get('cycles')} vs {b.get('cycles')} cycles)"
    return None


# ---------------------------------------------------------------------------
# golden traces
# ---------------------------------------------------------------------------


def golden_path(
    case: str, scale: str, directory: str | Path = DEFAULT_GOLDENS_DIR
) -> Path:
    """The canonical golden-file path for one (case, scale) pair."""
    return Path(directory) / f"GOLDEN_{case}_{scale}.json"


def make_golden(
    case: str,
    scale: str,
    digest_block: dict[str, Any],
    *,
    stats: Optional[dict[str, Any]] = None,
    git_rev: str = "unknown",
    created: str = "",
) -> dict[str, Any]:
    """Assemble one golden-trace document from a finished run's digest."""
    validate_digest_block(digest_block, where=f"golden {case}")
    return {
        "schema_version": GOLDEN_SCHEMA_VERSION,
        "kind": "golden",
        "case": case,
        "scale": scale,
        "created": created,
        "git_rev": git_rev,
        "digest": digest_block,
        "stats": dict(stats or {}),
    }


def write_golden(doc: dict[str, Any], path: str | Path) -> Path:
    """Write one golden document (keys sorted: goldens are committed files)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_golden(path: str | Path) -> dict[str, Any]:
    """Load and schema-check one golden file.

    Rejects foreign documents — wrong ``kind``, wrong schema version, or a
    digest block this build cannot read — with :class:`DigestError`.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DigestError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("kind") != "golden":
        raise DigestError(f"{path}: not a golden-trace document")
    version = doc.get("schema_version")
    if version != GOLDEN_SCHEMA_VERSION:
        raise DigestError(
            f"{path}: golden schema v{version!r} is not supported "
            f"(this build reads v{GOLDEN_SCHEMA_VERSION})"
        )
    for name in ("case", "scale", "digest"):
        if name not in doc:
            raise DigestError(f"{path}: missing field {name!r}")
    validate_digest_block(doc["digest"], where=str(path))
    return doc


def golden_files(directory: str | Path = DEFAULT_GOLDENS_DIR) -> list[Path]:
    """All ``GOLDEN_*.json`` files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("GOLDEN_*.json"))
