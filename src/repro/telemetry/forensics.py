"""Flight recorder and postmortem forensics (see ``docs/observability.md``).

The static passes of :mod:`repro.analysis` *predict* deadlock and livelock;
this module is the runtime counterpart that *explains* one when it happens.
Three cooperating pieces, all riding the
:class:`~repro.telemetry.bus.TelemetryBus`:

* :class:`FlightRecorder` — a bounded ring buffer of recent bus events
  (O(1) append, last ``window`` cycles retained).  The default ``"packet"``
  detail level records packet-lifecycle events only (injection, ejection,
  credit stalls), which keeps the measured overhead on the fig11 bench
  case within the 2% budget; ``"route"`` adds the per-hop routing and VC
  allocation events, and ``"full"`` records the flit-granular firehose.
* :class:`HealthMonitor` — periodic live probes (throughput slope,
  credit-stall rate, buffer/ROB occupancy, oldest in-flight packet age)
  with configurable :class:`HealthThresholds`; threshold crossings are
  flagged on a stream as they happen and summarized for the run registry.
* :func:`capture_bundle` — the black-box dump taken when a run wedges:
  full network snapshot (router/link/ROB/PHY ``snapshot_state`` hooks),
  an in-flight packet table with per-packet age and attribution-taxonomy
  stage, and a **wait-for graph** extracted from blocked input VCs whose
  cycle (if any) names the deadlocked channel loop in the same
  ``(link index, vc)`` vocabulary as :func:`repro.analysis.cdg.build_cdg`
  — so a runtime deadlock is mechanically cross-checkable against the
  static analysis.

:class:`ForensicsSession` bundles the three behind one attach/detach
surface; the :class:`~repro.sim.engine.Engine` calls
:meth:`ForensicsSession.capture_to_file` from its failure path so every
:class:`~repro.sim.stats.DeadlockError`, drain timeout or
:class:`~repro.analysis.sanitizer.InvariantViolation` leaves a bundle on
disk.  ``repro postmortem BUNDLE`` renders a bundle as a text report or a
self-contained HTML page.

Import note: like every collector in this package, this module must not
import ``repro.noc`` / ``repro.core`` at module load (``repro.noc``
imports :mod:`repro.telemetry.bus`); simulator types appear only under
``typing.TYPE_CHECKING`` and simulator state is reached through duck
typing and the ``snapshot_state`` hooks.
"""

from __future__ import annotations

import dataclasses
import html as _html
import json
import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from .bus import EVENT_NAMES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.flit import Flit, Packet
    from repro.noc.network import Network

#: Version of the postmortem-bundle schema.  Bump on incompatible changes;
#: :func:`validate_bundle` rejects bundles written by a different version.
FORENSICS_SCHEMA_VERSION = 1

#: Event subsets selectable by :class:`FlightRecorder` detail level.
#: ``"packet"`` stays within the recorder's 2% overhead budget on the
#: fig11 bench case; ``"route"`` adds the per-hop routing/VC-allocation
#: events (a few percent more); ``"full"`` records the flit-granular
#: firehose (observability runs only, not perf-neutral).
RECORDER_PRESETS: dict[str, tuple[str, ...]] = {
    "packet": (
        "packet_inject",
        "packet_eject",
        "credit_stall",
    ),
    "route": (
        "packet_inject",
        "packet_eject",
        "route_compute",
        "vc_alloc",
        "credit_stall",
    ),
    "full": tuple(name for name in EVENT_NAMES if name != "cycle_end"),
}

#: Wait-for graph vertices: channels are ``("chan", link, vc)``; source
#: queues (which hold no upstream channel and thus never close a cycle)
#: are ``("inject", node, vc)``.
WaitVertex = tuple[str, int, int]


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


def _packet_ref(packet: "Packet") -> dict[str, int]:
    return {
        "pid": packet.pid,
        "src": packet.src,
        "dst": packet.dst,
        "len": packet.length,
    }


def _flit_ref(flit: "Flit") -> dict[str, int]:
    return {"pid": flit.packet.pid, "flit": flit.index}


def _decode_event(name: str, args: tuple) -> dict[str, Any]:
    """One recorded ``(name, args)`` pair -> a JSON-serializable record."""
    out: dict[str, Any] = {"event": name, "cycle": _event_cycle(name, args)}
    if name == "packet_inject":
        out["packet"] = _packet_ref(args[1])
    elif name == "packet_eject":
        out["node"] = args[0].node
        out["packet"] = _packet_ref(args[1])
    elif name == "route_compute":
        out.update(node=args[0].node, packet=_packet_ref(args[1]),
                   in_port=args[2], in_vc=args[3])
    elif name == "vc_alloc":
        out.update(node=args[0].node, packet=_packet_ref(args[1]),
                   in_port=args[2], in_vc=args[3],
                   out_port=args[4], out_vc=args[5])
    elif name == "flit_send":
        out.update(node=args[0].node, flit=_flit_ref(args[1]),
                   out_port=args[2], out_vc=args[3])
    elif name == "flit_recv":
        out.update(node=args[0].node, port=args[1], vc=args[2],
                   flit=_flit_ref(args[3]))
    elif name == "link_accept":
        out.update(link=args[0].index, flit=_flit_ref(args[1]), vc=args[2])
    elif name == "credit_return":
        out.update(link=args[0].index, vc=args[1])
    elif name == "credit_stall":
        out.update(node=args[0].node, out_port=args[1], vc=args[2])
    elif name == "phy_dispatch":
        out.update(link=args[0].index, flit=_flit_ref(args[1]),
                   vc=args[2], phy=args[3])
    elif name in ("rob_insert", "rob_release"):
        out.update(link=args[0].index, flit=_flit_ref(args[1]), vc=args[2])
    else:  # pragma: no cover - defensive
        out["args"] = repr(args)
    return out


def _event_cycle(name: str, args: tuple) -> int:
    # Every catalogued event carries ``now`` as its last argument except
    # packet_inject, whose packet carries its creation cycle instead.
    if name == "packet_inject":
        return int(args[1].create_cycle)
    return int(args[-1])


def _make_tap(append: Callable[[tuple], None]) -> Callable[..., None]:
    # The hot path of the recorder: one call, one varargs pack, one deque
    # append.  The event name is implied by which deque ``append`` belongs
    # to, so no per-event tuple is allocated around the args.
    def tap(*args: Any) -> None:
        append(args)

    return tap


class FlightRecorder:
    """Bounded ring buffer of recent telemetry events.

    Parameters
    ----------
    network:
        The built network whose bus is recorded.
    window:
        Cycles of history retained; older events are evicted on a short
        trim stride (amortized O(1) per event) and before every read, so
        the view :meth:`events` / :meth:`tail` return is always exact.
    events:
        A preset name from :data:`RECORDER_PRESETS` or an explicit
        iterable of event names.
    max_events:
        Hard memory cap; crossing it evicts the oldest events and counts
        them in :attr:`dropped`.  Between trims the buffers may briefly
        overshoot the cap by up to one stride of events.
    """

    #: Cycles between in-run trims.  Reads always trim first, so the
    #: stride only bounds the transient memory overshoot, not accuracy.
    TRIM_STRIDE = 64

    def __init__(
        self,
        network: "Network",
        *,
        window: int = 4_096,
        events: str | Iterable[str] = "packet",
        max_events: int = 250_000,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        if isinstance(events, str):
            try:
                names = RECORDER_PRESETS[events]
            except KeyError:
                raise ValueError(
                    f"unknown recorder preset {events!r}; known: "
                    + ", ".join(RECORDER_PRESETS)
                ) from None
        else:
            names = tuple(events)
            unknown = [n for n in names if n not in EVENT_NAMES]
            if unknown:
                raise ValueError(f"unknown telemetry event(s): {', '.join(unknown)}")
        self.network = network
        self.window = window
        self.max_events = max_events
        self.event_names = names
        self.dropped = 0
        self.now = 0
        # One deque per event: the tap appends the raw args tuple and the
        # event name stays implicit, saving a tuple allocation per event.
        self._bufs: dict[str, deque[tuple]] = {name: deque() for name in names}
        self._callbacks: dict[str, Callable[..., None]] = {}
        self._cycles_until_trim = self.TRIM_STRIDE
        self._attached = False
        bus = network.telemetry
        for name in names:
            callback = _make_tap(self._bufs[name].append)
            self._callbacks[name] = callback
            bus.subscribe(name, callback)
        bus.subscribe("cycle_end", self._on_cycle_end)
        self._attached = True

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        # This runs every simulated cycle even when no events fired, so the
        # common case must stay at a couple of attribute touches; the real
        # trimming work is amortized over TRIM_STRIDE cycles.
        self.now = now
        self._cycles_until_trim -= 1
        if self._cycles_until_trim <= 0:
            self._cycles_until_trim = self.TRIM_STRIDE
            self._trim()

    def _trim(self) -> None:
        horizon = self.now - self.window
        total = 0
        for name, buf in self._bufs.items():
            while buf and _event_cycle(name, buf[0]) < horizon:
                buf.popleft()
            total += len(buf)
        over = total - self.max_events
        if over > 0:
            self.dropped += over
            # Shed the overflow proportionally from each event's deque.  Each
            # deque is already in cycle order, so trimming its left end drops
            # that event type's oldest history; proportional quotas keep one
            # chatty event from starving the others, and the whole pass is
            # O(over) deque pops rather than a global oldest-first scan.
            bufs = [buf for buf in self._bufs.values() if buf]
            remaining = over
            for buf in bufs:
                quota = min(over * len(buf) // total, len(buf), remaining)
                for _ in range(quota):
                    buf.popleft()
                remaining -= quota
            while remaining > 0:
                # Rounding residue (< one event per deque) comes off the
                # largest survivor.
                buf = max(bufs, key=len)
                buf.popleft()
                remaining -= 1

    def detach(self) -> None:
        """Unsubscribe every tap; the bus reverts to the zero-cost path."""
        if not self._attached:
            return
        bus = self.network.telemetry
        for name, callback in self._callbacks.items():
            bus.unsubscribe(name, callback)
        bus.unsubscribe("cycle_end", self._on_cycle_end)
        self._attached = False

    def __len__(self) -> int:
        self._trim()
        return sum(len(buf) for buf in self._bufs.values())

    def _merged(self) -> list[tuple[int, str, tuple]]:
        self._trim()
        rows = [
            (_event_cycle(name, args), name, args)
            for name, buf in self._bufs.items()
            for args in buf
        ]
        rows.sort(key=lambda row: row[0])
        return rows

    def events(self) -> list[dict[str, Any]]:
        """Every retained event, decoded, oldest first."""
        return [_decode_event(name, args) for _cycle, name, args in self._merged()]

    def tail(self, n: int) -> list[dict[str, Any]]:
        """The most recent ``n`` events, decoded, oldest first."""
        if n <= 0:
            return []
        rows = self._merged()
        return [_decode_event(name, args) for _cycle, name, args in rows[-n:]]


# ---------------------------------------------------------------------------
# health monitor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HealthThresholds:
    """When a probe reading becomes an anomaly."""

    #: Oldest in-flight packet age (cycles) before it is flagged.
    max_packet_age: int = 5_000
    #: Credit-stall events per cycle over a probe window before flagging.
    max_stall_rate: float = 2.0
    #: Flits buffered in the network before occupancy is flagged.
    max_buffered_flits: int = 50_000


@dataclass
class HealthProbe:
    """One periodic reading of the run's vital signs."""

    cycle: int
    delivered_delta: int
    stall_rate: float
    buffered: int
    in_flight: int
    rob_occupancy: int
    oldest_age: int
    oldest_pid: Optional[int]

    def to_json(self) -> dict[str, Any]:
        """JSON payload shared with live-feed ``health`` events."""
        return dataclasses.asdict(self)


@dataclass
class HealthAnomaly:
    """A threshold crossing (recorded on the rising edge only)."""

    cycle: int
    kind: str
    detail: str

    def to_json(self) -> dict[str, Any]:
        """JSON payload shared with bundles and live-feed events."""
        return dataclasses.asdict(self)


class HealthMonitor:
    """Periodic live health probes with anomaly flagging.

    Subscribes to ``packet_inject`` / ``packet_eject`` (in-flight packet
    ages), ``credit_stall`` (stall rate) and ``cycle_end`` (the probe
    clock).  Every ``every`` cycles it takes one :class:`HealthProbe`;
    readings beyond the :class:`HealthThresholds` raise a
    :class:`HealthAnomaly` flag, written to ``stream`` (when given) at
    the moment the condition first appears — the live early warning the
    postmortem bundle later confirms.
    """

    def __init__(
        self,
        network: "Network",
        *,
        every: int = 2_000,
        thresholds: Optional[HealthThresholds] = None,
        stream: Optional[IO[str]] = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.network = network
        self.every = every
        self.thresholds = thresholds or HealthThresholds()
        self.stream = stream
        self.probes: list[HealthProbe] = []
        self.anomalies: list[HealthAnomaly] = []
        self._live: dict[int, "Packet"] = {}
        self._stalls = 0
        self._last_delivered = 0
        self._active_flags: set[str] = set()
        self._attached = False
        bus = network.telemetry
        bus.subscribe("packet_inject", self._on_inject)
        bus.subscribe("packet_eject", self._on_eject)
        bus.subscribe("credit_stall", self._on_stall)
        bus.subscribe("cycle_end", self._on_cycle_end)
        self._attached = True

    # -- bus callbacks -----------------------------------------------------
    def _on_inject(self, network: "Network", packet: "Packet") -> None:
        self._live[packet.pid] = packet

    def _on_eject(self, router: Any, packet: "Packet", now: int) -> None:
        self._live.pop(packet.pid, None)

    def _on_stall(self, router: Any, out_port: int, vc: int, now: int) -> None:
        self._stalls += 1

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        if (now + 1) % self.every:
            return
        self.probe(now)

    # -- probing -----------------------------------------------------------
    def oldest_in_flight(self, now: int) -> tuple[Optional["Packet"], int]:
        """(oldest live packet, its age in cycles); ``(None, 0)`` if idle."""
        live = self._live
        if not live:
            return None, 0
        packet = next(iter(live.values()))
        return packet, now - packet.create_cycle

    def probe(self, now: int) -> HealthProbe:
        """Take one reading now (also called from the probe clock)."""
        network = self.network
        delivered = network.stats.packets_delivered
        stall_rate = self._stalls / self.every
        self._stalls = 0
        rob = 0
        for link in network.links:
            buffer = getattr(link, "rob", None)
            if buffer is not None:
                rob += buffer.occupancy
        oldest, age = self.oldest_in_flight(now)
        probe = HealthProbe(
            cycle=now,
            delivered_delta=delivered - self._last_delivered,
            stall_rate=stall_rate,
            buffered=network.buffered_flits(),
            in_flight=network.in_flight_flits(),
            rob_occupancy=rob,
            oldest_age=age,
            oldest_pid=oldest.pid if oldest is not None else None,
        )
        self._last_delivered = delivered
        self.probes.append(probe)
        self._flag(probe, oldest)
        return probe

    def _flag(self, probe: HealthProbe, oldest: Optional["Packet"]) -> None:
        limits = self.thresholds
        findings: list[tuple[str, str]] = []
        if oldest is not None and probe.oldest_age > limits.max_packet_age:
            findings.append((
                "packet-age",
                f"oldest in-flight packet {oldest.pid} "
                f"({oldest.src}->{oldest.dst}) is {probe.oldest_age} cycles "
                f"old (limit {limits.max_packet_age})",
            ))
        if probe.delivered_delta == 0 and probe.buffered + probe.in_flight > 0:
            findings.append((
                "no-throughput",
                f"{probe.buffered + probe.in_flight} flits in the network "
                f"but zero packets delivered in the last {self.every} cycles",
            ))
        if probe.stall_rate > limits.max_stall_rate:
            findings.append((
                "credit-stall",
                f"credit-stall rate {probe.stall_rate:.2f}/cycle "
                f"(limit {limits.max_stall_rate:g})",
            ))
        if probe.buffered > limits.max_buffered_flits:
            findings.append((
                "occupancy",
                f"{probe.buffered} flits buffered "
                f"(limit {limits.max_buffered_flits})",
            ))
        current = {kind for kind, _ in findings}
        for kind, detail in findings:
            if kind in self._active_flags:
                continue  # already flagged; report rising edges only
            anomaly = HealthAnomaly(cycle=probe.cycle, kind=kind, detail=detail)
            self.anomalies.append(anomaly)
            if self.stream is not None:
                self.stream.write(
                    f"[health] cycle {probe.cycle}: {kind}: {detail}\n"
                )
                self.stream.flush()
        self._active_flags = current

    def detach(self) -> None:
        if not self._attached:
            return
        bus = self.network.telemetry
        bus.unsubscribe("packet_inject", self._on_inject)
        bus.unsubscribe("packet_eject", self._on_eject)
        bus.unsubscribe("credit_stall", self._on_stall)
        bus.unsubscribe("cycle_end", self._on_cycle_end)
        self._attached = False

    def summary(self, *, max_anomalies: int = 20, max_series: int = 120) -> dict[str, Any]:
        """Compact JSON-ready digest for bundles and the run registry."""
        series = [[p.cycle, p.oldest_age] for p in self.probes]
        if len(series) > max_series:
            stride = math.ceil(len(series) / max_series)
            series = series[::stride]
        return {
            "probes": len(self.probes),
            "anomaly_count": len(self.anomalies),
            "flags": sorted({a.kind for a in self.anomalies}),
            "max_oldest_age": max((p.oldest_age for p in self.probes), default=0),
            "anomalies": [a.to_json() for a in self.anomalies[:max_anomalies]],
            "oldest_age_series": series,
        }


# ---------------------------------------------------------------------------
# wait-for graph extraction
# ---------------------------------------------------------------------------

# Input-VC pipeline states; values mirror repro.noc.router (asserted by
# tests so the two cannot drift apart without failing).
_VC_IDLE, _VC_VA, _VC_ACTIVE = 0, 1, 2
_STATE_NAMES = {_VC_IDLE: "idle", _VC_VA: "va_wait", _VC_ACTIVE: "active"}


def extract_wait_graph(network: "Network", now: int) -> dict[str, Any]:
    """The wait-for graph of blocked flits, with its cycle if one exists.

    Vertices are channels ``("chan", link index, vc)`` (plus
    ``("inject", node, vc)`` pseudo-vertices for source queues, which hold
    no channel and therefore never appear in a cycle).  An edge points
    from the channel a blocked packet *holds* (the input VC its flits
    occupy) to each channel it *requests*: every unallocable routing
    candidate for a VC stuck in VC allocation, or the granted output VC
    for an active VC stalled on zero downstream credits.

    The cycle is reported in the ``(link index, vc)`` vocabulary of
    :mod:`repro.analysis.cdg`, so it can be checked edge by edge against
    the static channel dependency graph (see ``cycle_in_graph``).
    """
    edges: dict[WaitVertex, set[WaitVertex]] = {}
    blocked: list[dict[str, Any]] = []
    for router in network.routers:
        outputs = router.outputs
        for port in router.inputs:
            link = port.link
            for ivc in port.vcs:
                if not ivc.queue or ivc.state == _VC_IDLE:
                    continue
                packet = ivc.queue[0].packet
                wants: list[WaitVertex] = []
                why = _STATE_NAMES[ivc.state]
                if ivc.state == _VC_VA:
                    for out_port, out_vc, _escape in ivc.candidates or ():
                        out_link = outputs[out_port].link
                        if out_link is None:
                            continue  # ejection never blocks VC allocation
                        wants.append(("chan", out_link.index, out_vc))
                else:  # _VC_ACTIVE
                    out = outputs[ivc.out_port]
                    out_link = out.link
                    if out_link is None or out.credits[ivc.out_vc] > 0:
                        continue  # can still move; not blocked on a resource
                    why = "credit_stall"
                    wants.append(("chan", out_link.index, ivc.out_vc))
                if not wants:
                    continue
                holder: WaitVertex = (
                    ("inject", router.node, ivc.index)
                    if link is None
                    else ("chan", link.index, ivc.index)
                )
                edges.setdefault(holder, set()).update(wants)
                blocked.append({
                    "node": router.node,
                    "port": port.index,
                    "vc": ivc.index,
                    "pid": packet.pid,
                    "src": packet.src,
                    "dst": packet.dst,
                    "age": now - packet.create_cycle,
                    "state": why,
                    "holds": list(holder),
                    "wants": [list(want) for want in wants],
                })
    cycle = _find_cycle(edges)
    return {
        "blocked": blocked,
        "edges": [[list(a), list(b)] for a, bs in sorted(edges.items()) for b in sorted(bs)],
        "cycle": [[link, vc] for _tag, link, vc in cycle],
    }


def _find_cycle(graph: dict[WaitVertex, set[WaitVertex]]) -> list[WaitVertex]:
    """A cycle in the wait-for graph, or ``[]`` (iterative 3-color DFS).

    Returned open: consecutive elements are edges, and so is last -> first
    (the wrap-around is implied, not repeated).
    """
    white, gray, black = 0, 1, 2
    color: dict[WaitVertex, int] = {}
    parent: dict[WaitVertex, WaitVertex] = {}
    for start in graph:
        if color.get(start, white) != white:
            continue
        stack: list[tuple[WaitVertex, Any]] = [(start, iter(sorted(graph.get(start, ()))))]
        color[start] = gray
        while stack:
            vertex, it = stack[-1]
            advanced = False
            for nxt in it:
                state = color.get(nxt, white)
                if state == gray:
                    cycle = [vertex]
                    walk = vertex
                    while walk != nxt:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
                if state == white:
                    color[nxt] = gray
                    parent[nxt] = vertex
                    stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[vertex] = black
                stack.pop()
    return []


def waitfor_cycle_channels(bundle: dict[str, Any]) -> list[tuple[int, int]]:
    """The bundle's wait-for cycle as ``(link index, vc)`` tuples."""
    return [tuple(entry) for entry in bundle.get("waitfor", {}).get("cycle", [])]


def cycle_in_graph(
    cycle: Sequence[tuple[int, int]],
    edges: dict[tuple[int, int], set[tuple[int, int]]],
) -> bool:
    """True when ``cycle`` is a closed walk of the dependency graph.

    Used to cross-check a runtime wait-for cycle against the edge set of
    the static CDG (``build_cdg(network).edges``): every consecutive pair
    of the runtime cycle — including the wrap-around — must be a
    dependency the static analysis predicted.
    """
    if not cycle:
        return False
    closed = list(cycle) + [cycle[0]]
    return all(b in edges.get(a, set()) for a, b in zip(closed, closed[1:]))


# ---------------------------------------------------------------------------
# in-flight packet table
# ---------------------------------------------------------------------------


def inflight_packet_table(
    network: "Network", now: int, *, max_packets: int = 256
) -> dict[str, Any]:
    """Every packet with flits in the network: age, stage, positions.

    The ``stage`` column uses the attribution taxonomy of
    :data:`repro.telemetry.attribution.STAGES`, derived from where the
    packet's head-most in-network flit currently sits.
    """
    entries: dict[int, dict[str, Any]] = {}

    def note(flit: "Flit", stage: str, position: dict[str, Any]) -> None:
        packet = flit.packet
        entry = entries.get(packet.pid)
        if entry is None:
            entry = entries[packet.pid] = {
                "pid": packet.pid,
                "src": packet.src,
                "dst": packet.dst,
                "len": packet.length,
                "age": now - packet.create_cycle,
                "flits_in_network": 0,
                "stage": stage,
                "positions": [],
                "_head_index": flit.index,
            }
        entry["flits_in_network"] += 1
        if len(entry["positions"]) < 4 and position not in entry["positions"]:
            entry["positions"].append(position)
        if flit.index <= entry["_head_index"]:
            entry["_head_index"] = flit.index
            entry["stage"] = stage

    for router in network.routers:
        for port in router.inputs:
            injection = port.link is None
            for ivc in port.vcs:
                if not ivc.queue:
                    continue
                if injection:
                    stage = "source_queue" if ivc.state == _VC_IDLE else "va_wait"
                elif ivc.state == _VC_VA:
                    stage = "va_wait"
                elif ivc.state == _VC_ACTIVE:
                    out = router.outputs[ivc.out_port]
                    stalled = (
                        out.link is not None and out.credits[ivc.out_vc] <= 0
                    )
                    stage = "credit_stall" if stalled else "switch_wait"
                else:
                    stage = "va_wait"
                position = {
                    "loc": "router",
                    "node": router.node,
                    "port": port.index,
                    "vc": ivc.index,
                }
                for flit in ivc.queue:
                    note(flit, stage, position)
    for link in network.links:
        position = {"loc": "link", "link": link.index}
        for flit, stage in _link_flit_stages(link):
            note(flit, stage, position)
    table = sorted(entries.values(), key=lambda e: (-e["age"], e["pid"]))
    for entry in table:
        del entry["_head_index"]
    return {"total": len(table), "table": table[:max_packets]}


def _link_flit_stages(link: Any) -> Iterable[tuple["Flit", str]]:
    """(flit, attribution stage) pairs for every flit inside one link."""
    pipe = getattr(link, "_pipe", None)
    if pipe is not None:  # PipelinedLink
        stage = link.traversal_stage or "link_onchip"
        for _due, flit, _vc in pipe:
            yield flit, stage
        return
    if getattr(link, "rob", None) is None:
        return
    # HeteroPhyLink: TX FIFO, bypass queue, both PHY pipelines, ROB.
    for flit, _vc in link._txq:
        yield flit, "phy_tx_queue"
    for flit, _vc in link._bypassq:
        yield flit, "phy_tx_queue"
    for _due, flit, _vc in link._par_pipe:
        yield flit, "phy_parallel"
    for _due, flit, _vc in link._ser_pipe:
        yield flit, "phy_serial"
    for flit in link.rob.waiting_flits():
        yield flit, "rob_wait"


# ---------------------------------------------------------------------------
# bundle capture
# ---------------------------------------------------------------------------


def capture_bundle(
    network: "Network",
    *,
    now: int,
    reason: str,
    error: Optional[BaseException] = None,
    recorder: Optional[FlightRecorder] = None,
    monitor: Optional[HealthMonitor] = None,
    recorder_tail: int = 200,
) -> dict[str, Any]:
    """Snapshot everything needed to explain a wedged run.

    ``reason`` is a short slug (``"deadlock"``, ``"drain-timeout"``,
    ``"invariant-violation"``, ``"manual"``...).  Only routers and links
    actually holding state are snapshotted in full; the channel table
    covers the whole topology so link indices stay resolvable.
    """
    routers = [
        router.snapshot_state()
        for router in network.routers
        if router.buffered_flits() > 0
    ]
    links = [
        link.snapshot_state()
        for link in network.links
        if getattr(link, "occupancy", 0) or any(
            link.pending_credits(vc) for vc in range(link.spec.n_vcs)
        )
    ]
    channels = [
        {
            "index": link.index,
            "src": link.spec.src,
            "dst": link.spec.dst,
            "kind": link.spec.kind.value,
            "n_vcs": link.spec.n_vcs,
            "interface": bool(link.spec.is_interface),
        }
        for link in network.links
    ]
    bundle: dict[str, Any] = {
        "schema_version": FORENSICS_SCHEMA_VERSION,
        "reason": reason,
        "cycle": now,
        "error": None if error is None else str(error),
        "error_type": None if error is None else type(error).__name__,
        "network": {
            "n_nodes": network.n_nodes,
            "n_links": len(network.links),
            "buffered_flits": network.buffered_flits(),
            "in_flight_flits": network.in_flight_flits(),
        },
        "channels": channels,
        "routers": routers,
        "links": links,
        "packets": inflight_packet_table(network, now),
        "waitfor": extract_wait_graph(network, now),
        "health": monitor.summary() if monitor is not None else None,
        "recorder": None,
    }
    if recorder is not None:
        bundle["recorder"] = {
            "window": recorder.window,
            "events_recorded": len(recorder),
            "dropped": recorder.dropped,
            "tail": recorder.tail(recorder_tail),
        }
    return bundle


def write_bundle(bundle: dict[str, Any], directory: str | Path) -> Path:
    """Write one bundle as pretty JSON; returns the written path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"BUNDLE_{bundle.get('reason', 'manual')}_{bundle.get('cycle', 0)}"
    path = directory / f"{stem}.json"
    serial = 1
    while path.exists():
        path = directory / f"{stem}_{serial}.json"
        serial += 1
    path.write_text(json.dumps(bundle, indent=1, sort_keys=True), encoding="utf-8")
    return path


def load_bundle(path: str | Path) -> dict[str, Any]:
    """Read and validate a bundle file."""
    try:
        bundle = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read bundle {path}: {exc}") from None
    validate_bundle(bundle)
    return bundle


#: Top-level keys every v1 bundle must carry.
_REQUIRED_KEYS = (
    "schema_version",
    "reason",
    "cycle",
    "network",
    "channels",
    "routers",
    "links",
    "packets",
    "waitfor",
)


def validate_bundle(bundle: Any) -> None:
    """Raise :class:`ValueError` unless ``bundle`` is a readable v1 bundle."""
    if not isinstance(bundle, dict):
        raise ValueError("bundle is not a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in bundle]
    if missing:
        raise ValueError(f"bundle is missing keys: {', '.join(missing)}")
    version = bundle["schema_version"]
    if version != FORENSICS_SCHEMA_VERSION:
        raise ValueError(
            f"bundle schema v{version!r} is not supported "
            f"(this build reads v{FORENSICS_SCHEMA_VERSION})"
        )
    waitfor = bundle["waitfor"]
    if not isinstance(waitfor, dict) or not {"blocked", "edges", "cycle"} <= set(waitfor):
        raise ValueError("bundle wait-for graph is malformed")
    packets = bundle["packets"]
    if not isinstance(packets, dict) or "table" not in packets:
        raise ValueError("bundle packet table is malformed")


# ---------------------------------------------------------------------------
# session
# ---------------------------------------------------------------------------


@dataclass
class ForensicsConfig:
    """What the forensics layer should do for one run."""

    #: Directory postmortem bundles are written into.
    bundle_dir: str | Path = "forensics"
    #: Attach a :class:`FlightRecorder`.
    flight_recorder: bool = False
    #: Recorder history window in cycles.
    recorder_window: int = 4_096
    #: Recorder detail: a :data:`RECORDER_PRESETS` name or event names.
    recorder_events: str | tuple[str, ...] = "packet"
    #: Recorder events embedded in a captured bundle.
    recorder_tail: int = 200
    #: Attach a :class:`HealthMonitor`.
    health: bool = False
    #: Cycles between health probes.
    health_every: int = 2_000
    thresholds: HealthThresholds = field(default_factory=HealthThresholds)
    #: Stream for live anomaly flags (None: keep them silent, in memory).
    health_stream: Optional[IO[str]] = None


class ForensicsSession:
    """Recorder + monitor + bundle sink for one network and one run.

    A session with everything off costs nothing at runtime — no bus
    subscriptions — and only acts when the engine's failure path calls
    :meth:`capture_to_file`.
    """

    def __init__(
        self, network: "Network", config: Optional[ForensicsConfig] = None
    ) -> None:
        self.network = network
        self.config = config or ForensicsConfig()
        self.recorder: Optional[FlightRecorder] = None
        self.monitor: Optional[HealthMonitor] = None
        #: Path of the last bundle written by :meth:`capture_to_file`.
        self.bundle_path: Optional[Path] = None
        if self.config.flight_recorder:
            self.recorder = FlightRecorder(
                network,
                window=self.config.recorder_window,
                events=self.config.recorder_events,
            )
        if self.config.health:
            self.monitor = HealthMonitor(
                network,
                every=self.config.health_every,
                thresholds=self.config.thresholds,
                stream=self.config.health_stream,
            )

    @classmethod
    def attach(
        cls, network: "Network", config: Optional[ForensicsConfig] = None
    ) -> "ForensicsSession":
        return cls(network, config)

    def capture(
        self, reason: str, now: int, *, error: Optional[BaseException] = None
    ) -> dict[str, Any]:
        return capture_bundle(
            self.network,
            now=now,
            reason=reason,
            error=error,
            recorder=self.recorder,
            monitor=self.monitor,
            recorder_tail=self.config.recorder_tail,
        )

    def capture_to_file(
        self, reason: str, now: int, *, error: Optional[BaseException] = None
    ) -> Path:
        bundle = self.capture(reason, now, error=error)
        self.bundle_path = write_bundle(bundle, self.config.bundle_dir)
        return self.bundle_path

    def detach(self) -> None:
        if self.recorder is not None:
            self.recorder.detach()
        if self.monitor is not None:
            self.monitor.detach()

    def record_summary(self) -> dict[str, Any]:
        """Digest stored on the run registry's ``forensics`` field."""
        summary: dict[str, Any] = {}
        if self.monitor is not None:
            summary["health"] = self.monitor.summary()
        if self.recorder is not None:
            summary["recorder"] = {
                "window": self.recorder.window,
                "events_recorded": len(self.recorder),
                "dropped": self.recorder.dropped,
            }
        if self.bundle_path is not None:
            summary["bundle"] = str(self.bundle_path)
        return summary


# ---------------------------------------------------------------------------
# rendering (repro postmortem)
# ---------------------------------------------------------------------------


def _channel_index(bundle: dict[str, Any]) -> dict[int, dict[str, Any]]:
    return {entry["index"]: entry for entry in bundle.get("channels", [])}


def _format_channel(channels: dict[int, dict[str, Any]], link: int, vc: int) -> str:
    info = channels.get(link)
    if info is None:
        return f"link {link} vc {vc}"
    return f"link {link} vc {vc} ({info['src']}->{info['dst']} {info['kind']})"


def render_bundle_text(bundle: dict[str, Any], *, tail: int = 20) -> str:
    """The human-readable postmortem report of one bundle."""
    channels = _channel_index(bundle)
    net = bundle["network"]
    lines = [
        f"postmortem: {bundle['reason']} at cycle {bundle['cycle']}",
        f"error     : {bundle.get('error_type') or '-'}"
        + (f": {bundle['error']}" if bundle.get("error") else ""),
        f"network   : {net['n_nodes']} nodes, {net['n_links']} links, "
        f"{net['buffered_flits']} flits buffered, "
        f"{net['in_flight_flits']} in flight",
        "",
    ]
    cycle = bundle["waitfor"]["cycle"]
    if cycle:
        lines.append(f"wait-for cycle ({len(cycle)} channels — deadlocked loop):")
        for link, vc in cycle:
            lines.append(f"  {_format_channel(channels, link, vc)}")
    else:
        lines.append("wait-for cycle: none found (stall, not a resource deadlock)")
    blocked = bundle["waitfor"]["blocked"]
    if blocked:
        lines.append("")
        lines.append(f"blocked input VCs ({len(blocked)}):")
        lines.append("  node port vc state         pid      age  waiting on")
        for entry in blocked[:20]:
            wants = ", ".join(
                _format_channel(channels, want[1], want[2])
                for want in entry["wants"][:3]
            )
            lines.append(
                f"  {entry['node']:>4d} {entry['port']:>4d} {entry['vc']:>2d} "
                f"{entry['state']:<13s} {entry['pid']:>6d} {entry['age']:>7d}  "
                f"{wants}"
            )
        if len(blocked) > 20:
            lines.append(f"  ... and {len(blocked) - 20} more")
    packets = bundle["packets"]
    lines.append("")
    lines.append(f"in-flight packets ({packets['total']}):")
    lines.append("    pid  src->dst      age  flits  stage")
    for entry in packets["table"][:15]:
        lines.append(
            f"  {entry['pid']:>5d}  {entry['src']:>3d}->{entry['dst']:<3d}  "
            f"{entry['age']:>7d}  {entry['flits_in_network']:>5d}  {entry['stage']}"
        )
    if packets["total"] > 15:
        lines.append(f"  ... and {packets['total'] - 15} more")
    health = bundle.get("health")
    if health:
        lines.append("")
        lines.append(
            f"health: {health['probes']} probes, "
            f"{health['anomaly_count']} anomalies "
            f"(flags: {', '.join(health['flags']) or 'none'}), "
            f"max in-flight age {health['max_oldest_age']}"
        )
        for anomaly in health["anomalies"][:8]:
            lines.append(
                f"  cycle {anomaly['cycle']}: {anomaly['kind']}: {anomaly['detail']}"
            )
    recorder = bundle.get("recorder")
    if recorder:
        lines.append("")
        lines.append(
            f"flight recorder: {recorder['events_recorded']} events retained "
            f"(window {recorder['window']} cycles, {recorder['dropped']} dropped)"
        )
        for event in recorder["tail"][-tail:]:
            fields = ", ".join(
                f"{key}={value}"
                for key, value in event.items()
                if key not in ("event", "cycle")
            )
            lines.append(f"  cycle {event['cycle']:>8d} {event['event']:<14s} {fields}")
    return "\n".join(lines)


_BUNDLE_PAGE_STYLE = """
:root { color-scheme: light dark; }
body.viz-root {
  --surface-1: #fcfcfb; --surface-2: #f4f3f1; --grid: #e6e4df;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-8: #e34948;
  margin: 0; padding: 24px 32px 48px; background: var(--surface-1);
  color: var(--text-primary); font: 14px/1.5 system-ui, sans-serif;
  max-width: 1080px;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --surface-1: #1a1a19; --surface-2: #242423; --grid: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-8: #e66767;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
p.meta { color: var(--text-secondary); margin: 0 0 16px; }
table { border-collapse: collapse; font-size: 13px; }
th, td { padding: 4px 10px; text-align: right; border-bottom: 1px solid var(--grid); }
th { color: var(--text-secondary); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
pre { background: var(--surface-2); padding: 12px; overflow-x: auto;
      font-size: 12px; border-radius: 6px; }
.empty { color: var(--text-secondary); font-style: italic; }
"""


def render_bundle_html(bundle: dict[str, Any]) -> str:
    """A self-contained HTML postmortem page for one bundle."""
    from repro.viz import svg_node_heatmap, svg_waitfor_graph

    channels = _channel_index(bundle)
    waitfor = bundle["waitfor"]
    net = bundle["network"]
    esc = _html.escape

    nodes = sorted(
        {tuple(a) for a, _b in waitfor["edges"]}
        | {tuple(b) for _a, b in waitfor["edges"]}
    )
    labels = {}
    for vertex in nodes:
        tag, first, second = vertex
        if tag == "chan":
            info = channels.get(first)
            arrow = f"{info['src']}→{info['dst']}" if info else "?"
            labels[vertex] = f"L{first}v{second} {arrow}"
        else:
            labels[vertex] = f"inject n{first}v{second}"
    cycle_vertices = [("chan", link, vc) for link, vc in waitfor["cycle"]]
    graph_svg = (
        svg_waitfor_graph(
            nodes,
            [(tuple(a), tuple(b)) for a, b in waitfor["edges"]],
            cycle=cycle_vertices,
            labels=labels,
            title="wait-for graph (blocked flits; red loop = deadlock cycle)",
        )
        if nodes
        else '<p class="empty">no blocked flits — nothing waits on anything.</p>'
    )

    occupancy = {entry["node"]: entry["buffered"] for entry in bundle["routers"]}
    heatmap_svg = svg_node_heatmap(
        occupancy,
        net["n_nodes"],
        title="buffered flits per router",
    )

    packet_rows = "".join(
        "<tr>"
        f"<td>{entry['pid']}</td>"
        f"<td>{entry['src']}&rarr;{entry['dst']}</td>"
        f"<td>{entry['age']}</td>"
        f"<td>{entry['flits_in_network']}</td>"
        f"<td>{esc(entry['stage'])}</td>"
        "</tr>"
        for entry in bundle["packets"]["table"][:40]
    )
    packet_table = (
        "<table><thead><tr><th>pid</th><th>route</th><th>age</th>"
        "<th>flits</th><th>stage</th></tr></thead>"
        f"<tbody>{packet_rows}</tbody></table>"
        if packet_rows
        else '<p class="empty">no packets in flight.</p>'
    )

    health = bundle.get("health")
    if health:
        anomaly_rows = "".join(
            f"<tr><td>{a['cycle']}</td><td>{esc(a['kind'])}</td>"
            f"<td>{esc(a['detail'])}</td></tr>"
            for a in health["anomalies"]
        )
        health_html = (
            f"<p class=\"meta\">{health['probes']} probes, "
            f"{health['anomaly_count']} anomalies, max in-flight age "
            f"{health['max_oldest_age']}</p>"
            + (
                "<table><thead><tr><th>cycle</th><th>kind</th><th>detail</th>"
                f"</tr></thead><tbody>{anomaly_rows}</tbody></table>"
                if anomaly_rows
                else '<p class="empty">no anomalies flagged.</p>'
            )
        )
    else:
        health_html = '<p class="empty">no health monitor was attached.</p>'

    recorder = bundle.get("recorder")
    if recorder and recorder["tail"]:
        tail_text = "\n".join(
            f"cycle {event['cycle']:>8d} {event['event']:<14s} "
            + ", ".join(
                f"{key}={value}"
                for key, value in event.items()
                if key not in ("event", "cycle")
            )
            for event in recorder["tail"]
        )
        recorder_html = (
            f"<p class=\"meta\">{recorder['events_recorded']} events retained, "
            f"window {recorder['window']} cycles, {recorder['dropped']} "
            f"dropped</p><pre>{esc(tail_text)}</pre>"
        )
    else:
        recorder_html = '<p class="empty">no flight recorder was attached.</p>'

    error_line = (
        f"{esc(str(bundle.get('error_type')))}: {esc(str(bundle.get('error')))}"
        if bundle.get("error")
        else "no exception recorded"
    )
    sections = [
        f"<h1>postmortem — {esc(bundle['reason'])} at cycle {bundle['cycle']}</h1>",
        f'<p class="meta">{error_line} &middot; {net["n_nodes"]} nodes, '
        f"{net['n_links']} links &middot; {net['buffered_flits']} flits "
        f"buffered, {net['in_flight_flits']} in flight</p>",
        "<h2>Wait-for graph</h2>",
        f"<figure>{graph_svg}</figure>",
        "<h2>Router occupancy</h2>",
        f"<figure>{heatmap_svg}</figure>",
        "<h2>In-flight packets</h2>",
        packet_table,
        "<h2>Health</h2>",
        health_html,
        "<h2>Flight recorder tail</h2>",
        recorder_html,
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">"
        "<title>repro postmortem</title>"
        f"<style>{_BUNDLE_PAGE_STYLE}</style></head>"
        f"<body class=\"viz-root\">{''.join(sections)}</body></html>\n"
    )
