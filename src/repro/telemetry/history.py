"""Per-metric time series over the run registry (`repro regress` input).

``repro compare`` diffs two hand-picked artifacts; the sentinel needs
the whole trajectory.  This module turns the append-only registry
(``runs/runs.jsonl``, the ``kind="bench"`` records `repro bench` has
appended since PR 7) plus any stored ``BENCH_<n>.json`` files into
aligned per-case, per-metric series:

* ``cycles_per_second`` — median suite throughput (higher is better);
* ``host.<phase>`` — per-phase ns/cycle from the host-time ledger
  (lower is better), plus auxiliary ``host.<phase>.share`` series the
  sentinel uses only for culprit hints;
* ``mem.peak_bytes`` — peak traced heap of the untimed memory rep
  (lower is better); ``NaN`` for pre-mem artifacts;
* ``digest.stable`` — 1.0 when a run's event-digest chain matches the
  previous comparable run's, 0.0 when it differs under the same config,
  ``NaN`` when incomparable (config changed, missing digests).

Observations from bench files and registry records describing the same
suite run (same ``created`` stamp) are deduplicated; loading is
strict/lenient exactly like :class:`~repro.telemetry.runstore.RunStore`
— lenient mode counts unreadable sources in :attr:`RunHistory.skipped`
instead of raising.

Pure stdlib, no simulator imports at module load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

NAN = float("nan")


@dataclass(frozen=True)
class SeriesPoint:
    """One observation of one metric: where it came from and its value."""

    key: str  #: run_id or bench file name — what `repro regress` prints
    created: str  #: ISO-8601 UTC stamp; the series sort key
    git_rev: str
    config_hash: str
    value: float  #: NaN when this run did not carry the metric


@dataclass
class MetricSeries:
    """One metric's trajectory for one bench case, oldest first."""

    case: str
    metric: str
    higher_is_better: bool
    points: list[SeriesPoint] = field(default_factory=list)
    #: Auxiliary series feed culprit hints only — the sentinel never
    #: issues verdicts on them (e.g. ``host.<phase>.share``).
    auxiliary: bool = False

    @property
    def values(self) -> list[float]:
        return [p.value for p in self.points]

    def finite_count(self) -> int:
        return sum(1 for p in self.points if math.isfinite(p.value))


@dataclass
class RunHistory:
    """Every extracted series, keyed ``(case, metric)``, plus load stats."""

    series: dict[tuple[str, str], MetricSeries] = field(default_factory=dict)
    runs: int = 0  #: deduplicated suite runs contributing observations
    skipped: int = 0  #: unreadable registry lines / bench files (lenient)

    def cases(self) -> list[str]:
        return sorted({case for case, _ in self.series})

    def get(self, case: str, metric: str) -> Optional[MetricSeries]:
        return self.series.get((case, metric))

    def ordered(self) -> list[MetricSeries]:
        """Primary (non-auxiliary) series in stable render order."""
        return [
            self.series[key]
            for key in sorted(self.series)
            if not self.series[key].auxiliary
        ]


# ---------------------------------------------------------------------------
# observation harvesting
# ---------------------------------------------------------------------------


@dataclass
class _Observation:
    """One suite run's raw per-case facts, before series alignment."""

    key: str
    created: str
    git_rev: str
    config_hash: str
    cps: float = NAN
    host_ns: dict[str, float] = field(default_factory=dict)
    host_shares: dict[str, float] = field(default_factory=dict)
    mem_peak: float = NAN
    digest_final: Optional[str] = None
    digest_cycles: Optional[int] = None


def _num(value: Any) -> float:
    """A finite float, or NaN for anything missing or malformed."""
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return NAN


def _host_blocks(host: Any) -> tuple[dict[str, float], dict[str, float]]:
    if not isinstance(host, dict):
        return {}, {}
    ns = {
        str(k): _num(v)
        for k, v in (host.get("ns_per_cycle") or {}).items()
        if math.isfinite(_num(v))
    }
    shares = {
        str(k): _num(v)
        for k, v in (host.get("shares") or {}).items()
        if math.isfinite(_num(v))
    }
    return ns, shares


def _mem_peak(mem: Any) -> float:
    if isinstance(mem, dict):
        return _num(mem.get("peak_bytes"))
    return NAN


def _observations_from_bench_doc(doc: dict[str, Any], key: str) -> dict[str, _Observation]:
    per_case: dict[str, _Observation] = {}
    created = str(doc.get("created", ""))
    git_rev = str(doc.get("git_rev", "unknown"))
    for case_name, case in (doc.get("cases") or {}).items():
        if not isinstance(case, dict):
            continue
        obs = _Observation(
            key=key,
            created=created,
            git_rev=git_rev,
            config_hash=str(case.get("config_hash", "")),
        )
        cps = case.get("cps")
        obs.cps = _num(cps.get("median")) if isinstance(cps, dict) else NAN
        obs.host_ns, obs.host_shares = _host_blocks(case.get("host"))
        obs.mem_peak = _mem_peak(case.get("mem"))
        digest = case.get("digest")
        if isinstance(digest, dict) and digest.get("final"):
            obs.digest_final = str(digest["final"])
            cycles = digest.get("cycles")
            obs.digest_cycles = int(cycles) if isinstance(cycles, int) else None
        per_case[str(case_name)] = obs
    return per_case


def _observations_from_record(record: Any) -> dict[str, _Observation]:
    """Per-case facts from one ``kind="bench"`` registry record.

    Tolerates records written by older builds: missing ``mem`` /
    ``digest_final`` keys simply yield NaN / None observations.
    """
    per_case: dict[str, _Observation] = {}
    bench = getattr(record, "bench", None) or {}
    for case_name, summary in bench.items():
        if not isinstance(summary, dict):
            continue
        obs = _Observation(
            key=str(getattr(record, "run_id", "")),
            created=str(getattr(record, "created", "")),
            git_rev=str(getattr(record, "git_rev", "unknown")),
            config_hash=str(getattr(record, "config_hash", "")),
            cps=_num(summary.get("cps_median")),
        )
        obs.host_ns, obs.host_shares = _host_blocks(summary.get("host"))
        obs.mem_peak = _mem_peak(summary.get("mem"))
        final = summary.get("digest_final")
        if isinstance(final, str) and final:
            obs.digest_final = final
        per_case[str(case_name)] = obs
    return per_case


# ---------------------------------------------------------------------------
# series alignment
# ---------------------------------------------------------------------------


def _digest_stability(observations: list[_Observation]) -> list[float]:
    """1.0 match / 0.0 mismatch / NaN incomparable, per observation."""
    flags: list[float] = []
    previous: Optional[_Observation] = None
    for obs in observations:
        if obs.digest_final is None:
            flags.append(NAN)
            continue
        comparable = (
            previous is not None
            and previous.digest_final is not None
            and previous.config_hash == obs.config_hash
            and previous.config_hash != ""
            and previous.digest_cycles == obs.digest_cycles
        )
        if not comparable:
            flags.append(NAN)
        else:
            assert previous is not None
            flags.append(1.0 if obs.digest_final == previous.digest_final else 0.0)
        previous = obs
    return flags


def _series_for_case(case: str, observations: list[_Observation]) -> list[MetricSeries]:
    def points(values: Iterable[float]) -> list[SeriesPoint]:
        return [
            SeriesPoint(o.key, o.created, o.git_rev, o.config_hash, v)
            for o, v in zip(observations, values)
        ]

    series = [
        MetricSeries(
            case,
            "cycles_per_second",
            higher_is_better=True,
            points=points(o.cps for o in observations),
        )
    ]
    phases = sorted({p for o in observations for p in o.host_ns})
    for phase in phases:
        series.append(
            MetricSeries(
                case,
                f"host.{phase}",
                higher_is_better=False,
                points=points(o.host_ns.get(phase, NAN) for o in observations),
            )
        )
        series.append(
            MetricSeries(
                case,
                f"host.{phase}.share",
                higher_is_better=False,
                points=points(o.host_shares.get(phase, NAN) for o in observations),
                auxiliary=True,
            )
        )
    series.append(
        MetricSeries(
            case,
            "mem.peak_bytes",
            higher_is_better=False,
            points=points(o.mem_peak for o in observations),
        )
    )
    series.append(
        MetricSeries(
            case,
            "digest.stable",
            higher_is_better=True,
            points=points(_digest_stability(observations)),
        )
    )
    return series


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def load_history(
    runs_dir: str | Path | None = "runs",
    *,
    bench_dirs: Iterable[str | Path] = (),
    strict: bool = False,
) -> RunHistory:
    """Harvest the registry + bench files into an aligned :class:`RunHistory`.

    ``runs_dir=None`` skips the registry entirely.  In lenient mode
    (default) unreadable registry lines and malformed bench files are
    counted in ``RunHistory.skipped`` rather than raised, mirroring
    ``RunStore.load(strict=False)``.
    """
    from .bench import bench_files, load_bench

    skipped = 0
    # (created, key) -> per-case observations; bench files win over the
    # registry record describing the same suite run (they carry the
    # per-case config hash and the full digest block).
    harvested: dict[str, dict[str, _Observation]] = {}

    for directory in bench_dirs:
        for path in bench_files(directory):
            try:
                doc = load_bench(path)
            except (ValueError, OSError):
                if strict:
                    raise
                skipped += 1
                continue
            created = str(doc.get("created", ""))
            harvested[created] = _observations_from_bench_doc(doc, path.name)

    if runs_dir is not None:
        from .runstore import RunStore

        store = RunStore(runs_dir)
        records = store.load(strict=strict)
        skipped += store.skipped
        for record in records:
            if getattr(record, "kind", "") != "bench" or not getattr(record, "bench", None):
                continue
            created = str(getattr(record, "created", ""))
            if created in harvested:
                continue  # the bench file already covers this suite run
            harvested[created] = _observations_from_record(record)

    history = RunHistory(skipped=skipped, runs=len(harvested))
    if not harvested:
        return history

    ordered_runs = [harvested[created] for created in sorted(harvested)]
    cases = sorted({case for run in ordered_runs for case in run})
    for case in cases:
        observations = [run[case] for run in ordered_runs if case in run]
        for metric_series in _series_for_case(case, observations):
            history.series[(case, metric_series.metric)] = metric_series
    return history


__all__ = [
    "MetricSeries",
    "RunHistory",
    "SeriesPoint",
    "load_history",
]
