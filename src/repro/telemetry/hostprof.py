"""Host wall-time attribution and profiler folding (``repro profile``).

PR 4's latency ledger answered "where do a packet's *simulated* cycles
go?".  This module answers the twin question for the machine running the
simulation: **where does host wall-clock time go inside the per-cycle
loop?**  That attribution is the oracle the planned batched engine core
will be motivated and validated against — you cannot claim a kernel
rewrite helped a phase you never measured.

Two instruments live here:

* :class:`HostTimeLedger` — cheap ``perf_counter_ns`` phase timers the
  engine installs at its phase boundaries (see
  :meth:`repro.sim.engine.Engine.run` and the ``step_timed`` hooks on
  :class:`~repro.noc.router.Router`, :class:`~repro.noc.link.Link` and
  :class:`~repro.core.phy.HeteroPhyLink`).  Attributed time is checked
  against the timed-loop total (the same conservation discipline as the
  latency ledger's invariant).  A *strided* mode times every Nth cycle
  and extrapolates, dropping overhead below the 5% budget.
* cProfile **folding** — :func:`fold_profile` maps every profiled
  function to a phase-rooted synthetic stack, emitted as a
  speedscope-compatible JSON document (:func:`speedscope_document`) and
  as collapsed-stack flamegraph text (:func:`collapsed_stacks`).

Pure stdlib; simulator types appear only under ``TYPE_CHECKING`` (see
the package initializer's import note).
"""

from __future__ import annotations

import json
import math
import pstats
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import cProfile

#: Host phases the engine attributes wall time to, in pipeline order.
#: The string literals at the timing sites (``Engine._tick_profiled``,
#: ``Network.step_timed``, ``Router.step_timed``, ``Link.step_timed``,
#: ``HeteroPhyLink.step_timed``) must stay in sync with this tuple —
#: ``tests/test_hostprof.py`` checks that a profiled run never
#: accumulates time under an unknown phase name.
PHASES: tuple[str, ...] = (
    "inject",  # workload step + packet injection (source queues)
    "rc_va",  # router routing computation + VC allocation
    "sa_st",  # router switch allocation + switch traversal
    "link",  # plain pipelined-link advance (incl. credit delivery)
    "phy_rx",  # hetero-PHY receive: ROB insert/release to downstream
    "phy_tx",  # hetero-PHY serialize/dispatch + credit delivery
    "telemetry",  # cycle_end bus fan-out (per-event dispatch costs land
    #               in the phase whose code emitted the event)
    "stats",  # engine epilogue: deadlock watchdog + cycle bookkeeping
)

#: Synthetic phase charged with the residual between the timed-loop
#: total and the sum of attributed phases: work-list bookkeeping,
#: activity-flag maintenance and the timers themselves.
RESIDUAL_PHASE = "dispatch"

#: Every phase a summary can carry, in rendering order — the timed
#: taxonomy plus the residual.  Shared by the dashboard's stacked bars
#: and the memory ledger's site folding so the panels line up.
ALL_PHASES: tuple[str, ...] = (*PHASES, RESIDUAL_PHASE)

#: Default conservation tolerance: attributed time must reach this
#: fraction of the timed-loop total (mirrors the 5% acceptance budget).
CONSERVATION_TOLERANCE = 0.05


class HostprofError(RuntimeError):
    """The host-time attribution violated its conservation invariant."""


class HostTimeLedger:
    """Attributes engine wall time to named phases.

    One ledger observes one engine run.  Attach it before the run
    (``engine.hostprof = ledger`` or ``TelemetryConfig(host_time=True)``)
    and read :meth:`summary` afterwards.  ``stride=N`` times every Nth
    cycle and extrapolates (the estimator assumes sampled cycles are
    representative, which holds for the stationary workloads of the
    bench suite); ``stride=1`` times every cycle.

    The ledger is a passive observer: it never touches simulator state,
    so a run with the ledger attached produces byte-identical statistics
    to one without (checked by ``tests/test_hostprof.py``).
    """

    def __init__(
        self,
        *,
        stride: int = 1,
        clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        #: Nanosecond clock; injectable so tests can drive a fake one.
        self.clock = clock
        #: Accumulated nanoseconds per phase (timed cycles only).
        self.phases: dict[str, int] = dict.fromkeys(PHASES, 0)
        #: Cycles actually timed / all cycles the engine ran.
        self.timed_cycles = 0
        self.total_cycles = 0
        #: Total wall nanoseconds of the timed ticks (phase sums + residual).
        self.loop_ns = 0

    # -- engine-side hooks --------------------------------------------------
    def wants(self, cycle: int) -> bool:
        """True when ``cycle`` should be timed (the stride filter)."""
        return cycle % self.stride == 0

    def note_plain_cycle(self) -> None:
        """An untimed (stride-skipped) cycle ran."""
        self.total_cycles += 1

    def note_timed_cycle(self, tick_ns: int) -> None:
        """A timed cycle ran; ``tick_ns`` is its full tick wall time."""
        self.timed_cycles += 1
        self.total_cycles += 1
        self.loop_ns += tick_ns

    # -- results ------------------------------------------------------------
    @property
    def attributed_ns(self) -> int:
        """Nanoseconds attributed to named phases (excludes the residual)."""
        return sum(self.phases.values())

    @property
    def conservation(self) -> float:
        """Attributed fraction of the timed-loop total (target: >= 0.95)."""
        if self.loop_ns <= 0:
            return math.nan
        return self.attributed_ns / self.loop_ns

    def check_conservation(self, tolerance: float = CONSERVATION_TOLERANCE) -> None:
        """Raise :class:`HostprofError` unless attribution conserves time.

        Attributed time must be within ``tolerance`` of the timed-loop
        total on *both* sides — a sum above the loop total would mean a
        phase was double-counted.
        """
        ratio = self.conservation
        if math.isnan(ratio):
            raise HostprofError("no timed cycles — was the ledger attached?")
        if ratio < 1.0 - tolerance or ratio > 1.0 + tolerance:
            raise HostprofError(
                f"host-time attribution violates conservation: attributed "
                f"{self.attributed_ns} ns is {ratio:.1%} of the "
                f"{self.loop_ns} ns timed-loop total "
                f"(tolerance {tolerance:.0%})"
            )

    def summary(self) -> dict[str, Any]:
        """Full attribution summary (extrapolated when strided).

        ``phases`` maps each phase — including the ``dispatch`` residual
        — to raw nanoseconds, ns/timed-cycle, its share of the timed-loop
        total, and the stride-extrapolated estimate for the whole run.
        """
        timed = self.timed_cycles
        loop = self.loop_ns
        scale = self.total_cycles / timed if timed else math.nan
        residual = max(0, loop - self.attributed_ns)
        phases: dict[str, dict[str, float]] = {}
        for name in (*PHASES, RESIDUAL_PHASE):
            ns = residual if name == RESIDUAL_PHASE else self.phases[name]
            phases[name] = {
                "ns": float(ns),
                "ns_per_cycle": ns / timed if timed else math.nan,
                "share": ns / loop if loop else math.nan,
                "est_total_ns": ns * scale if timed else math.nan,
            }
        return {
            "stride": self.stride,
            "timed_cycles": timed,
            "total_cycles": self.total_cycles,
            "loop_ns": loop,
            "attributed_ns": self.attributed_ns,
            "conservation": self.conservation,
            "ns_per_cycle": loop / timed if timed else math.nan,
            "est_loop_ns": loop * scale if timed else math.nan,
            "phases": phases,
        }

    def record_summary(self) -> dict[str, Any]:
        """Compact summary for ``BENCH_*.json`` / run-registry records."""
        summary = self.summary()
        return {
            "stride": self.stride,
            "timed_cycles": self.timed_cycles,
            "total_cycles": self.total_cycles,
            "conservation": summary["conservation"],
            "ns_per_cycle": {
                name: cell["ns_per_cycle"] for name, cell in summary["phases"].items()
            },
            "shares": {name: cell["share"] for name, cell in summary["phases"].items()},
        }


def _fmt_ns(ns: float) -> str:
    if math.isnan(ns):
        return "n/a"
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns:.0f} ns"


def render_host_table(summary: dict[str, Any]) -> str:
    """Plain-text phase breakdown of a :meth:`HostTimeLedger.summary`."""
    lines = [
        f"host-time attribution: {summary['timed_cycles']}/"
        f"{summary['total_cycles']} cycles timed "
        f"(stride {summary['stride']}), "
        f"{_fmt_ns(summary['ns_per_cycle'])}/cycle, "
        f"conservation {summary['conservation']:.1%}",
        f"{'phase':>12s} {'ns/cycle':>12s} {'share':>8s} {'est total':>12s}",
    ]
    phases = summary["phases"]
    ranked = sorted(phases.items(), key=lambda item: -item[1]["ns"])
    for name, cell in ranked:
        if not cell["ns"]:
            continue
        lines.append(
            f"{name:>12s} {cell['ns_per_cycle']:>12,.0f} "
            f"{cell['share']:>8.1%} {_fmt_ns(cell['est_total_ns']):>12s}"
        )
    lines.append(
        f"{'total':>12s} {summary['ns_per_cycle']:>12,.0f} "
        f"{'100.0%':>8s} {_fmt_ns(summary['est_loop_ns']):>12s}"
    )
    return "\n".join(lines)


# -- cProfile folding ---------------------------------------------------------

#: Function-name overrides for files whose functions span phases.
_PHASE_BY_FUNC: dict[str, str] = {
    # repro/noc/router.py
    "_stage_rc_va": "rc_va",
    "_try_vc_allocate": "rc_va",
    "_stage_sa": "sa_st",
    "_allocate_output": "sa_st",
    "_send_flit": "sa_st",
    "_eject": "sa_st",
    "inject": "inject",
    # repro/core/phy.py
    "_receive": "phy_rx",
    "_dispatch": "phy_tx",
    "_issue": "phy_tx",
    "_decide_bypass": "phy_tx",
}

#: Path-substring → phase rules, first match wins (paths normalized to "/").
_PHASE_BY_PATH: tuple[tuple[str, str], ...] = (
    ("repro/traffic/", "inject"),
    ("repro/routing/", "rc_va"),
    ("repro/noc/link", "link"),
    ("repro/core/rob", "phy_rx"),
    ("repro/core/", "phy_tx"),
    ("repro/sim/stats", "stats"),
    ("repro/telemetry/", "telemetry"),
    ("repro/sim/engine", RESIDUAL_PHASE),
    ("repro/noc/network", RESIDUAL_PHASE),
)


def phase_of(filename: str, funcname: str) -> str:
    """Heuristic phase of one profiled function (``"other"`` if unknown).

    The mapping mirrors :data:`PHASES`, so the flamegraph's second level
    lines up with the :class:`HostTimeLedger` breakdown table.
    """
    if funcname in _PHASE_BY_FUNC:
        return _PHASE_BY_FUNC[funcname]
    path = filename.replace("\\", "/")
    for needle, phase in _PHASE_BY_PATH:
        if needle in path:
            return phase
    return "other"


def _frame_label(filename: str, funcname: str) -> str:
    path = filename.replace("\\", "/")
    if "/" in path:
        # Keep the package-relative tail: src/repro/noc/router.py -> repro/noc/router.py
        parts = path.split("/")
        if "repro" in parts:
            path = "/".join(parts[parts.index("repro"):])
        else:
            path = parts[-1]
    if path.startswith("~"):  # pstats marker for C builtins
        return funcname
    return f"{path}:{funcname}"


def fold_profile(profile: "cProfile.Profile") -> list[tuple[tuple[str, ...], int]]:
    """Fold a cProfile capture into phase-rooted synthetic stacks.

    Each profiled function becomes one ``(stack, self_time_ns)`` row with
    the stack ``("engine", <phase>, <module:function>)`` — the phase→stack
    mapping that makes the flamegraph comparable to the
    :class:`HostTimeLedger` table.  Rows are sorted hottest-first.
    """
    stats = pstats.Stats(profile)
    rows: list[tuple[tuple[str, ...], int]] = []
    for (filename, _lineno, funcname), entry in stats.stats.items():  # type: ignore[attr-defined]
        self_ns = int(entry[2] * 1e9)  # tt: total time excluding subcalls
        if self_ns <= 0:
            continue
        stack = ("engine", phase_of(filename, funcname), _frame_label(filename, funcname))
        rows.append((stack, self_ns))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def collapsed_stacks(rows: list[tuple[tuple[str, ...], int]]) -> str:
    """Collapsed-stack flamegraph text (``flamegraph.pl`` input format).

    One ``frame;frame;frame weight`` line per stack; weights are integer
    microseconds (zero-weight rows are dropped).
    """
    lines = []
    for stack, ns in rows:
        weight = ns // 1000
        if weight <= 0:
            continue
        lines.append(";".join(stack) + f" {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(
    rows: list[tuple[tuple[str, ...], int]], *, name: str = "repro profile"
) -> dict[str, Any]:
    """Build a speedscope-compatible ``sampled`` profile document.

    Loads directly in https://www.speedscope.app — every folded stack
    becomes one sample whose weight is the function's self time in
    nanoseconds.
    """
    frames: list[dict[str, str]] = []
    index: dict[str, int] = {}
    samples: list[list[int]] = []
    weights: list[int] = []
    for stack, ns in rows:
        sample = []
        for label in stack:
            frame_idx = index.get(label)
            if frame_idx is None:
                frame_idx = index[label] = len(frames)
                frames.append({"name": label})
            sample.append(frame_idx)
        samples.append(sample)
        weights.append(ns)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def validate_speedscope(doc: Any) -> None:
    """Schema-check a speedscope document; raises ``ValueError`` on defects.

    Covers the invariants speedscope's importer actually relies on:
    frames table present, one ``sampled`` profile, equal-length
    samples/weights, and every sample index resolving to a frame.
    """
    if not isinstance(doc, dict):
        raise ValueError("speedscope document must be a JSON object")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list) or not all(
        isinstance(f, dict) and isinstance(f.get("name"), str) for f in frames
    ):
        raise ValueError("shared.frames must be a list of {name: str} objects")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("profiles must be a non-empty list")
    for profile in profiles:
        if profile.get("type") != "sampled":
            raise ValueError(f"unsupported profile type {profile.get('type')!r}")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ValueError("sampled profile needs samples and weights lists")
        if len(samples) != len(weights):
            raise ValueError(
                f"samples/weights length mismatch: {len(samples)} != {len(weights)}"
            )
        for sample in samples:
            if not sample:
                raise ValueError("empty sample stack")
            for idx in sample:
                if not isinstance(idx, int) or not 0 <= idx < len(frames):
                    raise ValueError(f"sample frame index {idx!r} out of range")
        if any(not isinstance(w, (int, float)) or w < 0 for w in weights):
            raise ValueError("weights must be non-negative numbers")
        end = profile.get("endValue", 0)
        if abs(sum(weights) - end) > max(1, 0.01 * end):
            raise ValueError("endValue does not match the weight sum")


def write_speedscope(
    doc: dict[str, Any], path: str | Path
) -> Path:
    """Validate and write one speedscope document; returns the path."""
    validate_speedscope(doc)
    path = Path(path)
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return path


def load_speedscope(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a speedscope JSON file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_speedscope(doc)
    return doc


__all__ = [
    "ALL_PHASES",
    "CONSERVATION_TOLERANCE",
    "HostTimeLedger",
    "HostprofError",
    "PHASES",
    "RESIDUAL_PHASE",
    "collapsed_stacks",
    "fold_profile",
    "load_speedscope",
    "phase_of",
    "render_host_table",
    "speedscope_document",
    "validate_speedscope",
    "write_speedscope",
]
