"""Live run telemetry: schema-versioned JSONL feeds for ``repro watch``.

:class:`LiveFeed` subscribes to the ``cycle_end`` event and appends
line-delimited JSON events to ``runs/live/<run_id>.jsonl`` while a run is
in flight: one ``start`` event with the run's identity, a ``heartbeat``
every ``every`` cycles carrying progress, smoothed simulation speed and
an ETA, every closed :class:`~repro.telemetry.metrics.EpochSample`, every
:class:`~repro.telemetry.forensics.HealthMonitor` probe and anomaly flag,
and a terminal ``finish`` or ``failure`` event (the latter pointing at
the postmortem bundle when forensics captured one).  The feed is the
write side of the fleet view served by :mod:`repro.telemetry.server`.

The feed is opt-in (``TelemetryConfig.live`` / ``repro simulate --live``)
and piggybacks on collectors the session already attached: at each
heartbeat it drains *new* entries from ``EpochMetrics.samples`` and the
health monitor's ``probes`` / ``anomalies`` lists by position, so the hot
path stays one modulo test per cycle and the zero-subscriber bus contract
is untouched when the feed is off.  :class:`TelemetrySession` attaches the
feed *last*, so the documented subscription-order guarantee means epoch
and health state is already up to date when a heartbeat samples it.

Like the registry and forensics bundles, the event stream is
schema-versioned: :func:`validate_live_event` checks one event,
:func:`read_feed` loads and validates a whole feed, and
:func:`feed_status` folds a feed into the compact per-run status dict the
fleet view renders.  This module is pure stdlib and must stay free of
``repro.noc`` / ``repro.sim`` imports at module load (see the package
initializer's import note).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from .progress import EtaEstimator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

    from .digest import RunDigest
    from .forensics import HealthMonitor
    from .metrics import EpochMetrics

#: Version of the live-feed event schema.  Bump on incompatible changes;
#: :func:`validate_live_event` rejects events written by other versions.
LIVE_SCHEMA_VERSION = 1

#: Default feed directory, relative to the run registry directory.
DEFAULT_LIVE_SUBDIR = "live"

#: Payload fields every event kind must carry (beyond the envelope).
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    "start": ("meta",),
    "heartbeat": ("cycle", "cps", "eta_seconds", "in_network", "delivered_fraction"),
    "epoch": ("epoch",),
    "health": ("probe",),
    "anomaly": ("cycle", "anomaly_kind", "detail"),
    "finish": ("cycle", "wall_seconds", "stats"),
    "failure": ("cycle", "reason", "error", "bundle"),
}

#: Envelope fields every event carries.
ENVELOPE_FIELDS = ("schema_version", "run_id", "seq", "wall", "kind")


class LiveFeedError(ValueError):
    """A live-feed event could not be validated or a feed line read."""


def live_feed_path(directory: str | Path, run_id: str) -> Path:
    """The feed path for one run id under a live-feed directory."""
    return Path(directory) / f"{run_id}.jsonl"


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats with ``None`` so lines stay strict JSON."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def validate_live_event(event: Any) -> dict[str, Any]:
    """Check one feed event against the schema; return it on success."""
    if not isinstance(event, dict):
        raise LiveFeedError(f"live event is not a JSON object: {type(event).__name__}")
    version = event.get("schema_version")
    if version != LIVE_SCHEMA_VERSION:
        raise LiveFeedError(
            f"live event schema v{version!r} is not supported "
            f"(this build reads v{LIVE_SCHEMA_VERSION})"
        )
    for name in ENVELOPE_FIELDS:
        if name not in event:
            raise LiveFeedError(f"live event is missing envelope field {name!r}")
    kind = event["kind"]
    required = EVENT_KINDS.get(kind)
    if required is None:
        raise LiveFeedError(f"unknown live event kind {kind!r}")
    missing = [name for name in required if name not in event]
    if missing:
        raise LiveFeedError(
            f"live {kind!r} event is missing fields: {', '.join(missing)}"
        )
    return event


def read_feed(path: str | Path, *, strict: bool = True) -> list[dict[str, Any]]:
    """Load and validate one feed file.

    With ``strict=False`` unreadable lines (truncated tail of an in-flight
    run, corrupt JSON, foreign schema) are skipped instead of raising.
    """
    path = Path(path)
    events: list[dict[str, Any]] = []
    if not path.is_file():
        return events
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(validate_live_event(json.loads(line)))
            except (json.JSONDecodeError, LiveFeedError) as exc:
                if strict:
                    raise LiveFeedError(
                        f"{path}:{number}: unreadable live event: {exc}"
                    ) from None
    return events


def feed_status(
    events: list[dict[str, Any]], *, now: Optional[float] = None
) -> dict[str, Any]:
    """Fold a feed's events into the per-run status the fleet view shows."""
    status: dict[str, Any] = {
        "run_id": events[0].get("run_id", "") if events else "",
        "state": "pending",
        "meta": {},
        "cycle": 0,
        "total_cycles": None,
        "fraction": None,
        "cps": None,
        "eta_seconds": None,
        "delivered_fraction": None,
        "epochs": 0,
        "anomalies": [],
        "last_wall": None,
        "age_seconds": None,
        "wall_seconds": None,
        "stats": {},
        "digest": None,
        "reason": None,
        "bundle": None,
        "error": None,
    }
    for event in events:
        kind = event.get("kind")
        wall = event.get("wall")
        if isinstance(wall, (int, float)):
            status["last_wall"] = wall
        cycle = event.get("cycle")
        if isinstance(cycle, int):
            status["cycle"] = max(status["cycle"], cycle)
        if kind == "start":
            status["state"] = "running"
            status["meta"] = event.get("meta") or {}
            status["total_cycles"] = status["meta"].get("total_cycles")
        elif kind == "heartbeat":
            status["cps"] = event.get("cps")
            status["eta_seconds"] = event.get("eta_seconds")
            status["delivered_fraction"] = event.get("delivered_fraction")
        elif kind == "epoch":
            status["epochs"] += 1
        elif kind == "anomaly":
            status["anomalies"].append(
                {
                    "cycle": event.get("cycle"),
                    "kind": event.get("anomaly_kind"),
                    "detail": event.get("detail"),
                }
            )
        elif kind == "finish":
            status["state"] = "finished"
            status["stats"] = event.get("stats") or {}
            status["wall_seconds"] = event.get("wall_seconds")
            status["eta_seconds"] = 0.0
            status["digest"] = event.get("digest")
        elif kind == "failure":
            status["state"] = "failed"
            status["reason"] = event.get("reason")
            status["error"] = event.get("error")
            status["bundle"] = event.get("bundle")
    total = status["total_cycles"]
    if isinstance(total, int) and total > 0:
        status["fraction"] = min(1.0, status["cycle"] / total)
    if status["last_wall"] is not None:
        reference = time.time() if now is None else now
        status["age_seconds"] = max(0.0, reference - status["last_wall"])
    return status


class LiveFeed:
    """Streams one run's lifecycle, progress, epochs and health to a feed.

    Parameters
    ----------
    network:
        The built network to observe.
    run_id:
        Registry run id the feed is keyed by (joins the feed to its
        :class:`~repro.telemetry.runstore.RunRecord` in the fleet view).
    directory:
        Directory the ``<run_id>.jsonl`` feed is appended under.
    every:
        Cycles between heartbeat events (>= 1).
    total_cycles:
        When known, heartbeats include completion fraction and ETA.
    metrics / monitor:
        Session collectors to drain at heartbeats (optional).
    digest:
        Session run digest (optional); its final chain rides the terminal
        ``finish`` event as an **optional** payload key, so feeds written
        before the digest existed still validate.
    """

    def __init__(
        self,
        network: "Network",
        *,
        run_id: str,
        directory: str | Path = f"runs/{DEFAULT_LIVE_SUBDIR}",
        every: int = 1_000,
        total_cycles: Optional[int] = None,
        metrics: Optional["EpochMetrics"] = None,
        monitor: Optional["HealthMonitor"] = None,
        digest: Optional["RunDigest"] = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.network = network
        self.run_id = run_id
        self.directory = Path(directory)
        self.every = every
        self.total_cycles = total_cycles
        self.metrics = metrics
        self.monitor = monitor
        self.digest = digest
        self.eta = EtaEstimator(total_cycles)
        self.events_written = 0
        self._seq = 0
        self._epochs_sent = 0
        self._probes_sent = 0
        self._anomalies_sent = 0
        self._closed = False
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = live_feed_path(self.directory, run_id)
        self._handle = self.path.open("w", encoding="utf-8")
        network.telemetry.subscribe("cycle_end", self._on_cycle_end)

    # -- event emission ------------------------------------------------------
    def _emit(self, kind: str, payload: dict[str, Any]) -> None:
        if self._closed:
            return
        event = {
            "schema_version": LIVE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "seq": self._seq,
            "wall": time.time(),
            "kind": kind,
        }
        event.update(_json_safe(payload))
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        self._seq += 1
        self.events_written += 1

    def start(self, meta: dict[str, Any]) -> None:
        """Announce the run: identity, geometry, workload, horizon."""
        meta = dict(meta)
        meta.setdefault("total_cycles", self.total_cycles)
        self._emit("start", {"meta": meta})

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        cycle = now + 1
        if cycle % self.every:
            return
        self._heartbeat(cycle)

    def _heartbeat(self, cycle: int) -> None:
        cps = self.eta.update(cycle)
        stats = self.network.stats
        in_network = self.network.buffered_flits() + self.network.in_flight_flits()
        self._emit(
            "heartbeat",
            {
                "cycle": cycle,
                "fraction": (
                    min(1.0, cycle / self.total_cycles) if self.total_cycles else None
                ),
                "cps": cps,
                "eta_seconds": self.eta.eta_seconds(cycle),
                "in_network": in_network,
                "delivered": stats.packets_delivered,
                "delivered_fraction": stats.delivered_fraction,
            },
        )
        self._drain(cycle)

    def _drain(self, cycle: int) -> None:
        """Forward epoch samples and health events collected since last time."""
        if self.metrics is not None:
            samples = self.metrics.samples
            for sample in samples[self._epochs_sent :]:
                self._emit("epoch", {"cycle": sample.end, "epoch": sample.to_json()})
            self._epochs_sent = len(samples)
        if self.monitor is not None:
            probes = self.monitor.probes
            for probe in probes[self._probes_sent :]:
                self._emit("health", {"cycle": probe.cycle, "probe": probe.to_json()})
            self._probes_sent = len(probes)
            anomalies = self.monitor.anomalies
            for anomaly in anomalies[self._anomalies_sent :]:
                self._emit(
                    "anomaly",
                    {
                        "cycle": anomaly.cycle,
                        "anomaly_kind": anomaly.kind,
                        "detail": anomaly.detail,
                    },
                )
            self._anomalies_sent = len(anomalies)

    # -- lifecycle -----------------------------------------------------------
    def finish(self, end_cycle: int) -> Path:
        """Emit the terminal ``finish`` event and close the feed."""
        if not self._closed:
            self.eta.update(end_cycle)
            self._drain(end_cycle)
            payload: dict[str, Any] = {
                "cycle": end_cycle,
                "wall_seconds": self.eta.wall_seconds,
                "stats": dict(self.network.stats.summary()),
            }
            if self.digest is not None:
                from .digest import DIGEST_ALGO

                payload["digest"] = {
                    "final": self.digest.final,
                    "algo": DIGEST_ALGO,
                    "events_total": self.digest.events_total,
                }
            self._emit("finish", payload)
            self.close()
        return self.path

    def fail(
        self,
        reason: str,
        cycle: int,
        *,
        error: Optional[str] = None,
        bundle: Optional[str] = None,
    ) -> Path:
        """Emit the terminal ``failure`` event and close the feed.

        ``bundle`` points at the postmortem bundle when forensics captured
        one, so the fleet view can link straight to ``repro postmortem``.
        """
        if not self._closed:
            self._drain(cycle)
            self._emit(
                "failure",
                {"cycle": cycle, "reason": reason, "error": error, "bundle": bundle},
            )
            self.close()
        return self.path

    def close(self) -> None:
        """Detach from the bus and close the file (idempotent)."""
        if self._closed:
            return
        self.network.telemetry.unsubscribe("cycle_end", self._on_cycle_end)
        self._closed = True
        self._handle.close()
