"""Heap observability for the simulator (``repro bench --mem-top`` /
``repro profile --mem``).

The host-time ledger answers "where does wall time go?"; this module
answers the twin question **"where does memory go?"** — the batched
struct-of-arrays engine (ROADMAP item 1) will change the allocation
profile drastically, and a regression sentinel that only watches
throughput would wave a 3× heap blow-up straight through.

:class:`MemLedger` wraps :mod:`tracemalloc` (exact Python-heap peaks and
per-site attribution) plus ``resource.ru_maxrss`` (the OS's view, which
also sees C-level allocations).  Allocation sites are folded onto the
hostprof phase taxonomy via :func:`~repro.telemetry.hostprof.phase_of`,
so the memory table's rows line up with the wall-time table's.

Tracing roughly doubles allocation cost, so the ledger never rides a
timed bench rep — ``repro bench`` gives it its own untimed rep, exactly
like the event census and the host ledger.

Pure stdlib; no simulator imports (the package initializer's rule).
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Any

from .hostprof import ALL_PHASES, phase_of

try:  # pragma: no cover - absent on Windows
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Version stamp of the ``mem`` block written into ``BENCH_<n>.json``
#: cases, bench registry records and ``profile.mem.json``.
MEM_SCHEMA_VERSION = 1

#: Default number of top allocation sites kept in a summary.
DEFAULT_TOP_N = 10


class MemProfError(RuntimeError):
    """A memory summary failed validation or the ledger was misused."""


def _ru_maxrss_bytes() -> int | None:
    """Process peak RSS in bytes, or ``None`` where unavailable.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux but bytes
    on macOS — one of the oldest portability traps in the book.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class MemLedger:
    """Measures Python-heap usage across one observed region.

    Usage mirrors the host ledger: surround the region of interest
    (``with MemLedger() as mem: run(...)``), then read
    :meth:`record_summary`.  Peaks are reported **relative to the
    baseline at start**, so a ledger started inside a long-lived process
    measures the observed run, not the interpreter's warm-up.

    If tracemalloc is already tracing (an outer profiler, ``-X
    tracemalloc``), the ledger piggybacks on the running trace instead
    of restarting it, and leaves it running on stop.
    """

    def __init__(self, *, top_n: int = DEFAULT_TOP_N, frames: int = 1) -> None:
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        self.top_n = top_n
        self.frames = frames
        self._owns_trace = False
        self._baseline = 0
        self._running = False
        #: Filled by :meth:`stop`.
        self.peak_bytes = 0
        self.current_bytes = 0
        self.phases: dict[str, int] = {}
        self.top_sites: list[dict[str, Any]] = []

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise MemProfError("MemLedger.start() called twice")
        if tracemalloc.is_tracing():
            self._owns_trace = False
            tracemalloc.reset_peak()
            self._baseline = tracemalloc.get_traced_memory()[0]
        else:
            self._owns_trace = True
            self._baseline = 0
            tracemalloc.start(self.frames)
        self._running = True

    def stop(self) -> None:
        if not self._running:
            raise MemProfError("MemLedger.stop() without start()")
        current, peak = tracemalloc.get_traced_memory()
        snapshot = tracemalloc.take_snapshot()
        if self._owns_trace:
            tracemalloc.stop()
        self._running = False
        self.current_bytes = max(0, current - self._baseline)
        self.peak_bytes = max(0, peak - self._baseline)
        self._fold_snapshot(snapshot)

    def __enter__(self) -> "MemLedger":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- folding ------------------------------------------------------------
    def _fold_snapshot(self, snapshot: tracemalloc.Snapshot) -> None:
        """Fold live allocations at stop time onto the phase taxonomy."""
        phases: dict[str, int] = {}
        sites: list[dict[str, Any]] = []
        for stat in snapshot.statistics("lineno"):
            frame = stat.traceback[0]
            phase = phase_of(frame.filename, "")
            phases[phase] = phases.get(phase, 0) + stat.size
            sites.append(
                {
                    "site": f"{_site_label(frame.filename)}:{frame.lineno}",
                    "phase": phase,
                    "bytes": stat.size,
                    "count": stat.count,
                }
            )
        sites.sort(key=lambda s: s["bytes"], reverse=True)
        self.phases = phases
        self.top_sites = sites[: self.top_n]

    # -- output -------------------------------------------------------------
    def record_summary(self) -> dict[str, Any]:
        """The compact ``mem`` block stored on bench cases and records."""
        return {
            "schema_version": MEM_SCHEMA_VERSION,
            "top_n": self.top_n,
            "peak_bytes": self.peak_bytes,
            "current_bytes": self.current_bytes,
            "ru_maxrss_bytes": _ru_maxrss_bytes(),
            "phases": dict(self.phases),
            "top_sites": [dict(s) for s in self.top_sites],
        }


def _site_label(filename: str) -> str:
    """Package-relative path of an allocation site, like hostprof frames."""
    path = filename.replace("\\", "/")
    parts = path.split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return parts[-1]


def validate_mem_block(block: Any) -> dict[str, Any]:
    """Check a ``mem`` block's shape; returns it or raises MemProfError."""
    if not isinstance(block, dict):
        raise MemProfError(f"mem block must be a dict, got {type(block).__name__}")
    version = block.get("schema_version")
    if version != MEM_SCHEMA_VERSION:
        raise MemProfError(f"mem schema version {version!r} not supported")
    for field in ("peak_bytes", "current_bytes"):
        value = block.get(field)
        if not isinstance(value, int) or value < 0:
            raise MemProfError(f"mem block field {field!r} must be a non-negative int")
    rss = block.get("ru_maxrss_bytes")
    if rss is not None and (not isinstance(rss, int) or rss < 0):
        raise MemProfError("ru_maxrss_bytes must be a non-negative int or null")
    phases = block.get("phases")
    if not isinstance(phases, dict):
        raise MemProfError("mem block carries no phases dict")
    known = set(ALL_PHASES) | {"other"}
    for name, size in phases.items():
        if name not in known:
            raise MemProfError(f"unknown mem phase {name!r}")
        if not isinstance(size, int) or size < 0:
            raise MemProfError(f"mem phase {name!r} has a bad size")
    sites = block.get("top_sites")
    if not isinstance(sites, list):
        raise MemProfError("mem block carries no top_sites list")
    for site in sites:
        if not isinstance(site, dict) or not {"site", "phase", "bytes"} <= set(site):
            raise MemProfError(f"malformed allocation site: {site!r}")
    return block


def fmt_bytes(size: float | None) -> str:
    """Human-readable byte count (``None`` renders as ``n/a``)."""
    if size is None:
        return "n/a"
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024.0
    return f"{value:,.1f} GiB"  # pragma: no cover - unreachable


def render_mem_table(block: dict[str, Any]) -> str:
    """Plain-text memory report for ``repro profile --mem``."""
    lines = [
        "memory attribution (tracemalloc, observed region only):",
        f"  peak heap    : {fmt_bytes(block['peak_bytes'])}",
        f"  live at end  : {fmt_bytes(block['current_bytes'])}",
        f"  process RSS  : {fmt_bytes(block.get('ru_maxrss_bytes'))} (lifetime peak, OS view)",
    ]
    phases = block.get("phases") or {}
    if phases:
        lines.append(f"  {'phase':>10}  {'live bytes':>12}    share")
        total = sum(phases.values()) or 1
        for name, size in sorted(phases.items(), key=lambda kv: kv[1], reverse=True):
            lines.append(f"  {name:>10}  {fmt_bytes(size):>12}  {size / total:6.1%}")
    sites = block.get("top_sites") or []
    if sites:
        lines.append(f"  top {len(sites)} allocation sites:")
        for site in sites:
            lines.append(
                f"    {fmt_bytes(site['bytes']):>12}  [{site['phase']}] {site['site']}"
            )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_TOP_N",
    "MEM_SCHEMA_VERSION",
    "MemLedger",
    "MemProfError",
    "fmt_bytes",
    "render_mem_table",
    "validate_mem_block",
]
