"""Per-epoch time-series metric collectors.

:class:`EpochMetrics` subscribes to the network's telemetry bus and closes
one :class:`EpochSample` every ``epoch_length`` cycles.  Everything that
can be derived from counters the simulator already maintains is collected
by *differencing* those counters at epoch boundaries (per-link flits,
hetero-PHY dispatch split, injected/delivered totals), so steady-state
collection costs one sweep per epoch, not per cycle.  Only credit-stall
accounting listens to a per-event hook, and that event fires only under
congestion.

Collected per epoch:

* per-link carried flits and utilization (flits / cycle / lane);
* per-(router, port, VC) buffer occupancy, sampled at the epoch boundary
  (non-zero entries only — queues are sparse in healthy runs);
* credit-stall cycles per (router, output port, VC);
* reorder-buffer occupancy sample + in-epoch peak per hetero-PHY link;
* hetero-PHY dispatch split (parallel / serial / bypassed flits);
* global progress: flits injected, measured packets delivered, router
  flit movements, and buffered / in-flight samples.

Epochs whose *start* falls inside the warm-up window are flagged
``warmup=True``; accessors exclude them by default, matching the
measured-population convention of :class:`repro.sim.stats.Stats`.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.noc.router import Router


@dataclass
class EpochSample:
    """Everything measured over one epoch ``[start, end)``."""

    index: int
    start: int
    end: int
    warmup: bool
    flits_injected: int
    packets_delivered: int
    router_flits: int
    buffered: int
    in_flight: int
    #: link index -> flits carried this epoch (non-zero entries only).
    link_flits: dict[int, int] = field(default_factory=dict)
    #: (node, port, vc) -> flits buffered at the epoch boundary (non-zero).
    buffer_occupancy: dict[tuple[int, int, int], int] = field(default_factory=dict)
    #: (node, out_port, vc) -> cycles stalled on zero credits this epoch.
    credit_stalls: dict[tuple[int, int, int], int] = field(default_factory=dict)
    #: link index -> (occupancy sample, in-epoch peak) of the reorder buffer.
    rob: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: link index -> (parallel, serial, bypassed) flits dispatched this epoch.
    phy_split: dict[int, tuple[int, int, int]] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def to_json(self) -> dict[str, Any]:
        """One JSON-serializable epoch document.

        The same shape lands in ``metrics.json`` (via
        :meth:`EpochMetrics.to_json`) and in live-feed ``epoch`` events
        (:class:`~repro.telemetry.live.LiveFeed`), so watch-side readers
        and offline analysis parse one format.
        """
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "warmup": self.warmup,
            "flits_injected": self.flits_injected,
            "packets_delivered": self.packets_delivered,
            "router_flits": self.router_flits,
            "buffered": self.buffered,
            "in_flight": self.in_flight,
            "link_flits": {str(k): v for k, v in self.link_flits.items()},
            "buffer_occupancy": [
                {"node": node, "port": port, "vc": vc, "flits": flits}
                for (node, port, vc), flits in self.buffer_occupancy.items()
            ],
            "credit_stalls": [
                {"node": node, "out_port": port, "vc": vc, "cycles": cycles}
                for (node, port, vc), cycles in self.credit_stalls.items()
            ],
            "rob": {
                str(index): {"occupancy": occ, "peak": peak}
                for index, (occ, peak) in self.rob.items()
            },
            "phy_split": {
                str(index): {"parallel": par, "serial": ser, "bypassed": byp}
                for index, (par, ser, byp) in self.phy_split.items()
            },
        }


class EpochMetrics:
    """Time-series collector attached to a network's telemetry bus.

    Parameters
    ----------
    network:
        The built network to observe.
    epoch_length:
        Cycles per epoch (>= 1).
    warmup:
        Epochs starting before this cycle are flagged as warm-up and
        excluded from :meth:`epochs` / :meth:`totals` by default.
    sample_buffers:
        Sweep per-VC buffer occupancy at epoch boundaries (disable for
        very large systems where only link series are wanted).
    """

    def __init__(
        self,
        network: "Network",
        *,
        epoch_length: int = 1_000,
        warmup: int = 0,
        sample_buffers: bool = True,
    ) -> None:
        if epoch_length < 1:
            raise ValueError("epoch_length must be >= 1")
        self.network = network
        self.epoch_length = epoch_length
        self.warmup = warmup
        self.sample_buffers = sample_buffers
        self.samples: list[EpochSample] = []
        self._stall_counts: dict[tuple[int, int, int], int] = {}
        self._epoch_start = 0
        self._next_boundary = epoch_length
        self._closed = False
        # Counter baselines for differencing at epoch boundaries.
        self._base_link_flits = [link.flits_carried for link in network.links]
        self._base_phy: dict[int, tuple[int, int, int]] = {
            index: split for index, split in self._phy_counters()
        }
        stats = network.stats
        self._base_injected = stats.flits_injected
        self._base_delivered = stats.packets_delivered
        self._base_router_flits = stats.router_flits
        bus = network.telemetry
        bus.subscribe("cycle_end", self._on_cycle_end)
        bus.subscribe("credit_stall", self._on_credit_stall)

    # -- bus callbacks -----------------------------------------------------
    def _on_credit_stall(self, router: "Router", out_port: int, vc: int, now: int) -> None:
        key = (router.node, out_port, vc)
        self._stall_counts[key] = self._stall_counts.get(key, 0) + 1

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        if now + 1 >= self._next_boundary:
            self._close_epoch(self._next_boundary)
            self._next_boundary += self.epoch_length

    # -- lifecycle ---------------------------------------------------------
    def finish(self, end_cycle: int) -> None:
        """Close a trailing partial epoch and detach from the bus."""
        if not self._closed and end_cycle > self._epoch_start:
            self._close_epoch(end_cycle)
        self.detach()

    def detach(self) -> None:
        if not self._closed:
            bus = self.network.telemetry
            bus.unsubscribe("cycle_end", self._on_cycle_end)
            bus.unsubscribe("credit_stall", self._on_credit_stall)
            self._closed = True

    # -- epoch assembly ----------------------------------------------------
    def _phy_counters(self) -> list[tuple[int, tuple[int, int, int]]]:
        counters = []
        for index, link in enumerate(self.network.links):
            parallel = getattr(link, "flits_parallel", None)
            if parallel is not None:
                counters.append(
                    (index, (parallel, link.flits_serial, link.flits_bypassed))  # type: ignore[attr-defined]
                )
        return counters

    def _close_epoch(self, end: int) -> None:
        network = self.network
        stats = network.stats
        links = network.links
        link_flits: dict[int, int] = {}
        for index, link in enumerate(links):
            delta = link.flits_carried - self._base_link_flits[index]
            if delta:
                link_flits[index] = delta
                self._base_link_flits[index] = link.flits_carried
        phy_split: dict[int, tuple[int, int, int]] = {}
        rob: dict[int, tuple[int, int]] = {}
        for index, counters in self._phy_counters():
            base = self._base_phy[index]
            delta3 = (
                counters[0] - base[0],
                counters[1] - base[1],
                counters[2] - base[2],
            )
            if any(delta3):
                phy_split[index] = delta3
                self._base_phy[index] = counters
            link = links[index]
            occupancy = link.rob.occupancy  # type: ignore[attr-defined]
            peak = link.rob.take_window_peak()  # type: ignore[attr-defined]
            if occupancy or peak:
                rob[index] = (occupancy, peak)
        buffer_occupancy: dict[tuple[int, int, int], int] = {}
        if self.sample_buffers:
            for router in network.routers:
                for port in router.inputs:
                    for vc in port.vcs:
                        held = len(vc.queue)
                        if held:
                            buffer_occupancy[(router.node, port.index, vc.index)] = held
        sample = EpochSample(
            index=len(self.samples),
            start=self._epoch_start,
            end=end,
            warmup=self._epoch_start < self.warmup,
            flits_injected=stats.flits_injected - self._base_injected,
            packets_delivered=stats.packets_delivered - self._base_delivered,
            router_flits=stats.router_flits - self._base_router_flits,
            buffered=network.buffered_flits(),
            in_flight=network.in_flight_flits(),
            link_flits=link_flits,
            buffer_occupancy=buffer_occupancy,
            credit_stalls=self._stall_counts,
            rob=rob,
            phy_split=phy_split,
        )
        self.samples.append(sample)
        self._stall_counts = {}
        self._base_injected = stats.flits_injected
        self._base_delivered = stats.packets_delivered
        self._base_router_flits = stats.router_flits
        self._epoch_start = end

    # -- accessors ---------------------------------------------------------
    def epochs(self, *, include_warmup: bool = False) -> list[EpochSample]:
        """Closed epochs, excluding warm-up epochs unless asked."""
        if include_warmup:
            return list(self.samples)
        return [sample for sample in self.samples if not sample.warmup]

    def link_utilization(self, sample: EpochSample, link_index: int) -> float:
        """Utilization of one link over one epoch (flits / cycle / lane)."""
        spec = self.network.specs[link_index]
        flits = sample.link_flits.get(link_index, 0)
        return flits / (sample.cycles * spec.total_bandwidth)

    def link_series(
        self, *, top: int = 10, include_warmup: bool = True
    ) -> tuple[list[str], list[list[float]]]:
        """(labels, rows) of per-epoch utilization for the busiest links.

        Rows are aligned to :meth:`epochs` order and feed directly into
        :func:`repro.viz.timeseries_heatmap`.
        """
        samples = self.epochs(include_warmup=include_warmup)
        if not samples:
            return [], []
        totals: dict[int, int] = {}
        for sample in samples:
            for index, flits in sample.link_flits.items():
                totals[index] = totals.get(index, 0) + flits
        busiest = sorted(totals, key=lambda index: -totals[index])[:top]
        labels = []
        rows = []
        for index in busiest:
            spec = self.network.specs[index]
            labels.append(f"{spec.src}->{spec.dst} {spec.kind.value}")
            rows.append([self.link_utilization(sample, index) for sample in samples])
        return labels, rows

    def totals(self, *, include_warmup: bool = False) -> dict[str, int]:
        """Summed counters over the (measured) epochs."""
        samples = self.epochs(include_warmup=include_warmup)
        return {
            "epochs": len(samples),
            "cycles": sum(sample.cycles for sample in samples),
            "flits_injected": sum(sample.flits_injected for sample in samples),
            "packets_delivered": sum(sample.packets_delivered for sample in samples),
            "router_flits": sum(sample.router_flits for sample in samples),
            "credit_stall_cycles": sum(
                sum(sample.credit_stalls.values()) for sample in samples
            ),
        }

    # -- export ------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """The full series as one JSON-serializable document."""
        return {
            "epoch_length": self.epoch_length,
            "warmup": self.warmup,
            "links": [
                {
                    "index": index,
                    "src": spec.src,
                    "dst": spec.dst,
                    "kind": spec.kind.value,
                    "bandwidth": spec.total_bandwidth,
                }
                for index, spec in enumerate(self.network.specs)
            ],
            "epochs": [sample.to_json() for sample in self.samples],
        }

    def write(self, directory: str | Path) -> list[Path]:
        """Write the CSV files + ``metrics.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = [
            self._write_epochs_csv(directory / "epochs.csv"),
            self._write_link_csv(directory / "link_util.csv"),
            self._write_buffers_csv(directory / "buffer_occupancy.csv"),
            self._write_stalls_csv(directory / "credit_stalls.csv"),
            self._write_rob_csv(directory / "rob.csv"),
            self._write_phy_csv(directory / "phy_split.csv"),
        ]
        json_path = directory / "metrics.json"
        with json_path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1)
        written.append(json_path)
        return written

    def _write_epochs_csv(self, path: Path) -> Path:
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "epoch",
                    "start",
                    "end",
                    "warmup",
                    "flits_injected",
                    "packets_delivered",
                    "router_flits",
                    "buffered",
                    "in_flight",
                ]
            )
            for sample in self.samples:
                writer.writerow(
                    [
                        sample.index,
                        sample.start,
                        sample.end,
                        int(sample.warmup),
                        sample.flits_injected,
                        sample.packets_delivered,
                        sample.router_flits,
                        sample.buffered,
                        sample.in_flight,
                    ]
                )
        return path

    def _write_link_csv(self, path: Path) -> Path:
        specs = self.network.specs
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["epoch", "link", "src", "dst", "kind", "flits", "util"])
            for sample in self.samples:
                for index in sorted(sample.link_flits):
                    spec = specs[index]
                    writer.writerow(
                        [
                            sample.index,
                            index,
                            spec.src,
                            spec.dst,
                            spec.kind.value,
                            sample.link_flits[index],
                            f"{self.link_utilization(sample, index):.6f}",
                        ]
                    )
        return path

    def _write_buffers_csv(self, path: Path) -> Path:
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["epoch", "node", "port", "vc", "flits"])
            for sample in self.samples:
                for (node, port, vc) in sorted(sample.buffer_occupancy):
                    writer.writerow(
                        [sample.index, node, port, vc, sample.buffer_occupancy[(node, port, vc)]]
                    )
        return path

    def _write_stalls_csv(self, path: Path) -> Path:
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["epoch", "node", "out_port", "vc", "stall_cycles"])
            for sample in self.samples:
                for (node, port, vc) in sorted(sample.credit_stalls):
                    writer.writerow(
                        [sample.index, node, port, vc, sample.credit_stalls[(node, port, vc)]]
                    )
        return path

    def _write_rob_csv(self, path: Path) -> Path:
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["epoch", "link", "occupancy", "peak"])
            for sample in self.samples:
                for index in sorted(sample.rob):
                    occupancy, peak = sample.rob[index]
                    writer.writerow([sample.index, index, occupancy, peak])
        return path

    def _write_phy_csv(self, path: Path) -> Path:
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["epoch", "link", "parallel", "serial", "bypassed"])
            for sample in self.samples:
                for index in sorted(sample.phy_split):
                    parallel, serial, bypassed = sample.phy_split[index]
                    writer.writerow([sample.index, index, parallel, serial, bypassed])
        return path
