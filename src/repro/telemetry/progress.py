"""Live progress reporting for long simulation runs.

:class:`ProgressReporter` subscribes to the ``cycle_end`` event and
periodically rewrites one status line on a stream (stderr by default):
simulated cycle, simulation speed in cycles/second of wall-clock time,
flits currently in the network, the delivered fraction of the measured
packet population and — when the horizon is known — an ETA.  Overhead is
one modulo test per cycle plus one line of I/O per reporting interval.

On an interactive terminal the line is rewritten in place with ``"\r"``;
when the stream is not a TTY (CI logs, files, pipes) every update is
written as its own newline-terminated line so logs stay readable.

:class:`EtaEstimator` is the shared remaining-time model: an
exponentially smoothed cycles-per-second estimate divided into the
remaining horizon.  The reporter's TTY line and the live feed's heartbeat
events (:class:`~repro.telemetry.live.LiveFeed`) both use it, so the ETA
a terminal shows and the ETA ``repro watch`` shows agree.
"""

from __future__ import annotations

import math
import sys
import time
from typing import IO, TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network


class EtaEstimator:
    """Smoothed simulation speed and remaining wall-time estimate.

    ``update(cycle)`` folds the speed over the latest interval into an
    exponential moving average (``alpha`` weights the newest interval),
    which damps the burstiness of per-interval wall clocks; the ETA is
    the remaining cycles divided by that smoothed speed, or ``None``
    while no horizon or no speed estimate is available.
    """

    def __init__(self, total_cycles: Optional[int] = None, *, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.total_cycles = total_cycles
        self.alpha = alpha
        self.cps = math.nan
        self._started = time.perf_counter()
        self._last_wall = self._started
        self._last_cycle = 0

    def update(self, cycle: int) -> float:
        """Fold the interval since the last update in; return smoothed cps."""
        wall = time.perf_counter()
        elapsed = wall - self._last_wall
        advanced = cycle - self._last_cycle
        if elapsed > 0 and advanced > 0:
            instantaneous = advanced / elapsed
            if math.isnan(self.cps):
                self.cps = instantaneous
            else:
                self.cps = self.alpha * instantaneous + (1.0 - self.alpha) * self.cps
        self._last_wall = wall
        self._last_cycle = cycle
        return self.cps

    def eta_seconds(self, cycle: Optional[int] = None) -> Optional[float]:
        """Estimated seconds to the horizon (None: unknowable)."""
        if cycle is None:
            cycle = self._last_cycle
        if not self.total_cycles or math.isnan(self.cps) or self.cps <= 0:
            return None
        return max(0, self.total_cycles - cycle) / self.cps

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds since the estimator was created."""
        return time.perf_counter() - self._started


def format_eta(seconds: Optional[float]) -> str:
    """``"1:03:20"`` / ``"4:02"`` / ``"n/a"`` rendering of an ETA."""
    if seconds is None or not math.isfinite(seconds) or seconds < 0:
        return "n/a"
    whole = int(round(seconds))
    hours, remainder = divmod(whole, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Writes an updating one-line run status to a stream.

    Parameters
    ----------
    network:
        The built network to observe (its ``stats`` provides delivery
        figures).
    every_cycles:
        Cycles between status updates (>= 1).
    stream:
        Destination text stream; defaults to ``sys.stderr``.
    total_cycles:
        When known, the status line includes percentage completion.
    """

    def __init__(
        self,
        network: "Network",
        *,
        every_cycles: int = 5_000,
        stream: Optional[IO[str]] = None,
        total_cycles: Optional[int] = None,
    ) -> None:
        if every_cycles < 1:
            raise ValueError("every_cycles must be >= 1")
        self.network = network
        self.every_cycles = every_cycles
        self.stream = stream if stream is not None else sys.stderr
        self.total_cycles = total_cycles
        self.updates = 0
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError, OSError):
            self._tty = False
        self._started = time.perf_counter()
        self._last_wall = self._started
        self._last_cycle = 0
        self._closed = False
        self.eta = EtaEstimator(total_cycles)
        network.telemetry.subscribe("cycle_end", self._on_cycle_end)

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        cycle = now + 1
        if cycle % self.every_cycles:
            return
        wall = time.perf_counter()
        elapsed = wall - self._last_wall
        cps = (cycle - self._last_cycle) / elapsed if elapsed > 0 else float("inf")
        self._last_wall = wall
        self._last_cycle = cycle
        self.eta.update(cycle)
        self.updates += 1
        line = self._format_line(cycle, cps)
        if self._tty:
            self.stream.write("\r" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _format_line(self, cycle: int, cps: float) -> str:
        stats = self.network.stats
        in_network = self.network.buffered_flits() + self.network.in_flight_flits()
        fraction = stats.delivered_fraction
        delivered = "n/a" if math.isnan(fraction) else f"{fraction:6.1%}"
        parts = [f"cycle {cycle:>9d}"]
        if self.total_cycles:
            parts.append(f"({cycle / self.total_cycles:4.0%})")
        parts.append(f"| {cps:>10,.0f} cyc/s")
        parts.append(f"| in-flight {in_network:>6d} flits")
        parts.append(f"| delivered {delivered}")
        if self.total_cycles:
            parts.append(f"| eta {format_eta(self.eta.eta_seconds(cycle)):>8s}")
        return " ".join(parts)

    def close(self) -> None:
        """Stop reporting: detach from the bus and finish the status line."""
        if self._closed:
            return
        self.network.telemetry.unsubscribe("cycle_end", self._on_cycle_end)
        self._closed = True
        if self.updates and self._tty:
            # Non-TTY updates are already newline-terminated.
            self.stream.write("\n")
            self.stream.flush()

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds since the reporter was attached."""
        return time.perf_counter() - self._started
