"""Append-only registry of simulation runs (``runs/runs.jsonl``).

Every ``repro run`` / ``repro simulate`` invocation appends one
:class:`RunRecord` — config hash, git revision, seed, scale, wall time,
simulated cycles per second, the :class:`~repro.sim.stats.Stats` summary
and pointers to any telemetry artifacts — so a run's numbers never
evaporate with its process.  The store is a schema-versioned JSONL file:
one JSON document per line, never rewritten, trivially greppable and
mergeable across machines.

This module is pure stdlib and must stay free of ``repro.noc`` /
``repro.sim`` imports at module load (see the package initializer's
import note); it consumes :class:`~repro.sim.experiment.RunResult`
duck-typed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.experiment import RunResult
    from repro.topology.system import SystemSpec

#: Version of the run-record schema.  Bump on incompatible field changes;
#: :meth:`RunStore.load` rejects records written by a different version.
RUN_SCHEMA_VERSION = 1

#: Default store location, relative to the working directory.
DEFAULT_RUNS_DIR = "runs"


class RunStoreError(RuntimeError):
    """A run record could not be read (corrupt line or schema mismatch)."""


def git_revision(cwd: Optional[str | Path] = None) -> str:
    """The short git revision of ``cwd`` (``"unknown"`` outside a repo)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def config_digest(payload: Any) -> str:
    """A short stable hash of any JSON-serializable configuration payload."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def system_digest(
    spec: "SystemSpec", *, workload: str = "", policy: str = ""
) -> str:
    """Hash of everything that determines a run's numbers except the seed.

    Covers the system family, the chiplet geometry, every
    :class:`~repro.sim.config.SimConfig` field, the workload descriptor
    and the scheduling policy — two runs with equal digests and equal
    seeds must produce identical statistics.
    """
    grid = spec.grid
    payload = {
        "system": spec.name,
        "grid": [grid.chiplets_x, grid.chiplets_y, grid.nodes_x, grid.nodes_y],
        "config": dataclasses.asdict(spec.config),
        "workload": workload,
        "policy": policy,
    }
    return config_digest(payload)


@dataclass
class RunRecord:
    """One registered simulation run."""

    schema_version: int = RUN_SCHEMA_VERSION
    run_id: str = ""
    created: str = ""
    #: ``"experiment"`` (repro run), ``"simulate"``, ``"bench"`` or
    #: ``"prove"`` (certification runs; their certificate path rides in
    #: ``artifacts``).
    kind: str = "simulate"
    #: Experiment name or system-family label.
    label: str = ""
    scale: Optional[str] = None
    seed: Optional[int] = None
    config_hash: str = ""
    git_rev: str = "unknown"
    workload: str = ""
    policy: str = ""
    n_nodes: int = 0
    cycles: int = 0
    wall_seconds: float = 0.0
    cycles_per_second: float = 0.0
    #: ``Stats.summary()`` of the run (empty for experiment-table runs).
    stats: dict[str, float] = field(default_factory=dict)
    #: Artifact pointers, e.g. ``{"metrics_dir": ..., "trace": ...}``.
    artifacts: dict[str, str] = field(default_factory=dict)
    extras: dict[str, float] = field(default_factory=dict)
    #: Compact latency-attribution summary (``LatencyLedger.record_summary``,
    #: empty unless the run collected a breakdown).  Optional with a default
    #: so records written before this field existed keep loading under
    #: schema v1.
    breakdown: dict[str, Any] = field(default_factory=dict)
    #: Compact forensics summary (``ForensicsSession.record_summary``:
    #: health flags, recorder stats, bundle path; empty unless the run
    #: attached forensics).  Defaulted for the same schema-v1 reason.
    forensics: dict[str, Any] = field(default_factory=dict)
    #: Per-case bench summary for ``kind="bench"`` records: case name →
    #: ``{"cps_median": ..., "host": HostTimeLedger.record_summary(),
    #: "mem": MemLedger.record_summary() minus top_sites, "digest_final":
    #: hex chain}`` — records from pre-mem/pre-digest builds simply lack
    #: the newer keys and load fine.  The dashboard's "Host performance"
    #: panel and the regression sentinel (``repro regress``) read these
    #: across registry history.  Defaulted for the same schema-v1 reason.
    bench: dict[str, Any] = field(default_factory=dict)
    #: Deterministic event-digest block (``RunDigest.record_summary``:
    #: final chain, per-kind census, checkpoint chain, re-simulation
    #: meta; empty unless the run attached a digest).  ``repro diff``
    #: consumes it.  Defaulted for the same schema-v1 reason.
    digest: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        version = data.get("schema_version")
        if version != RUN_SCHEMA_VERSION:
            raise RunStoreError(
                f"run record schema v{version!r} is not supported "
                f"(this build reads v{RUN_SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise RunStoreError(
                f"run record has unknown fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


def utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def record_from_result(
    result: "RunResult",
    *,
    kind: str = "simulate",
    label: str = "",
    scale: Optional[str] = None,
    git_rev: Optional[str] = None,
    artifacts: Optional[dict[str, str]] = None,
    extras: Optional[dict[str, float]] = None,
    run_id: Optional[str] = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from a finished ``RunResult``.

    Pass ``run_id`` to key the record by a pre-allocated id — ``--live``
    runs do this so the registry record and the live feed
    (``runs/live/<run_id>.jsonl``) join on one id in the fleet view.
    """
    breakdown: dict[str, Any] = {}
    session = getattr(result, "telemetry", None)
    ledger = getattr(session, "ledger", None)
    if ledger is not None:
        breakdown = ledger.record_summary()
    forensics: dict[str, Any] = {}
    forensics_session = getattr(session, "forensics", None)
    if forensics_session is not None:
        forensics = forensics_session.record_summary()
    digest: dict[str, Any] = {}
    digest_collector = getattr(session, "digest", None)
    if digest_collector is not None:
        digest = digest_collector.record_summary()
    return RunRecord(
        run_id=run_id or new_run_id(),
        created=utc_now_iso(),
        kind=kind,
        label=label or result.system,
        scale=scale,
        seed=result.seed,
        config_hash=result.config_hash,
        git_rev=git_rev if git_rev is not None else git_revision(),
        workload=result.workload,
        policy=result.policy,
        n_nodes=result.n_nodes,
        cycles=result.cycles,
        wall_seconds=result.wall_seconds,
        cycles_per_second=result.cycles_per_second,
        stats=dict(result.stats.summary()),
        artifacts=dict(artifacts or {}),
        extras=dict(extras or {}),
        breakdown=breakdown,
        forensics=forensics,
        digest=digest,
    )


class RunStore:
    """The append-only JSONL run registry under one directory."""

    def __init__(self, directory: str | Path = DEFAULT_RUNS_DIR) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "runs.jsonl"
        #: Malformed lines skipped by the most recent lenient iteration
        #: (``iter_records(strict=False)``); surfaced as a warning by the
        #: dashboard and the ``repro watch`` fleet view so silent registry
        #: corruption cannot hide.
        self.skipped = 0

    def append(self, record: RunRecord) -> Path:
        """Append one record (creating the store on first use)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return self.path

    def iter_records(self, *, strict: bool = True) -> Iterator[RunRecord]:
        """Yield records in append order.

        With ``strict=False`` unreadable lines (corrupt JSON, foreign
        schema versions) are skipped instead of raising
        :class:`RunStoreError`; how many were skipped is recorded on
        :attr:`skipped` (reset at the start of each lenient iteration).
        """
        if not strict:
            self.skipped = 0
        if not self.path.is_file():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if not isinstance(data, dict):
                        raise RunStoreError("record line is not a JSON object")
                    yield RunRecord.from_dict(data)
                except (json.JSONDecodeError, RunStoreError, TypeError) as exc:
                    if strict:
                        raise RunStoreError(
                            f"{self.path}:{number}: unreadable run record: {exc}"
                        ) from None
                    self.skipped += 1

    def load(self, *, strict: bool = True) -> list[RunRecord]:
        return list(self.iter_records(strict=strict))

    def latest(self, n: int = 1, *, strict: bool = False) -> list[RunRecord]:
        """The most recent ``n`` readable records, oldest first."""
        records = self.load(strict=strict)
        return records[-n:] if n else []

    def __len__(self) -> int:
        return len(self.load(strict=False))
