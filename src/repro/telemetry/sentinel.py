"""History-aware regression detection over the run registry
(``repro regress``).

:mod:`~repro.telemetry.history` turns the registry into per-metric time
series; this module watches them.  For every primary series it runs a
**rank-based sliding-window changepoint test** — dependency-free and
robust by construction:

* For each candidate split, compare the window before against the
  window after with a normalized Mann-Whitney statistic (the fraction
  of (pre, post) pairs where the later value wins; ties count half).
  ``effect = |2u - 1|`` is 1.0 for a clean step and ~0 for noise, and
  never looks at magnitudes — a single wild outlier cannot fake it.
* A candidate only stands when the median shift across the split also
  clears a noise band, ``max(rel_floor * |median(pre)|, k * IQR(pre))``
  — the same discipline as ``repro compare``, so jitter that compare
  would call noise never becomes a changepoint.
* The verdict then compares the **trailing** window against the
  pre-changepoint level: a regression that was since fixed reads
  ``ok`` (with the changepoint still reported), not a stale alarm.

Verdicts are ``ok`` / ``regressed`` / ``improved`` /
``insufficient-history`` / ``n/a``.  For ``cycles_per_second``
regressions the report adds a culprit hint: the host phase whose
wall-time share moved most across the changepoint.

Pure stdlib, no simulator imports at module load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Iterable, Optional, Sequence

from .history import MetricSeries, RunHistory

#: Version stamp of the ``repro regress --json`` report document.
SENTINEL_SCHEMA_VERSION = 1

#: Share shift (absolute, in share units) below which a host phase is
#: not worth naming as a culprit: 0.005 = half a percentage point.
MIN_CULPRIT_SHARE_SHIFT = 0.005


@dataclass(frozen=True)
class SentinelConfig:
    """Detector knobs, mirroring ``repro regress`` flags."""

    window: int = 8  #: sliding-window width on each side of a split
    min_history: int = 6  #: finite points below which no verdict is issued
    min_segment: int = 3  #: smallest usable window at the series edges
    rel_floor: float = 0.05  #: relative noise floor on the median shift
    iqr_k: float = 1.5  #: IQR multiplier of the noise band
    min_effect: float = 0.85  #: rank-effect threshold (1.0 = clean step)

    def __post_init__(self) -> None:
        if self.window < self.min_segment:
            raise ValueError("window must be >= min_segment")
        if self.min_segment < 2:
            raise ValueError("min_segment must be >= 2")
        if not 0.0 < self.min_effect <= 1.0:
            raise ValueError("min_effect must be in (0, 1]")


@dataclass(frozen=True)
class Changepoint:
    """A detected step in one series, in original-series coordinates."""

    index: int  #: index of the first post-step observation
    effect: float  #: rank effect size at the split, in [0, 1]
    shift: float  #: median(post) - median(pre)
    pre_median: float
    post_median: float


@dataclass
class MetricReport:
    """One series' verdict, changepoint and evidence."""

    case: str
    metric: str
    verdict: str  #: ok / regressed / improved / insufficient-history / n/a
    higher_is_better: bool
    finite_points: int = 0
    latest: float = float("nan")
    baseline: float = float("nan")  #: pre-changepoint level (or overall median)
    changepoint: Optional[Changepoint] = None
    changepoint_key: str = ""  #: run_id / bench file of the first shifted run
    culprit: str = ""  #: host-phase hint for throughput regressions

    @property
    def rel_shift(self) -> float:
        if self.changepoint is None or self.changepoint.pre_median == 0:
            return float("nan")
        return self.changepoint.shift / abs(self.changepoint.pre_median)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "case": self.case,
            "metric": self.metric,
            "verdict": self.verdict,
            "higher_is_better": self.higher_is_better,
            "finite_points": self.finite_points,
            "latest": _json_num(self.latest),
            "baseline": _json_num(self.baseline),
            "culprit": self.culprit,
        }
        if self.changepoint is not None:
            doc["changepoint"] = {
                "index": self.changepoint.index,
                "key": self.changepoint_key,
                "effect": round(self.changepoint.effect, 4),
                "shift": _json_num(self.changepoint.shift),
                "rel_shift": _json_num(self.rel_shift),
            }
        return doc


@dataclass
class SentinelReport:
    """Every analyzed series, plus the history's load statistics."""

    reports: list[MetricReport] = field(default_factory=list)
    runs: int = 0
    skipped: int = 0

    def regressions(self) -> list[MetricReport]:
        return [r for r in self.reports if r.verdict == "regressed"]

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": SENTINEL_SCHEMA_VERSION,
            "kind": "sentinel",
            "runs": self.runs,
            "skipped": self.skipped,
            "regressions": len(self.regressions()),
            "reports": [r.to_dict() for r in self.reports],
        }


def _json_num(value: float) -> Optional[float]:
    return None if not math.isfinite(value) else value


# ---------------------------------------------------------------------------
# the detector
# ---------------------------------------------------------------------------


def _iqr(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    return ordered[(3 * n) // 4 - (n % 4 == 0)] - ordered[n // 4]


def _rank_effect(pre: Sequence[float], post: Sequence[float]) -> float:
    """``|2u - 1|`` of the normalized Mann-Whitney statistic."""
    wins = 0.0
    for a in pre:
        for b in post:
            if b > a:
                wins += 1.0
            elif b == a:
                wins += 0.5
    u = wins / (len(pre) * len(post))
    return abs(2.0 * u - 1.0)


def _noise_band(pre: Sequence[float], config: SentinelConfig) -> float:
    return max(config.rel_floor * abs(median(pre)), config.iqr_k * _iqr(pre))


def detect_changepoint(
    values: Sequence[float], config: SentinelConfig = SentinelConfig()
) -> Optional[Changepoint]:
    """The strongest step in ``values`` that clears both gates, if any.

    ``values`` may contain NaN (runs that did not carry the metric);
    detection runs over the finite subsequence and the returned index
    points back into the original series.
    """
    finite = [(i, v) for i, v in enumerate(values) if math.isfinite(v)]
    n = len(finite)
    best: Optional[Changepoint] = None
    for split in range(config.min_segment, n - config.min_segment + 1):
        pre = [v for _, v in finite[max(0, split - config.window): split]]
        post = [v for _, v in finite[split: split + config.window]]
        effect = _rank_effect(pre, post)
        if effect < config.min_effect:
            continue
        shift = median(post) - median(pre)
        if abs(shift) <= _noise_band(pre, config):
            continue
        candidate = Changepoint(
            index=finite[split][0],
            effect=effect,
            shift=shift,
            pre_median=median(pre),
            post_median=median(post),
        )
        if best is None or (effect, abs(shift)) > (best.effect, abs(best.shift)):
            best = candidate
    return best


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------


def _analyze_series(series: MetricSeries, config: SentinelConfig) -> MetricReport:
    report = MetricReport(
        case=series.case,
        metric=series.metric,
        verdict="n/a",
        higher_is_better=series.higher_is_better,
    )
    values = series.values
    finite = [v for v in values if math.isfinite(v)]
    report.finite_points = len(finite)
    if not finite:
        return report
    report.latest = finite[-1]
    report.baseline = median(finite)
    if series.metric == "digest.stable":
        return _analyze_stability(series, report)
    if len(finite) < config.min_history:
        report.verdict = "insufficient-history"
        return report

    changepoint = detect_changepoint(values, config)
    if changepoint is None:
        report.verdict = "ok"
        return report
    report.changepoint = changepoint
    report.changepoint_key = series.points[changepoint.index].key
    report.baseline = changepoint.pre_median

    # Verdict from the *trailing* window, so a since-fixed step reads ok.
    pre = [v for v in values[: changepoint.index] if math.isfinite(v)]
    pre_window = pre[-config.window:]
    trailing = finite[-config.window:]
    drift = median(trailing) - median(pre_window)
    if abs(drift) <= _noise_band(pre_window, config):
        report.verdict = "ok"
    elif (drift < 0) == series.higher_is_better:
        report.verdict = "regressed"
    else:
        report.verdict = "improved"
    return report


def _analyze_stability(series: MetricSeries, report: MetricReport) -> MetricReport:
    """``digest.stable`` is binary: any observed mismatch is a regression."""
    for index, point in enumerate(series.points):
        if point.value == 0.0:
            report.verdict = "regressed"
            report.changepoint = Changepoint(
                index=index, effect=1.0, shift=-1.0, pre_median=1.0, post_median=0.0
            )
            report.changepoint_key = point.key
            return report
    report.verdict = "ok"
    return report


def _culprit_hint(
    history: RunHistory, case: str, changepoint: Changepoint
) -> str:
    """The host phase whose wall-time share grew most across the split."""
    best_phase, best_delta = "", 0.0
    for (series_case, metric), series in history.series.items():
        if series_case != case or not series.auxiliary:
            continue
        if not metric.startswith("host.") or not metric.endswith(".share"):
            continue
        pre = [
            p.value for p in series.points[: changepoint.index] if math.isfinite(p.value)
        ]
        post = [
            p.value for p in series.points[changepoint.index:] if math.isfinite(p.value)
        ]
        if not pre or not post:
            continue
        delta = median(post) - median(pre)
        if delta > best_delta:
            best_phase = metric[len("host."): -len(".share")]
            best_delta = delta
    if not best_phase or best_delta < MIN_CULPRIT_SHARE_SHIFT:
        return ""
    return f"{best_phase} (+{100.0 * best_delta:.1f}pp share)"


def analyze_history(
    history: RunHistory,
    config: SentinelConfig = SentinelConfig(),
    *,
    metric_prefixes: Iterable[str] = (),
) -> SentinelReport:
    """Verdicts for every primary series (optionally prefix-filtered)."""
    prefixes = tuple(metric_prefixes)
    report = SentinelReport(runs=history.runs, skipped=history.skipped)
    for series in history.ordered():
        if prefixes and not any(series.metric.startswith(p) for p in prefixes):
            continue
        metric_report = _analyze_series(series, config)
        if (
            metric_report.verdict == "regressed"
            and series.metric == "cycles_per_second"
            and metric_report.changepoint is not None
        ):
            metric_report.culprit = _culprit_hint(
                history, series.case, metric_report.changepoint
            )
        report.reports.append(metric_report)
    return report


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_MARKS = {
    "ok": "=",
    "regressed": "!",
    "improved": "+",
    "insufficient-history": "~",
    "n/a": "?",
}


def _fmt_value(metric: str, value: float) -> str:
    if not math.isfinite(value):
        return "n/a"
    if metric == "mem.peak_bytes":
        from .memprof import fmt_bytes

        return fmt_bytes(value)
    if metric == "digest.stable":
        return "stable" if value == 1.0 else "DIVERGED"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def render_sentinel(report: SentinelReport) -> str:
    """The ``repro regress`` verdict table."""
    if not report.reports:
        return (
            "no bench history to analyze — `repro bench` appends the "
            "records the sentinel watches."
        )
    header = (
        f"{'case':<22} {'metric':<20} {'n':>3} {'baseline':>12} "
        f"{'latest':>12} {'shift':>8}  verdict"
    )
    lines = [
        f"regression sentinel over {report.runs} suite run(s)",
        "",
        header,
        "-" * len(header),
    ]
    for r in report.reports:
        shift = (
            f"{100.0 * r.rel_shift:+.1f}%" if math.isfinite(r.rel_shift) else "-"
        )
        line = (
            f"{r.case:<22} {r.metric:<20} {r.finite_points:>3} "
            f"{_fmt_value(r.metric, r.baseline):>12} "
            f"{_fmt_value(r.metric, r.latest):>12} {shift:>8}  "
            f"{_MARKS.get(r.verdict, '?')} {r.verdict}"
        )
        if r.changepoint is not None and r.changepoint_key:
            line += f" @ {r.changepoint_key}"
        if r.culprit:
            line += f" [culprit: {r.culprit}]"
        lines.append(line)
    regressed = report.regressions()
    lines.append("")
    lines.append(
        f"{len(regressed)} regression(s) across "
        f"{len(report.reports)} series"
        + (f"; {report.skipped} unreadable source(s) skipped" if report.skipped else "")
    )
    return "\n".join(lines)


__all__ = [
    "Changepoint",
    "MetricReport",
    "SENTINEL_SCHEMA_VERSION",
    "SentinelConfig",
    "SentinelReport",
    "analyze_history",
    "detect_changepoint",
    "render_sentinel",
]
