"""Live fleet observability service (``repro watch``).

A stdlib-only HTTP service — :class:`http.server.ThreadingHTTPServer`,
no third-party dependencies — that tails the run registry
(``runs/runs.jsonl``) and the live feeds ``--live`` runs append under
``runs/live/`` (:mod:`repro.telemetry.live`), and serves:

* ``/`` — the fleet page: runs in flight with progress bars and ETAs,
  recent failures with their postmortem bundle paths, the bench
  trajectory and host-phase shares, and the recent-runs registry table —
  auto-updating via Server-Sent Events;
* ``/run/<run_id>`` — one run's live page (heartbeat, epochs, health);
* ``/api/runs`` — the fleet state as JSON;
* ``/api/live/<run_id>`` — one feed's folded status plus its raw events;
* ``/api/bench`` — the bench trajectory extracted from the registry;
* ``/events`` and ``/events/<run_id>`` — the SSE streams behind the
  pages (``data:`` lines carrying re-rendered HTML fragments).

The HTML panels come from :mod:`repro.telemetry.dashboard`'s public
builders, so the live view and the static ``repro dashboard`` render the
registry identically.  Reads are stateless — every request re-reads the
registry and feeds — which keeps the service correct under concurrent
writers at fleet sizes where a JSONL scan per poll is cheap.

Import note: this module must stay free of ``repro.noc`` / ``repro.sim``
imports at module load (see the package initializer's import note); it
only reads files other processes write.
"""

from __future__ import annotations

import html
import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Optional
from urllib.parse import urlparse

from .dashboard import (
    determinism_section,
    fmt_value,
    health_section,
    hostperf_section,
    render_page,
    runs_section,
    sentinel_section,
    skipped_warning,
)
from .live import LIVE_SCHEMA_VERSION, feed_status, read_feed
from .progress import format_eta
from .runstore import RunStore, utc_now_iso

#: Default port of ``repro watch``.
DEFAULT_PORT = 8631

#: A feed without new events for this long is flagged stale in the view.
STALE_AFTER_SECONDS = 30.0


def _sse_script(endpoint: str) -> str:
    """The page's auto-update hook: swap ``#live`` on every SSE message."""
    return (
        "<script>"
        f"const src = new EventSource({json.dumps(endpoint)});"
        "src.onmessage = (event) => {"
        "  const payload = JSON.parse(event.data);"
        "  document.getElementById('live').innerHTML = payload.html;"
        "};"
        "</script>"
    )


class WatchService:
    """Fleet state assembly + page rendering over one runs directory.

    Parameters
    ----------
    runs_dir:
        The run-registry directory (``runs.jsonl`` plus the ``live/``
        feed subdirectory live there).
    poll_seconds:
        SSE change-detection interval.
    top_runs:
        Rows in the recent-runs table.
    """

    def __init__(
        self,
        runs_dir: str | Path = "runs",
        *,
        poll_seconds: float = 1.0,
        top_runs: int = 20,
    ) -> None:
        self.runs_dir = Path(runs_dir)
        self.live_dir = self.runs_dir / "live"
        self.poll_seconds = poll_seconds
        self.top_runs = top_runs

    # -- state assembly ------------------------------------------------------
    def _feed_paths(self) -> list[Path]:
        if not self.live_dir.is_dir():
            return []
        return sorted(
            self.live_dir.glob("*.jsonl"),
            key=lambda path: path.stat().st_mtime,
            reverse=True,
        )

    def feed_statuses(self) -> list[dict[str, Any]]:
        """Folded status of every live feed, most recently touched first.

        Lenient reads: a feed being appended to mid-line must not break
        the fleet view.
        """
        statuses = []
        for path in self._feed_paths():
            events = read_feed(path, strict=False)
            if not events:
                continue
            status = feed_status(events)
            status["feed"] = str(path)
            statuses.append(status)
        return statuses

    def fleet_state(self) -> dict[str, Any]:
        """The ``/api/runs`` document: registry + live feeds, one view."""
        store = RunStore(self.runs_dir)
        records = store.load(strict=False)
        statuses = self.feed_statuses()
        failures = [status for status in statuses if status["state"] == "failed"]
        in_flight = [
            status
            for status in statuses
            if status["state"] == "running"
            and (status["age_seconds"] or 0.0) <= STALE_AFTER_SECONDS
        ]
        return {
            "generated": utc_now_iso(),
            "schema_version": LIVE_SCHEMA_VERSION,
            "runs_dir": str(self.runs_dir),
            "records": len(records),
            "skipped": store.skipped,
            "in_flight": [status["run_id"] for status in in_flight],
            "live": statuses,
            "failures": failures,
            "recent": [record.to_dict() for record in records[-self.top_runs :]],
        }

    def live_state(self, run_id: str) -> Optional[dict[str, Any]]:
        """The ``/api/live/<run_id>`` document (None: no such feed)."""
        path = self.live_dir / f"{run_id}.jsonl"
        if not path.is_file():
            return None
        events = read_feed(path, strict=False)
        status = feed_status(events)
        status["feed"] = str(path)
        return {"status": status, "events": events}

    def bench_state(self) -> dict[str, Any]:
        """The ``/api/bench`` document: per-case trajectory from the registry."""
        store = RunStore(self.runs_dir)
        cases: dict[str, list[dict[str, Any]]] = {}
        count = 0
        for record in store.iter_records(strict=False):
            if record.kind != "bench" or not record.bench:
                continue
            count += 1
            for name, case in record.bench.items():
                cases.setdefault(name, []).append(
                    {
                        "created": record.created,
                        "git_rev": record.git_rev,
                        "cps_median": (case or {}).get("cps_median"),
                        "host_shares": ((case or {}).get("host") or {}).get("shares"),
                    }
                )
        return {
            "generated": utc_now_iso(),
            "runs_dir": str(self.runs_dir),
            "bench_records": count,
            "skipped": store.skipped,
            "cases": cases,
        }

    def registry_digest(self, run_id: str) -> Optional[dict[str, Any]]:
        """The registry record's digest block for a run id (None: none)."""
        store = RunStore(self.runs_dir)
        found: Optional[dict[str, Any]] = None
        for record in store.iter_records(strict=False):
            if record.run_id == run_id and record.digest:
                found = record.digest
        return found

    def change_stamp(self) -> tuple:
        """Cheap fingerprint of everything the pages render.

        The SSE loops re-render only when this changes: registry file
        size/mtime plus every feed's size/mtime.
        """
        entries = []
        registry = self.runs_dir / "runs.jsonl"
        for path in [registry, *self._feed_paths()]:
            try:
                stat = path.stat()
                entries.append((str(path), stat.st_mtime_ns, stat.st_size))
            except OSError:
                continue
        return tuple(entries)

    # -- HTML rendering --------------------------------------------------------
    def _in_flight_section(self, statuses: list[dict[str, Any]]) -> str:
        from repro.viz import svg_progress_bar

        live = [s for s in statuses if s["state"] == "running"]
        if not live:
            return (
                '<p class="empty">no runs in flight — start one with '
                "<code>repro simulate --live</code>.</p>"
            )
        rows = []
        for status in live:
            meta = status["meta"]
            stale = (status["age_seconds"] or 0.0) > STALE_AFTER_SECONDS
            state = '<span class="alarm">stale</span>' if stale else "running"
            bar = svg_progress_bar(status["fraction"], title="completion")
            cps = status["cps"]
            rows.append(
                "<tr>"
                f'<td><a href="/run/{html.escape(status["run_id"])}">'
                f'{html.escape(status["run_id"])}</a></td>'
                f"<td>{html.escape(str(meta.get('system', '')))}</td>"
                f"<td>{html.escape(str(meta.get('workload', '')))}</td>"
                f"<td>{bar}</td>"
                f"<td>{fmt_value(status['cycle'])} / "
                f"{fmt_value(status['total_cycles'] or float('nan'))}</td>"
                f"<td>{fmt_value(float(cps)) if cps else 'n/a'}</td>"
                f"<td>{format_eta(status['eta_seconds'])}</td>"
                f"<td>{len(status['anomalies'])}</td>"
                f"<td>{state}</td>"
                "</tr>"
            )
        return (
            "<table><thead><tr><th>run</th><th>system</th><th>workload</th>"
            "<th>progress</th><th>cycle</th><th>cyc/s</th><th>eta</th>"
            "<th>anomalies</th><th>state</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )

    def _failures_section(self, statuses: list[dict[str, Any]]) -> str:
        failed = [s for s in statuses if s["state"] == "failed"]
        if not failed:
            return '<p class="empty">no failed live runs.</p>'
        rows = []
        for status in failed:
            meta = status["meta"]
            bundle = status["bundle"]
            bundle_cell = (
                f"<code>{html.escape(str(bundle))}</code>" if bundle else "—"
            )
            rows.append(
                "<tr>"
                f'<td><a href="/run/{html.escape(status["run_id"])}">'
                f'{html.escape(status["run_id"])}</a></td>'
                f"<td>{html.escape(str(meta.get('system', '')))}</td>"
                f"<td>{html.escape(str(meta.get('workload', '')))}</td>"
                f"<td>{fmt_value(status['cycle'])}</td>"
                f'<td><span class="alarm">{html.escape(str(status["reason"]))}'
                "</span></td>"
                f"<td>{bundle_cell}</td>"
                "</tr>"
            )
        return (
            "<table><thead><tr><th>run</th><th>system</th><th>workload</th>"
            "<th>died at cycle</th><th>reason</th>"
            "<th>postmortem bundle (<code>repro postmortem</code>)</th>"
            f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
        )

    def fleet_fragment(self) -> str:
        """The fleet page's auto-updating inner HTML."""
        statuses = self.feed_statuses()
        store = RunStore(self.runs_dir)
        store.load(strict=False)  # populate .skipped for the warning
        sections = [
            skipped_warning(store),
            "<h2>Runs in flight</h2>",
            self._in_flight_section(statuses),
            "<h2>Recent failures</h2>",
            self._failures_section(statuses),
            "<h2>Bench trajectory &amp; host-phase shares</h2>",
            hostperf_section(self.runs_dir),
            "<h2>Regression sentinel</h2>",
            sentinel_section(self.runs_dir),
            "<h2>Run health</h2>",
            health_section(self.runs_dir),
            "<h2>Determinism</h2>",
            determinism_section(self.runs_dir),
            "<h2>Recent runs</h2>",
            runs_section(self.runs_dir, self.top_runs),
        ]
        return "".join(sections)

    def fleet_page(self) -> str:
        body = (
            "<h1>repro watch — fleet</h1>"
            f'<p class="meta">registry {html.escape(str(self.runs_dir))} · '
            f"generated {html.escape(utc_now_iso())} · auto-updating</p>"
            f'<main id="live">{self.fleet_fragment()}</main>'
            f"{_sse_script('/events')}"
        )
        return render_page("repro watch — fleet", body)

    def _run_fragment(self, state: dict[str, Any]) -> str:
        from repro.viz import svg_progress_bar, svg_sparkline

        status = state["status"]
        meta = status["meta"]
        parts = []
        if status["state"] == "failed":
            bundle = status["bundle"]
            hint = (
                f" — postmortem bundle <code>{html.escape(str(bundle))}</code>"
                if bundle
                else ""
            )
            parts.append(
                f'<p class="alarm">failed at cycle {fmt_value(status["cycle"])}: '
                f"{html.escape(str(status['reason']))}"
                f" ({html.escape(str(status['error']))}){hint}</p>"
            )
        elif status["state"] == "finished":
            parts.append(
                f'<p class="meta">finished at cycle {fmt_value(status["cycle"])} '
                f"in {fmt_value(float(status['wall_seconds'] or 0.0))} s</p>"
            )
        parts.append(self._determinism_badge(status))
        bar = svg_progress_bar(status["fraction"], title="completion")
        cps = status["cps"]
        parts.append(
            "<table><thead><tr><th>progress</th><th>cycle</th><th>cyc/s</th>"
            "<th>eta</th><th>delivered</th><th>epochs</th></tr></thead><tbody>"
            "<tr>"
            f"<td>{bar}</td>"
            f"<td>{fmt_value(status['cycle'])} / "
            f"{fmt_value(status['total_cycles'] or float('nan'))}</td>"
            f"<td>{fmt_value(float(cps)) if cps else 'n/a'}</td>"
            f"<td>{format_eta(status['eta_seconds'])}</td>"
            f"<td>{fmt_value(float(status['delivered_fraction'] or float('nan')))}</td>"
            f"<td>{fmt_value(status['epochs'])}</td>"
            "</tr></tbody></table>"
        )
        if status["anomalies"]:
            rows = "".join(
                "<tr>"
                f"<td>{fmt_value(anomaly.get('cycle'))}</td>"
                f'<td><span class="alarm">{html.escape(str(anomaly.get("kind")))}'
                "</span></td>"
                f"<td>{html.escape(str(anomaly.get('detail')))}</td>"
                "</tr>"
                for anomaly in status["anomalies"]
            )
            parts.append(
                "<h2>Anomalies</h2>"
                "<table><thead><tr><th>cycle</th><th>kind</th><th>detail</th>"
                f"</tr></thead><tbody>{rows}</tbody></table>"
            )
        epochs = [e["epoch"] for e in state["events"] if e.get("kind") == "epoch"]
        if epochs:
            delivered = [float(e.get("packets_delivered", 0)) for e in epochs]
            parts.append(
                "<h2>Per-epoch delivery</h2>"
                f"<figure>{svg_sparkline(delivered, width=360, height=48, title='packets delivered per epoch')}</figure>"
            )
            rows = "".join(
                "<tr>"
                f"<td>{fmt_value(e.get('index'))}</td>"
                f"<td>{fmt_value(e.get('start'))}–{fmt_value(e.get('end'))}</td>"
                f"<td>{fmt_value(e.get('flits_injected'))}</td>"
                f"<td>{fmt_value(e.get('packets_delivered'))}</td>"
                f"<td>{fmt_value(e.get('buffered'))}</td>"
                f"<td>{fmt_value(e.get('in_flight'))}</td>"
                "</tr>"
                for e in epochs[-12:]
            )
            parts.append(
                "<details><summary>latest epochs</summary>"
                "<table><thead><tr><th>epoch</th><th>cycles</th>"
                "<th>injected</th><th>delivered</th><th>buffered</th>"
                f"<th>in flight</th></tr></thead><tbody>{rows}</tbody></table>"
                "</details>"
            )
        probes = [e["probe"] for e in state["events"] if e.get("kind") == "health"]
        if probes:
            ages = [float(p.get("oldest_age", 0)) for p in probes]
            parts.append(
                "<h2>Health</h2><figure>"
                f"{svg_sparkline(ages, width=360, height=48, title='oldest in-flight packet age')}"
                "</figure>"
            )
        if status["state"] == "finished" and status["stats"]:
            rows = "".join(
                f"<tr><td>{html.escape(str(key))}</td><td>{fmt_value(value)}</td></tr>"
                for key, value in sorted(status["stats"].items())
            )
            parts.append(
                "<details><summary>final stats</summary><table>"
                f"<tbody>{rows}</tbody></table></details>"
            )
        _ = meta  # rendered in the page header
        return "".join(parts)

    def _determinism_badge(self, status: dict[str, Any]) -> str:
        """The run page's determinism badge.

        Cross-checks the live feed's final digest chain against the run's
        registry record; feeds without a digest (plain runs, old feeds)
        get a muted "no digest" badge rather than nothing, so the
        reproducibility affordance is always visible.
        """
        live_digest = status.get("digest") or {}
        final = live_digest.get("final")
        registry = self.registry_digest(str(status.get("run_id", "")))
        registry_final = (registry or {}).get("final")
        if not final and not registry_final:
            return (
                '<p class="meta">determinism: no digest — re-run with '
                "<code>repro simulate --digest --live</code>.</p>"
            )
        shown = final or registry_final
        if final and registry_final:
            if final == registry_final:
                verdict = "digest match (feed = registry)"
                css = "meta"
            else:
                verdict = (
                    f"DIGEST MISMATCH — registry says "
                    f"{html.escape(str(registry_final))}"
                )
                css = "alarm"
        else:
            where = "live feed" if final else "registry"
            verdict = f"digest present ({where} only)"
            css = "meta"
        return (
            f'<p class="{css}">determinism: {verdict} · '
            f"<code>{html.escape(str(shown))}</code></p>"
        )

    def run_page(self, run_id: str) -> Optional[str]:
        state = self.live_state(run_id)
        if state is None:
            return None
        meta = state["status"]["meta"]
        body = (
            f"<h1>repro watch — run {html.escape(run_id)}</h1>"
            f'<p class="meta">{html.escape(str(meta.get("system", "?")))} · '
            f"{html.escape(str(meta.get('workload', '?')))} · "
            f"policy {html.escape(str(meta.get('policy', '?')))} · "
            f"seed {html.escape(str(meta.get('seed', '—')))} · "
            f'<a href="/">back to fleet</a></p>'
            f'<main id="live">{self._run_fragment(state)}</main>'
            f"{_sse_script(f'/events/{run_id}')}"
        )
        return render_page(f"repro watch — {run_id}", body)

    def run_fragment(self, run_id: str) -> Optional[str]:
        state = self.live_state(run_id)
        if state is None:
            return None
        return self._run_fragment(state)


class WatchHandler(BaseHTTPRequestHandler):
    """Routes one runs directory's state; quiet except for errors."""

    #: Injected by :func:`make_server`.
    service: WatchService
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # per-request logging would drown the terminal at 1 Hz SSE

    # -- response helpers ------------------------------------------------------
    def _respond(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _json(self, document: Any, status: int = 200) -> None:
        body = json.dumps(document, indent=1, sort_keys=True).encode("utf-8")
        self._respond(body, "application/json; charset=utf-8", status)

    def _page(self, text: Optional[str]) -> None:
        if text is None:
            self._not_found()
            return
        self._respond(text.encode("utf-8"), "text/html; charset=utf-8")

    def _not_found(self) -> None:
        self._json({"error": "not found", "path": self.path}, status=404)

    def _sse(self, render: Callable[[], Optional[str]]) -> None:
        """Push ``{"html": ...}`` data events whenever the state changes."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        service = self.service
        last_stamp: Optional[tuple] = None
        try:
            while True:
                stamp = service.change_stamp()
                if stamp != last_stamp:
                    last_stamp = stamp
                    fragment = render()
                    if fragment is None:
                        return
                    payload = json.dumps({"html": fragment})
                    self.wfile.write(f"data: {payload}\n\n".encode("utf-8"))
                    self.wfile.flush()
                time.sleep(service.poll_seconds)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; the daemon thread just ends

    # -- routing ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.service
        path = urlparse(self.path).path.rstrip("/") or "/"
        try:
            if path == "/":
                self._page(service.fleet_page())
            elif path == "/api/runs":
                self._json(service.fleet_state())
            elif path == "/api/bench":
                self._json(service.bench_state())
            elif path.startswith("/api/live/"):
                state = service.live_state(path.removeprefix("/api/live/"))
                self._json(state) if state is not None else self._not_found()
            elif path.startswith("/run/"):
                self._page(service.run_page(path.removeprefix("/run/")))
            elif path == "/events":
                self._sse(service.fleet_fragment)
            elif path.startswith("/events/"):
                run_id = path.removeprefix("/events/")
                self._sse(lambda: service.run_fragment(run_id))
            else:
                self._not_found()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client disconnected mid-response


def make_server(
    service: WatchService, *, host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> ThreadingHTTPServer:
    """Bind the watch service (``port=0`` picks a free port, for tests)."""
    handler = type("BoundWatchHandler", (WatchHandler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True  # SSE pollers must not block shutdown
    return server


def serve(
    runs_dir: str | Path = "runs",
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    poll_seconds: float = 1.0,
    top_runs: int = 20,
) -> None:
    """Run ``repro watch`` until interrupted."""
    service = WatchService(
        runs_dir, poll_seconds=poll_seconds, top_runs=top_runs
    )
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro watch: serving http://{bound_host}:{bound_port}/ "
          f"over {service.runs_dir} (Ctrl-C to stop)")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
