"""One-call attachment of the full telemetry stack to a network.

:class:`TelemetryConfig` is the declarative surface exposed by the CLI
(``repro simulate --metrics DIR --trace FILE --epoch N --profile``) and by
the experiment harness (``run_synthetic(..., telemetry=...)``); a
:class:`TelemetrySession` instantiates the requested collectors against a
built network's bus and, at :meth:`~TelemetrySession.finalize`, flushes
their outputs to disk and detaches everything so the network returns to
the zero-subscriber fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Callable, Optional

from .attribution import LatencyLedger
from .digest import RunDigest
from .forensics import ForensicsConfig, ForensicsSession, HealthThresholds
from .hostprof import HostTimeLedger
from .live import LiveFeed
from .metrics import EpochMetrics
from .progress import ProgressReporter
from .trace import ChromeTraceBuilder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.flit import Packet
    from repro.noc.network import Network
    from repro.sim.engine import ProfileReport


@dataclass
class TelemetryConfig:
    """What to collect during a run and where to put it.

    Every field is optional; an all-defaults config collects epoch metrics
    in memory only (reachable via ``RunResult.telemetry.metrics``).
    """

    #: Directory for per-epoch CSVs + ``metrics.json`` (None: keep in memory).
    metrics_dir: Optional[str | Path] = None
    #: Output path for the Chrome trace-event JSON (None: no trace).
    trace_path: Optional[str | Path] = None
    #: Epoch length in cycles for the time-series collectors.
    epoch_length: int = 1_000
    #: Predicate selecting packets for the trace (default: all, capped).
    trace_sample: Optional[Callable[["Packet"], bool]] = None
    #: Cap on traced packets.
    trace_max_packets: int = 512
    #: Emit a live progress line while the run advances.
    progress: bool = False
    #: Cycles between progress updates.
    progress_every: int = 5_000
    #: Progress destination (default: stderr).
    progress_stream: Optional[IO[str]] = None
    #: Profile the run with cProfile and keep the report
    #: (``RunResult.telemetry.profile_report``; ``repro profile`` is the
    #: CLI front end that folds it into speedscope / flamegraph output).
    profile: bool = False
    #: Number of hottest functions in the profile report.
    profile_top: int = 25
    #: Attach the host wall-time ledger
    #: (:class:`~repro.telemetry.hostprof.HostTimeLedger`): attribute
    #: engine wall time to named phases at <5% overhead when strided.
    host_time: bool = False
    #: Time every Nth cycle and extrapolate (1: time every cycle).
    host_stride: int = 1
    #: Attach the per-packet latency-attribution ledger
    #: (:class:`~repro.telemetry.attribution.LatencyLedger`).
    latency_breakdown: bool = False
    #: Write the per-stage breakdown CSV here (implies the ledger).
    breakdown_csv: Optional[str | Path] = None
    #: Collect per-epoch metrics.  On by default; the CLI turns it off for
    #: configs that exist only to carry forensics capture, so plain runs
    #: keep the zero-subscriber fast path.
    epoch_metrics: bool = True
    #: Capture a postmortem bundle when the run fails (deadlock, drain
    #: timeout, invariant violation) — see
    #: :class:`~repro.telemetry.forensics.ForensicsSession`.
    forensics: bool = False
    #: Directory postmortem bundles are written into.
    bundle_dir: str | Path = "forensics"
    #: Attach the :class:`~repro.telemetry.forensics.FlightRecorder` ring
    #: buffer (implies ``forensics``; its tail lands in captured bundles).
    flight_recorder: bool = False
    #: Recorder history window in cycles.
    recorder_window: int = 4_096
    #: Recorder detail preset (``"packet"``, ``"route"`` or ``"full"``).
    recorder_events: str = "packet"
    #: Attach the :class:`~repro.telemetry.forensics.HealthMonitor` live
    #: probes (implies ``forensics``).
    health: bool = False
    #: Cycles between health probes.
    health_every: int = 2_000
    #: Health anomaly thresholds (None: defaults).
    health_thresholds: Optional[HealthThresholds] = None
    #: Stream for live health-anomaly flags (None: keep them in memory).
    health_stream: Optional[IO[str]] = None
    #: Stream run lifecycle / progress / epoch / health events to a
    #: schema-versioned JSONL live feed under ``live_dir`` for
    #: ``repro watch`` (see :class:`~repro.telemetry.live.LiveFeed`).
    live: bool = False
    #: Directory live feeds are appended under.
    live_dir: str | Path = "runs/live"
    #: Cycles between live heartbeat events.
    live_every: int = 1_000
    #: Run id keying the feed file and joining it to the run registry
    #: record (None: a fresh id is generated at attach time).
    run_id: Optional[str] = None
    #: Attach the streaming :class:`~repro.telemetry.digest.RunDigest` —
    #: a platform-stable chained hash of every bus event, persisted on
    #: the run record (``digest`` block) for ``repro diff``.
    digest: bool = False
    #: Cycles between digest checkpoint entries.
    digest_checkpoint_every: int = 1_000
    #: Optional ``(first, last)`` cycle-label window over which the
    #: digest records every per-cycle chain value (implies ``digest``;
    #: used by ``repro diff`` localization re-runs).
    digest_capture: Optional[tuple[int, int]] = None


@dataclass
class TelemetrySession:
    """Live collectors attached to one network for one run."""

    network: "Network"
    config: TelemetryConfig
    metrics: Optional[EpochMetrics] = None
    trace: Optional[ChromeTraceBuilder] = None
    progress: Optional[ProgressReporter] = None
    ledger: Optional[LatencyLedger] = None
    forensics: Optional[ForensicsSession] = None
    #: Host wall-time ledger (set when ``host_time`` was requested; the
    #: harness installs it as ``engine.hostprof``).
    hostprof: Optional[HostTimeLedger] = None
    #: Live JSONL feed for ``repro watch`` (set when ``live`` was
    #: requested; the harness installs it as ``engine.livefeed`` so the
    #: failure path can emit a terminal ``failure`` event).
    live: Optional[LiveFeed] = None
    #: Streaming run digest (set when ``digest`` was requested).
    digest: Optional[RunDigest] = None
    #: cProfile capture (set by the harness when profiling was requested).
    profile_report: Optional["ProfileReport"] = None
    #: Deprecated: rendered pstats text of ``profile_report``.  Kept for
    #: callers of the old ``--profile`` dump; prefer ``profile_report``
    #: and the ``repro profile`` speedscope artifact.
    profile_text: Optional[str] = None
    #: Files written by :meth:`finalize`.
    written: list[Path] = field(default_factory=list)

    @classmethod
    def attach(
        cls,
        network: "Network",
        config: Optional[TelemetryConfig] = None,
        *,
        warmup: int = 0,
        total_cycles: Optional[int] = None,
    ) -> "TelemetrySession":
        """Instantiate the collectors a config asks for and subscribe them."""
        config = config or TelemetryConfig()
        session = cls(network=network, config=config)
        if config.epoch_metrics:
            session.metrics = EpochMetrics(
                network, epoch_length=config.epoch_length, warmup=warmup
            )
        if config.trace_path is not None:
            session.trace = ChromeTraceBuilder(
                network,
                sample=config.trace_sample,
                max_packets=config.trace_max_packets,
            )
        if config.progress:
            session.progress = ProgressReporter(
                network,
                every_cycles=config.progress_every,
                stream=config.progress_stream,
                total_cycles=total_cycles,
            )
        if config.latency_breakdown or config.breakdown_csv is not None:
            session.ledger = LatencyLedger(network, measure_from=warmup)
        if config.host_time:
            session.hostprof = HostTimeLedger(stride=config.host_stride)
        if config.forensics or config.flight_recorder or config.health:
            forensics_config = ForensicsConfig(
                bundle_dir=config.bundle_dir,
                flight_recorder=config.flight_recorder,
                recorder_window=config.recorder_window,
                recorder_events=config.recorder_events,
                health=config.health,
                health_every=config.health_every,
                health_stream=config.health_stream,
            )
            if config.health_thresholds is not None:
                forensics_config.thresholds = config.health_thresholds
            session.forensics = ForensicsSession(network, forensics_config)
        if config.digest or config.digest_capture is not None:
            session.digest = RunDigest(
                network,
                checkpoint_every=config.digest_checkpoint_every,
                capture=config.digest_capture,
            )
        if config.live:
            # Attached last on purpose: the bus dispatches in subscription
            # order, so epoch metrics and health probes for a boundary
            # cycle are already recorded when the feed's heartbeat drains
            # them.
            from .runstore import new_run_id

            session.live = LiveFeed(
                network,
                run_id=config.run_id or new_run_id(),
                directory=config.live_dir,
                every=config.live_every,
                total_cycles=total_cycles,
                metrics=session.metrics,
                monitor=(
                    session.forensics.monitor if session.forensics is not None else None
                ),
                digest=session.digest,
            )
        return session

    def finalize(self, end_cycle: int) -> list[Path]:
        """Close collectors, write outputs, detach from the bus."""
        if self.progress is not None:
            self.progress.close()
        if self.metrics is not None:
            self.metrics.finish(end_cycle)
            if self.config.metrics_dir is not None:
                self.written.extend(self.metrics.write(self.config.metrics_dir))
        if self.trace is not None:
            self.trace.detach()
            if self.config.trace_path is not None:
                self.written.append(self.trace.write(self.config.trace_path))
        if self.ledger is not None:
            self.ledger.detach()
            if self.config.breakdown_csv is not None:
                self.written.append(self.ledger.write_csv(self.config.breakdown_csv))
        if self.forensics is not None:
            self.forensics.detach()
        if self.digest is not None:
            self.digest.detach()
        if self.live is not None:
            # No-op when the engine's failure path already closed the
            # feed with a terminal failure event.
            self.written.append(self.live.finish(end_cycle))
        return self.written
