"""Structured event-trace export in Chrome trace-event format.

:class:`ChromeTraceBuilder` subscribes to the telemetry bus and records a
JSON trace loadable by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``:

* **packet lanes** — every sampled packet gets one thread row under the
  "packets" process: a whole-lifetime slice (creation to tail ejection),
  nested per-hop slices (link accept to head arrival downstream), and
  instant markers for injection, hetero-PHY dispatch decisions and
  reorder-buffer holds/releases;
* **component lanes** — counter tracks under the "network" process:
  buffered and in-flight flits sampled every ``counter_interval`` cycles,
  plus per-hetero-link reorder-buffer occupancy.

One simulated cycle maps to one microsecond of trace time, so trace
timestamps read directly as cycles.  Keep the sample predicate selective
on long runs: events are held in memory until :meth:`write`, and
``max_packets`` caps the sampled population as a backstop.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.flit import Flit, Packet
    from repro.noc.link import Link
    from repro.noc.network import Network
    from repro.noc.router import Router

#: Trace process ids (named via metadata events).
PID_NETWORK = 1
PID_PACKETS = 2


class ChromeTraceBuilder:
    """Record a Chrome trace-event JSON for sampled packets and counters.

    Parameters
    ----------
    network:
        The built network to observe.
    sample:
        Predicate choosing which packets get a lane (default: all, up to
        ``max_packets``).
    max_packets:
        Hard cap on sampled packets; later packets are ignored.
    counter_interval:
        Cycles between counter samples (0 disables counter tracks).
    """

    def __init__(
        self,
        network: "Network",
        *,
        sample: Optional[Callable[["Packet"], bool]] = None,
        max_packets: int = 512,
        counter_interval: int = 100,
    ) -> None:
        if max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        if counter_interval < 0:
            raise ValueError("counter_interval must be >= 0")
        self.network = network
        self.sample = sample or (lambda packet: True)
        self.max_packets = max_packets
        self.counter_interval = counter_interval
        self.events: list[dict] = [
            _meta(PID_NETWORK, "process_name", name="network"),
            _meta(PID_PACKETS, "process_name", name="packets"),
        ]
        self._sampled: set[int] = set()
        self._saturated = False
        #: pid -> (link, accept cycle) for a head flit in flight on a link.
        self._pending_hop: dict[int, tuple["Link", int]] = {}
        self._closed = False
        bus = network.telemetry
        bus.subscribe("packet_inject", self._on_inject)
        bus.subscribe("link_accept", self._on_link_accept)
        bus.subscribe("flit_recv", self._on_flit_recv)
        bus.subscribe("packet_eject", self._on_eject)
        bus.subscribe("phy_dispatch", self._on_phy_dispatch)
        bus.subscribe("rob_insert", self._on_rob_insert)
        bus.subscribe("rob_release", self._on_rob_release)
        if counter_interval:
            bus.subscribe("cycle_end", self._on_cycle_end)

    # -- sampling ----------------------------------------------------------
    def _admit(self, packet: "Packet") -> bool:
        pid = packet.pid
        if pid in self._sampled:
            return True
        if self._saturated or not self.sample(packet):
            return False
        if len(self._sampled) >= self.max_packets:
            self._saturated = True
            return False
        self._sampled.add(pid)
        self.events.append(
            _meta(
                PID_PACKETS,
                "thread_name",
                tid=pid,
                name=f"pkt {pid} {packet.src}->{packet.dst}",
            )
        )
        return True

    # -- bus callbacks -----------------------------------------------------
    def _on_inject(self, network: "Network", packet: "Packet") -> None:
        if not self._admit(packet):
            return
        self.events.append(
            _instant(PID_PACKETS, packet.pid, packet.create_cycle, "inject")
        )

    def _on_link_accept(self, link: "Link", flit: "Flit", vc: int, now: int) -> None:
        if not flit.is_head:
            return
        packet = flit.packet
        if packet.pid not in self._sampled:
            return
        self._pending_hop[packet.pid] = (link, now)

    def _on_flit_recv(
        self, router: "Router", port: int, vc: int, flit: "Flit", now: int
    ) -> None:
        if not flit.is_head:
            return
        pid = flit.packet.pid
        pending = self._pending_hop.get(pid)
        if pending is None:
            return
        link, accepted = pending
        if router.inputs[port].link is not link:
            return
        del self._pending_hop[pid]
        spec = link.spec
        self.events.append(
            _slice(
                PID_PACKETS,
                pid,
                accepted,
                max(now - accepted, 0),
                f"{spec.src}->{spec.dst} [{spec.kind.value}]",
                cat="hop",
            )
        )

    def _on_eject(self, router: "Router", packet: "Packet", now: int) -> None:
        pid = packet.pid
        if pid not in self._sampled:
            return
        self._pending_hop.pop(pid, None)
        self.events.append(
            _slice(
                PID_PACKETS,
                pid,
                packet.create_cycle,
                max(now - packet.create_cycle, 0),
                f"pkt {pid} {packet.src}->{packet.dst}",
                cat="packet",
            )
        )

    def _on_phy_dispatch(
        self, link: "Link", flit: "Flit", vc: int, phy: str, now: int
    ) -> None:
        if flit.is_head and flit.packet.pid in self._sampled:
            label = {"P": "parallel", "S": "serial"}.get(phy, phy)
            self.events.append(
                _instant(PID_PACKETS, flit.packet.pid, now, f"dispatch {label}")
            )

    def _on_rob_insert(self, link: "Link", flit: "Flit", vc: int, now: int) -> None:
        if flit.is_head and flit.packet.pid in self._sampled:
            self.events.append(_instant(PID_PACKETS, flit.packet.pid, now, "rob hold"))

    def _on_rob_release(self, link: "Link", flit: "Flit", vc: int, now: int) -> None:
        if flit.is_head and flit.packet.pid in self._sampled:
            self.events.append(
                _instant(PID_PACKETS, flit.packet.pid, now, "rob release")
            )

    def _on_cycle_end(self, network: "Network", now: int) -> None:
        if now % self.counter_interval:
            return
        self.events.append(
            _counter(PID_NETWORK, 0, now, "flits", buffered=network.buffered_flits(),
                     in_flight=network.in_flight_flits())
        )
        for index, link in enumerate(network.links):
            rob = getattr(link, "rob", None)
            if rob is not None:
                spec = link.spec
                self.events.append(
                    _counter(
                        PID_NETWORK,
                        index + 1,
                        now,
                        f"rob {spec.src}->{spec.dst}",
                        occupancy=rob.occupancy,
                    )
                )

    # -- output ------------------------------------------------------------
    def detach(self) -> None:
        """Unsubscribe from the bus (recording stops, events are kept)."""
        if self._closed:
            return
        bus = self.network.telemetry
        bus.unsubscribe("packet_inject", self._on_inject)
        bus.unsubscribe("link_accept", self._on_link_accept)
        bus.unsubscribe("flit_recv", self._on_flit_recv)
        bus.unsubscribe("packet_eject", self._on_eject)
        bus.unsubscribe("phy_dispatch", self._on_phy_dispatch)
        bus.unsubscribe("rob_insert", self._on_rob_insert)
        bus.unsubscribe("rob_release", self._on_rob_release)
        if self.counter_interval:
            bus.unsubscribe("cycle_end", self._on_cycle_end)
        self._closed = True

    def to_dict(self) -> dict:
        """The trace document (Chrome trace-event JSON object form)."""
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.telemetry",
                "clock": "1 simulated cycle = 1 us",
                "sampled_packets": len(self._sampled),
            },
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the trace to ``path`` (creating parent directories)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        return path


# -- event constructors (Chrome trace-event schema) -------------------------
def _meta(pid: int, kind: str, *, tid: int = 0, name: str) -> dict:
    return {"ph": "M", "pid": pid, "tid": tid, "name": kind, "args": {"name": name}}


def _slice(pid: int, tid: int, ts: int, dur: int, name: str, *, cat: str) -> dict:
    return {
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": float(ts),
        "dur": float(dur),
        "name": name,
        "cat": cat,
    }


def _instant(pid: int, tid: int, ts: int, name: str) -> dict:
    return {
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "ts": float(ts),
        "name": name,
        "s": "t",
        "cat": "marker",
    }


def _counter(pid: int, tid: int, ts: int, name: str, **values: int) -> dict:
    return {
        "ph": "C",
        "pid": pid,
        "tid": tid,
        "ts": float(ts),
        "name": name,
        "args": dict(values),
    }
