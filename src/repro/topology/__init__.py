"""Chiplet grids and multi-chiplet system builders."""

from .grid import DIRECTIONS, OPPOSITE, ChipletGrid
from .multipackage import build_hetero_channel_packages, package_of
from .system import FAMILIES, SystemSpec, build_system

__all__ = [
    "ChipletGrid",
    "DIRECTIONS",
    "FAMILIES",
    "OPPOSITE",
    "SystemSpec",
    "build_hetero_channel_packages",
    "build_system",
    "package_of",
]
