"""Chiplet grid geometry.

Every evaluated system is a ``Cx x Cy`` grid of identical chiplets, each
carrying an ``Nx x Ny`` 2D-mesh network-on-chip whose edge nodes are
interface nodes (Fig 9a).  Because chiplets tile seamlessly, the package
forms one *global* 2D mesh of ``(Cx*Nx) x (Cy*Ny)`` nodes; inter-chiplet
links simply continue the mesh across die boundaries.  All routing in this
repository reasons in these global coordinates.

Node ids are row-major over global coordinates:
``node = gy * (Cx * Nx) + gx``.
Chiplet ids are row-major over chiplet coordinates:
``chiplet = cy * Cx + cx``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Mesh directions: name -> (dx, dy).
DIRECTIONS = {"E": (1, 0), "W": (-1, 0), "N": (0, 1), "S": (0, -1)}
OPPOSITE = {"E": "W", "W": "E", "N": "S", "S": "N"}


@dataclass(frozen=True)
class ChipletGrid:
    """Geometry of a multi-chiplet system.

    Parameters
    ----------
    chiplets_x, chiplets_y:
        Chiplet grid dimensions (Cx, Cy).
    nodes_x, nodes_y:
        Per-chiplet NoC mesh dimensions (Nx, Ny).
    """

    chiplets_x: int
    chiplets_y: int
    nodes_x: int
    nodes_y: int

    def __post_init__(self) -> None:
        for name in ("chiplets_x", "chiplets_y", "nodes_x", "nodes_y"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    # -- sizes ---------------------------------------------------------------
    @property
    def n_chiplets(self) -> int:
        return self.chiplets_x * self.chiplets_y

    @property
    def nodes_per_chiplet(self) -> int:
        return self.nodes_x * self.nodes_y

    @property
    def n_nodes(self) -> int:
        return self.n_chiplets * self.nodes_per_chiplet

    @property
    def width(self) -> int:
        """Global mesh width in nodes."""
        return self.chiplets_x * self.nodes_x

    @property
    def height(self) -> int:
        """Global mesh height in nodes."""
        return self.chiplets_y * self.nodes_y

    # -- coordinate conversions ----------------------------------------------
    def node_at(self, gx: int, gy: int) -> int:
        if not (0 <= gx < self.width and 0 <= gy < self.height):
            raise ValueError(f"({gx}, {gy}) outside {self.width}x{self.height} grid")
        return gy * self.width + gx

    def coords(self, node: int) -> tuple[int, int]:
        """Global (gx, gy) of a node id."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def chiplet_of(self, node: int) -> int:
        gx, gy = self.coords(node)
        return (gy // self.nodes_y) * self.chiplets_x + (gx // self.nodes_x)

    def chiplet_coords(self, chiplet: int) -> tuple[int, int]:
        """Chiplet (cx, cy) of a chiplet id."""
        if not 0 <= chiplet < self.n_chiplets:
            raise ValueError(f"chiplet {chiplet} out of range")
        return chiplet % self.chiplets_x, chiplet // self.chiplets_x

    def chiplet_at(self, cx: int, cy: int) -> int:
        if not (0 <= cx < self.chiplets_x and 0 <= cy < self.chiplets_y):
            raise ValueError(f"chiplet ({cx}, {cy}) out of range")
        return cy * self.chiplets_x + cx

    def local_coords(self, node: int) -> tuple[int, int]:
        """Node (lx, ly) within its chiplet."""
        gx, gy = self.coords(node)
        return gx % self.nodes_x, gy % self.nodes_y

    def node_of(self, chiplet: int, lx: int, ly: int) -> int:
        """Global node id of local coordinates within a chiplet."""
        if not (0 <= lx < self.nodes_x and 0 <= ly < self.nodes_y):
            raise ValueError(f"local ({lx}, {ly}) out of range")
        cx, cy = self.chiplet_coords(chiplet)
        return self.node_at(cx * self.nodes_x + lx, cy * self.nodes_y + ly)

    # -- structural queries -----------------------------------------------------
    def neighbor(self, node: int, direction: str) -> int | None:
        """Global-mesh neighbour in a direction, or None at the mesh edge."""
        dx, dy = DIRECTIONS[direction]
        gx, gy = self.coords(node)
        nx, ny = gx + dx, gy + dy
        if not (0 <= nx < self.width and 0 <= ny < self.height):
            return None
        return self.node_at(nx, ny)

    def crosses_chiplet_boundary(self, node: int, direction: str) -> bool:
        """True if the mesh link leaving ``node`` in ``direction`` is inter-chiplet."""
        other = self.neighbor(node, direction)
        return other is not None and self.chiplet_of(other) != self.chiplet_of(node)

    def is_interface_node(self, node: int) -> bool:
        """True for chiplet-edge nodes (all carry external interfaces, Fig 9a)."""
        lx, ly = self.local_coords(node)
        return (
            lx == 0
            or ly == 0
            or lx == self.nodes_x - 1
            or ly == self.nodes_y - 1
        )

    def is_core_node(self, node: int) -> bool:
        """True for chiplet-internal nodes (no external channels)."""
        return not self.is_interface_node(node)

    def core_nodes(self) -> list[int]:
        """All core (non-interface) nodes of the system."""
        return [n for n in range(self.n_nodes) if self.is_core_node(n)]

    def perimeter_nodes(self, chiplet: int) -> list[int]:
        """Edge nodes of one chiplet, enumerated clockwise from local (0, 0).

        The enumeration is identical for every chiplet, so the same
        perimeter slot refers to the same physical pad position on all dies
        (chiplets are identical, Sec 2.1).
        """
        nx, ny = self.nodes_x, self.nodes_y
        ring: list[tuple[int, int]] = []
        if nx == 1 and ny == 1:
            ring = [(0, 0)]
        elif nx == 1:
            ring = [(0, y) for y in range(ny)]
        elif ny == 1:
            ring = [(x, 0) for x in range(nx)]
        else:
            ring.extend((x, 0) for x in range(nx))  # south edge, W->E
            ring.extend((nx - 1, y) for y in range(1, ny))  # east edge, S->N
            ring.extend((x, ny - 1) for x in range(nx - 2, -1, -1))  # north, E->W
            ring.extend((0, y) for y in range(ny - 2, 0, -1))  # west, N->S
        return [self.node_of(chiplet, lx, ly) for lx, ly in ring]

    def chiplet_nodes(self, chiplet: int) -> Iterator[int]:
        """All nodes of one chiplet."""
        for ly in range(self.nodes_y):
            for lx in range(self.nodes_x):
                yield self.node_of(chiplet, lx, ly)

    def mesh_chiplet_distance(self, c1: int, c2: int) -> int:
        """Manhattan distance between two chiplets on the chiplet grid."""
        x1, y1 = self.chiplet_coords(c1)
        x2, y2 = self.chiplet_coords(c2)
        return abs(x1 - x2) + abs(y1 - y2)

    def cube_distance(self, c1: int, c2: int) -> int:
        """Hamming distance between chiplet ids (hypercube hop count)."""
        return (c1 ^ c2).bit_count()
