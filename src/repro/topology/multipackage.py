"""Multi-package (higher-hierarchy) hetero-channel systems (Sec 3.2).

Fig 6(b) of the paper shows the hetero-channel interface's defining
freedom: while the parallel PHYs connect neighbours inside a package, the
long-reach serial PHYs can "lead out of the package for higher-hierarchy
interconnection".  This builder realizes that: the chiplet grid is tiled
into ``packages_x x packages_y`` packages; the parallel mesh is unchanged
(it never crosses a package boundary by construction when the package
split aligns with the chiplet grid), and hypercube serial links whose
endpoints sit in different packages become *off-package* links with
higher delay and energy (cable/substrate SerDes vs on-package reach).

Routing is untouched: Algorithm 1's escape remains the parallel mesh and
the cube links stay fully adaptive, so Theorem 1 carries over verbatim.
"""

from __future__ import annotations

from dataclasses import replace

from repro.noc.channel import ChannelKind, PhyParams
from repro.sim.config import SimConfig
from .grid import ChipletGrid
from .system import SystemSpec, build_hetero_channel


def package_of(grid: ChipletGrid, chiplet: int, packages: tuple[int, int]) -> int:
    """The package index hosting a chiplet."""
    px, py = packages
    if grid.chiplets_x % px or grid.chiplets_y % py:
        raise ValueError(
            f"package split {packages} does not tile the "
            f"{grid.chiplets_x}x{grid.chiplets_y} chiplet grid"
        )
    cx, cy = grid.chiplet_coords(chiplet)
    span_x = grid.chiplets_x // px
    span_y = grid.chiplets_y // py
    return (cy // span_y) * px + (cx // span_x)


def build_hetero_channel_packages(
    grid: ChipletGrid,
    config: SimConfig,
    *,
    packages: tuple[int, int],
    off_package_delay_factor: float = 2.0,
    off_package_energy_factor: float = 1.5,
) -> SystemSpec:
    """A hetero-channel system spanning several packages.

    Short-reach parallel PHYs cannot leave a package, so mesh-position
    links crossing a package boundary are realized with serial PHYs
    instead (the topology — and with it Algorithm 1's escape mesh — is
    unchanged; only the physical kind of those links changes).  All
    off-package serial links, mesh-position and hypercube alike, get
    ``off_package_delay_factor`` x the serial delay and
    ``off_package_energy_factor`` x the serial energy.
    """
    if off_package_delay_factor < 1 or off_package_energy_factor < 1:
        raise ValueError("off-package factors must be >= 1")
    px, py = packages
    if px < 1 or py < 1:
        raise ValueError("need at least one package per axis")
    spec = build_hetero_channel(grid, config)
    serial = config.serial_phy
    off_package_phy = PhyParams(
        serial.bandwidth,
        max(1, round(serial.delay * off_package_delay_factor)),
        serial.energy_pj_per_bit * off_package_energy_factor,
    )
    channels = []
    n_off_package = 0
    for channel in spec.channels:
        src_pkg = package_of(grid, grid.chiplet_of(channel.src), packages)
        dst_pkg = package_of(grid, grid.chiplet_of(channel.dst), packages)
        if src_pkg == dst_pkg:
            channels.append(channel)
            continue
        # Off-package: realized with (slower, hotter) serial PHYs.
        channel = replace(channel, kind=ChannelKind.SERIAL, phy=off_package_phy)
        channels.append(channel)
        n_off_package += 1
    if n_off_package == 0 and (px > 1 or py > 1):
        raise ValueError("package split produced no off-package serial links")
    spec.channels = channels
    spec.name = f"{spec.name}-pkg{px}x{py}"
    return spec
