"""Multi-chiplet system builders.

A :class:`SystemSpec` is a pure description — grid geometry plus channel
specs — of one of the five system families evaluated in the paper:

``parallel_mesh``
    Uniform parallel-IF 2D-mesh: chiplets tile into one global mesh
    (the conventional baseline, Sec 2.1).
``serial_torus``
    Uniform serial-IF 2D-torus: mesh neighbour links plus wraparound links,
    all serial (baseline of Sec 8.1.1).
``hetero_phy_torus``
    Hetero-PHY 2D-torus (Fig 6a): neighbour links are bonded
    parallel+serial hetero-PHY channels, wraparound links are serial-only
    (parallel PHYs cannot reach across the package).
``serial_hypercube``
    Uniform serial-IF chiplet hypercube (Fig 10a, reproduced from [30]).
``hetero_channel``
    Hetero-channel system (Fig 10): parallel-IF chiplet 2D-mesh *and*
    serial-IF chiplet hypercube simultaneously; interface nodes expose two
    independent channels.

Builders only create channel descriptions; network instantiation lives in
:mod:`repro.sim.build` and routing in :mod:`repro.routing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.channel import ChannelKind, ChannelSpec
from repro.sim.config import SimConfig
from .grid import OPPOSITE, ChipletGrid

#: System family labels.
FAMILIES = (
    "parallel_mesh",
    "serial_torus",
    "hetero_phy_torus",
    "serial_hypercube",
    "hetero_channel",
)


@dataclass
class SystemSpec:
    """A fully described multi-chiplet interconnection system."""

    name: str
    family: str
    grid: ChipletGrid
    config: SimConfig
    channels: list[ChannelSpec] = field(default_factory=list)
    #: chiplet id -> cube dimension -> hosting node ids (one link each).
    cube_hosts: dict[int, dict[int, list[int]]] = field(default_factory=dict)
    n_cube_dims: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown system family {self.family!r}")

    @property
    def has_wraparound(self) -> bool:
        return self.family in ("serial_torus", "hetero_phy_torus")

    @property
    def has_cube(self) -> bool:
        return self.family in ("serial_hypercube", "hetero_channel")

    def channels_by_kind(self) -> dict[ChannelKind, int]:
        """Count of directed channels per physical kind."""
        counts: dict[ChannelKind, int] = {}
        for spec in self.channels:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return counts


class _Builder:
    """Shared channel-emission helpers for all system families."""

    def __init__(self, grid: ChipletGrid, config: SimConfig) -> None:
        self.grid = grid
        self.config = config
        self.channels: list[ChannelSpec] = []

    def _emit(self, src: int, dst: int, kind: ChannelKind, tag) -> None:
        config = self.config
        if kind is ChannelKind.ONCHIP:
            phy, serial, depth = config.onchip_phy, None, config.onchip_buffer
        elif kind is ChannelKind.PARALLEL:
            phy, serial, depth = config.parallel_phy, None, config.interface_buffer
        elif kind is ChannelKind.SERIAL:
            phy, serial, depth = config.serial_phy, None, config.interface_buffer
        elif kind is ChannelKind.HETERO_PHY:
            phy, serial, depth = (
                config.parallel_phy,
                config.serial_phy,
                config.interface_buffer,
            )
        else:  # pragma: no cover - exhaustive
            raise ValueError(kind)
        self.channels.append(
            ChannelSpec(
                src=src,
                dst=dst,
                kind=kind,
                phy=phy,
                serial_phy=serial,
                n_vcs=config.n_vcs,
                buffer_depth=depth,
                tag=tag,
            )
        )

    def add_global_mesh(self, interface_kind: ChannelKind) -> None:
        """Emit all mesh-direction channels of the global mesh.

        On-chip hops get ``ONCHIP`` channels; hops crossing a chiplet
        boundary get ``interface_kind`` channels.  Every channel is tagged
        ``("mesh", direction)``.
        """
        grid = self.grid
        for node in range(grid.n_nodes):
            for direction in ("E", "N"):  # emit each undirected edge once
                other = grid.neighbor(node, direction)
                if other is None:
                    continue
                if grid.crosses_chiplet_boundary(node, direction):
                    kind = interface_kind
                else:
                    kind = ChannelKind.ONCHIP
                self._emit(node, other, kind, ("mesh", direction))
                self._emit(other, node, kind, ("mesh", OPPOSITE[direction]))

    def add_onchip_meshes(self) -> None:
        """Emit only the intra-chiplet mesh channels (no mesh interfaces)."""
        grid = self.grid
        for node in range(grid.n_nodes):
            for direction in ("E", "N"):
                other = grid.neighbor(node, direction)
                if other is None or grid.crosses_chiplet_boundary(node, direction):
                    continue
                self._emit(node, other, ChannelKind.ONCHIP, ("mesh", direction))
                self._emit(other, node, ChannelKind.ONCHIP, ("mesh", OPPOSITE[direction]))

    def add_wraparound(self) -> None:
        """Emit node-level torus wraparound channels (serial, Sec 8.1.1).

        Each row gets an E/W wrap pair between the global mesh edges, each
        column an N/S pair; they exist only when there is more than one
        chiplet along the axis (a single chiplet would wrap to itself).
        """
        grid = self.grid
        if grid.chiplets_x > 1:
            for gy in range(grid.height):
                west = grid.node_at(0, gy)
                east = grid.node_at(grid.width - 1, gy)
                self._emit(west, east, ChannelKind.SERIAL, ("wrap", "W"))
                self._emit(east, west, ChannelKind.SERIAL, ("wrap", "E"))
        if grid.chiplets_y > 1:
            for gx in range(grid.width):
                south = grid.node_at(gx, 0)
                north = grid.node_at(gx, grid.height - 1)
                self._emit(south, north, ChannelKind.SERIAL, ("wrap", "S"))
                self._emit(north, south, ChannelKind.SERIAL, ("wrap", "N"))

    def add_hypercube(self) -> tuple[dict[int, dict[int, list[int]]], int]:
        """Emit serial hypercube channels between chiplets.

        The chiplet count must be a power of two.  Each cube dimension is
        hosted by ``perimeter // dims`` interface nodes per chiplet (at
        least one); hosts occupy the same perimeter slots on every chiplet,
        so both endpoints of an edge use the same pad position.
        """
        grid = self.grid
        n = grid.n_chiplets
        if n < 2 or n & (n - 1):
            raise ValueError(f"hypercube needs a power-of-two chiplet count, got {n}")
        dims = n.bit_length() - 1
        perimeter = grid.perimeter_nodes(0)
        links_per_dim = max(1, len(perimeter) // dims)
        hosts: dict[int, dict[int, list[int]]] = {}
        for chiplet in range(n):
            ring = grid.perimeter_nodes(chiplet)
            hosts[chiplet] = {
                dim: [
                    ring[(dim * links_per_dim + i) % len(ring)]
                    for i in range(links_per_dim)
                ]
                for dim in range(dims)
            }
        for chiplet in range(n):
            for dim in range(dims):
                other = chiplet ^ (1 << dim)
                if other < chiplet:
                    continue  # emit each undirected edge once
                for i in range(links_per_dim):
                    a = hosts[chiplet][dim][i]
                    b = hosts[other][dim][i]
                    self._emit(a, b, ChannelKind.SERIAL, ("cube", dim))
                    self._emit(b, a, ChannelKind.SERIAL, ("cube", dim))
        return hosts, dims


def build_parallel_mesh(grid: ChipletGrid, config: SimConfig) -> SystemSpec:
    """Uniform parallel-IF 2D-mesh system."""
    builder = _Builder(grid, config)
    builder.add_global_mesh(ChannelKind.PARALLEL)
    return SystemSpec(
        name=f"parallel-mesh-{grid.chiplets_x}x{grid.chiplets_y}({grid.nodes_x}x{grid.nodes_y})",
        family="parallel_mesh",
        grid=grid,
        config=config,
        channels=builder.channels,
    )


def build_serial_torus(grid: ChipletGrid, config: SimConfig) -> SystemSpec:
    """Uniform serial-IF 2D-torus system."""
    builder = _Builder(grid, config)
    builder.add_global_mesh(ChannelKind.SERIAL)
    builder.add_wraparound()
    return SystemSpec(
        name=f"serial-torus-{grid.chiplets_x}x{grid.chiplets_y}({grid.nodes_x}x{grid.nodes_y})",
        family="serial_torus",
        grid=grid,
        config=config,
        channels=builder.channels,
    )


def build_hetero_phy_torus(grid: ChipletGrid, config: SimConfig) -> SystemSpec:
    """Hetero-PHY 2D-torus (Fig 6a): bonded neighbour links, serial wraps."""
    builder = _Builder(grid, config)
    builder.add_global_mesh(ChannelKind.HETERO_PHY)
    builder.add_wraparound()
    return SystemSpec(
        name=f"hetero-phy-torus-{grid.chiplets_x}x{grid.chiplets_y}({grid.nodes_x}x{grid.nodes_y})",
        family="hetero_phy_torus",
        grid=grid,
        config=config,
        channels=builder.channels,
    )


def build_serial_hypercube(grid: ChipletGrid, config: SimConfig) -> SystemSpec:
    """Uniform serial-IF chiplet hypercube (Fig 10a)."""
    builder = _Builder(grid, config)
    builder.add_onchip_meshes()
    hosts, dims = builder.add_hypercube()
    return SystemSpec(
        name=f"serial-hypercube-{grid.n_chiplets}({grid.nodes_x}x{grid.nodes_y})",
        family="serial_hypercube",
        grid=grid,
        config=config,
        channels=builder.channels,
        cube_hosts=hosts,
        n_cube_dims=dims,
    )


def build_hetero_channel(grid: ChipletGrid, config: SimConfig) -> SystemSpec:
    """Hetero-channel system: parallel mesh + serial hypercube (Fig 10)."""
    builder = _Builder(grid, config)
    builder.add_global_mesh(ChannelKind.PARALLEL)
    hosts, dims = builder.add_hypercube()
    return SystemSpec(
        name=f"hetero-channel-{grid.n_chiplets}({grid.nodes_x}x{grid.nodes_y})",
        family="hetero_channel",
        grid=grid,
        config=config,
        channels=builder.channels,
        cube_hosts=hosts,
        n_cube_dims=dims,
    )


BUILDERS = {
    "parallel_mesh": build_parallel_mesh,
    "serial_torus": build_serial_torus,
    "hetero_phy_torus": build_hetero_phy_torus,
    "serial_hypercube": build_serial_hypercube,
    "hetero_channel": build_hetero_channel,
}


def build_system(family: str, grid: ChipletGrid, config: SimConfig) -> SystemSpec:
    """Build a system of the given family (see :data:`FAMILIES`)."""
    try:
        builder = BUILDERS[family]
    except KeyError:
        raise ValueError(f"unknown system family {family!r}") from None
    return builder(grid, config)
