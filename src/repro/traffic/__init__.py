"""Workloads: synthetic patterns, trace replay, PARSEC and HPC generators."""

from .hpc import embed_ranks, generate_cns_trace, generate_moc_trace, packetize
from .injection import SyntheticWorkload
from .parsec import PARSEC_PROFILES, generate_parsec_trace
from .reqreply import RequestReplyWorkload
from .patterns import FIGURE_PATTERNS, PATTERNS, TrafficPattern, make_pattern
from .trace import Trace, TraceRecord, TraceWorkload

__all__ = [
    "FIGURE_PATTERNS",
    "PARSEC_PROFILES",
    "PATTERNS",
    "RequestReplyWorkload",
    "SyntheticWorkload",
    "Trace",
    "TraceRecord",
    "TraceWorkload",
    "TrafficPattern",
    "embed_ranks",
    "generate_cns_trace",
    "generate_moc_trace",
    "generate_parsec_trace",
    "make_pattern",
    "packetize",
]
