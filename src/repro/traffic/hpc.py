"""Synthetic HPC communication traces (DUMPI substitute).

The paper replays two NERSC Hopper DUMPI traces, each using 1024 MPI ranks
[1, 12]:

* **CNS** — a compressible Navier-Stokes solver: iterative 3D
  nearest-neighbour halo exchange plus periodic small allreduce phases;
  traffic is neighbour-dominated.
* **MOC** — a 3D method-of-characteristics transport code: angular sweeps
  create long-range, transpose-like exchange across the whole machine;
  traffic is long-range-dominated.

The original trace files are not bundled; these generators reproduce the
communication *structure* that the figures depend on (rank topology,
message sizes, neighbour vs long-range balance) deterministically from a
seed.  Ranks are embedded onto system nodes with
:func:`embed_ranks`; Fig 15 uses core (non-interface) nodes only.
"""

from __future__ import annotations

import numpy as np

from repro.topology.grid import ChipletGrid
from .trace import Trace, TraceRecord

#: Bytes per flit (64-bit flits).
BYTES_PER_FLIT = 8


def packetize(
    cycle: int,
    src: int,
    dst: int,
    n_bytes: int,
    *,
    max_packet_flits: int = 16,
    msg_class: str = "data",
    ordered: bool = True,
) -> list[TraceRecord]:
    """Split one message into packet records, one packet per cycle.

    Large MPI messages become trains of ``max_packet_flits``-flit packets
    injected on consecutive cycles (the source cannot produce faster than
    one packet per cycle anyway).
    """
    if src == dst:
        return []
    flits = max(1, -(-n_bytes // BYTES_PER_FLIT))
    records: list[TraceRecord] = []
    offset = 0
    while flits > 0:
        length = min(flits, max_packet_flits)
        records.append(
            TraceRecord(cycle + offset, src, dst, length, msg_class, 0, ordered)
        )
        flits -= length
        offset += 1
    return records


def _rank_grid_shape(n_ranks: int) -> tuple[int, int, int]:
    """A near-cubic 3D factorization of the rank count."""
    best: tuple[int, int, int] | None = None
    for x in range(1, int(round(n_ranks ** (1 / 3))) + 2):
        if n_ranks % x:
            continue
        rest = n_ranks // x
        for y in range(x, int(rest**0.5) + 1):
            if rest % y:
                continue
            z = rest // y
            cand = (x, y, z)
            if best is None or (cand[2] - cand[0]) < (best[2] - best[0]):
                best = cand
    if best is None:
        best = (1, 1, n_ranks)
    return best


def _allreduce_records(
    cycle: int, n_ranks: int, n_bytes: int
) -> list[tuple[int, int, int, int]]:
    """(cycle, src, dst, bytes) tuples of a recursive-doubling allreduce."""
    out: list[tuple[int, int, int, int]] = []
    stage = 1
    t = cycle
    while stage < n_ranks:
        for rank in range(n_ranks):
            partner = rank ^ stage
            if partner < n_ranks:
                out.append((t, rank, partner, n_bytes))
        stage <<= 1
        t += 4  # per-stage pipelining gap
    return out


def generate_cns_trace(
    n_ranks: int = 1024,
    iterations: int = 20,
    *,
    halo_bytes: int = 512,
    allreduce_bytes: int = 64,
    allreduce_every: int = 4,
    iteration_gap: int = 2000,
    seed: int = 11,
) -> Trace:
    """Compressible Navier-Stokes: 3D halo exchange + periodic allreduce."""
    if n_ranks < 2:
        raise ValueError("need at least two ranks")
    rx, ry, rz = _rank_grid_shape(n_ranks)
    rng = np.random.default_rng(seed)
    messages: list[tuple[int, int, int, int]] = []  # (cycle, src, dst, bytes)
    for it in range(iterations):
        base = it * iteration_gap
        for rank in range(n_ranks):
            x = rank % rx
            y = (rank // rx) % ry
            z = rank // (rx * ry)
            jitter = int(rng.integers(0, 8))
            for dx, dy, dz in (
                (1, 0, 0),
                (-1, 0, 0),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 1),
                (0, 0, -1),
            ):
                nx, ny, nz = x + dx, y + dy, z + dz
                if not (0 <= nx < rx and 0 <= ny < ry and 0 <= nz < rz):
                    continue
                partner = nx + ny * rx + nz * rx * ry
                messages.append((base + jitter, rank, partner, halo_bytes))
        if it % allreduce_every == allreduce_every - 1:
            messages.extend(
                _allreduce_records(base + iteration_gap // 2, n_ranks, allreduce_bytes)
            )
    return _to_trace(messages, name="hpc-cns")


def generate_moc_trace(
    n_ranks: int = 1024,
    iterations: int = 12,
    *,
    sweep_bytes: int = 256,
    partners_per_sweep: int = 4,
    iteration_gap: int = 1200,
    seed: int = 13,
) -> Trace:
    """3D method of characteristics: long-range angular-sweep exchange.

    Each sweep sends medium messages to strided partners across the whole
    rank space (``rank ^ 2^k`` and a transpose partner), modelling the
    characteristic lines crossing the domain.
    """
    if n_ranks < 2:
        raise ValueError("need at least two ranks")
    rng = np.random.default_rng(seed)
    bits = max(1, (n_ranks - 1).bit_length())
    messages: list[tuple[int, int, int, int]] = []
    for it in range(iterations):
        base = it * iteration_gap
        strides = sorted(
            int(s) for s in rng.choice(bits, size=min(partners_per_sweep, bits), replace=False)
        )
        for rank in range(n_ranks):
            jitter = int(rng.integers(0, 16))
            for k in strides:
                partner = (rank ^ (1 << k)) % n_ranks
                if partner != rank:
                    messages.append((base + jitter, rank, partner, sweep_bytes))
            # transpose-like partner: bit-reversed rank
            rev = int(format(rank, f"0{bits}b")[::-1], 2) % n_ranks
            if rev != rank:
                messages.append((base + jitter + 8, rank, rev, sweep_bytes))
    return _to_trace(messages, name="hpc-moc")


def _to_trace(messages: list[tuple[int, int, int, int]], name: str) -> Trace:
    records: list[TraceRecord] = []
    for cycle, src, dst, n_bytes in messages:
        records.extend(packetize(cycle, src, dst, n_bytes, msg_class="bulk"))
    return Trace(records, name=name)


def embed_ranks(
    trace: Trace, grid: ChipletGrid, *, core_only: bool = False
) -> Trace:
    """Map rank-indexed records onto system node ids.

    Ranks are spread evenly over the chosen node population (all nodes, or
    core nodes only for Fig 15).  Messages whose endpoints land on the
    same node become local and are dropped.
    """
    nodes = grid.core_nodes() if core_only else list(range(grid.n_nodes))
    if not nodes:
        raise ValueError("grid has no eligible nodes for embedding")
    n_ranks = max(max(r.src, r.dst) for r in trace.records) + 1 if trace.records else 0
    records: list[TraceRecord] = []
    count = len(nodes)
    for r in trace.records:
        src = nodes[r.src * count // max(n_ranks, 1) % count]
        dst = nodes[r.dst * count // max(n_ranks, 1) % count]
        if src == dst:
            continue
        records.append(
            TraceRecord(r.cycle, src, dst, r.length, r.msg_class, r.priority, r.ordered)
        )
    return Trace(records, name=f"{trace.name}-embedded")
