"""Synthetic injection processes.

:class:`SyntheticWorkload` drives a traffic pattern at a configured
injection rate in flits/cycle/node (the paper's x-axis unit).  Packet
creation per cycle is sampled as a binomial over the injecting nodes —
statistically the same Bernoulli process per node as in conventional NoC
simulators, but vectorized so large systems stay fast.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.noc.flit import Packet
from .patterns import TrafficPattern


class SyntheticWorkload:
    """Bernoulli packet injection following a traffic pattern.

    Parameters
    ----------
    pattern:
        Destination chooser; may restrict the injecting nodes.
    n_nodes:
        System size.
    rate:
        Offered load in flits/cycle/node, averaged over injecting nodes.
    packet_length:
        Flits per packet.
    until:
        Last cycle (exclusive) at which packets are generated; None means
        forever.
    seed:
        RNG seed (runs are deterministic given the seed).
    """

    def __init__(
        self,
        pattern: TrafficPattern,
        n_nodes: int,
        rate: float,
        packet_length: int,
        *,
        until: Optional[int] = None,
        seed: int = 1,
        ordered: bool = True,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if packet_length < 1:
            raise ValueError("packet_length must be >= 1")
        self.pattern = pattern
        self.n_nodes = n_nodes
        self.rate = rate
        self.packet_length = packet_length
        self.until = until
        self.ordered = ordered
        self.rng = np.random.default_rng(seed)
        sources = pattern.sources()
        self._sources: Optional[Sequence[int]] = (
            list(sources) if sources is not None else None
        )
        n_injectors = len(self._sources) if self._sources is not None else n_nodes
        self._n_injectors = n_injectors
        # Packet-generation probability per injector per cycle.
        self._p = min(1.0, rate / packet_length)

    def step(self, now: int) -> Iterable[Packet]:
        if self._p == 0 or (self.until is not None and now >= self.until):
            return []
        rng = self.rng
        count = int(rng.binomial(self._n_injectors, self._p))
        if count == 0:
            return []
        packets: list[Packet] = []
        picks = rng.integers(0, self._n_injectors, size=count)
        for pick in picks:
            src = self._sources[pick] if self._sources is not None else int(pick)
            dst = self.pattern.dest(src, rng)
            packets.append(
                Packet(
                    src,
                    dst,
                    self.packet_length,
                    now,
                    ordered=self.ordered,
                )
            )
        return packets

    def done(self, now: int) -> bool:
        return self.until is not None and now >= self.until
