"""Synthetic PARSEC-like trace generation (Netrace substitute).

The paper replays Netrace traces: packets collected from a 64-core
multiprocessor running PARSEC under Linux, with exactly two packet sizes —
8-byte control/request packets (1 flit) and 72-byte cache-line packets
(9 flits) [15, 33].  The original trace files are not redistributable, so
this module generates traces with the same structure:

* request/reply cache traffic between cores and address-interleaved
  directory/L2 homes (read request 1 flit -> data reply 9 flits; write
  back 9 flits -> ack 1 flit),
* per-application injection rate, spatial locality and burstiness
  profiles (two-state Markov on/off process),
* deterministic generation from a seed.

What the figures depend on — packet-size mix, locality, burstiness and
relative load between applications — is reproduced; absolute latencies
will differ from Netrace but network *rankings* (Fig 12) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.grid import ChipletGrid
from .trace import Trace, TraceRecord

#: Flit counts of the two Netrace packet sizes (8 B and 72 B at 8 B/flit).
CONTROL_FLITS = 1
DATA_FLITS = 9


@dataclass(frozen=True)
class AppProfile:
    """Traffic profile of one PARSEC application.

    ``request_rate`` is the average read/write transaction initiation rate
    per core per cycle while the core is in a burst; ``duty`` is the
    fraction of time spent bursting; ``locality`` the probability that the
    addressed home node lies within ``radius`` hops of the core;
    ``read_fraction`` the share of transactions that are reads.
    """

    name: str
    request_rate: float
    duty: float
    locality: float
    read_fraction: float
    radius: int = 2
    burst_length: float = 200.0  # mean cycles per ON period
    service_delay: int = 24  # cycles between request and reply injection


#: The nine PARSEC applications evaluated in Fig 12.  Rates follow the
#: relative intensities reported for Netrace (canneal/x264 heavy,
#: blackscholes/swaptions light).
PARSEC_PROFILES = {
    "blackscholes": AppProfile("blackscholes", 0.004, 0.5, 0.20, 0.80),
    "bodytrack": AppProfile("bodytrack", 0.012, 0.6, 0.15, 0.75),
    "canneal": AppProfile("canneal", 0.030, 0.7, 0.05, 0.65),
    "dedup": AppProfile("dedup", 0.016, 0.6, 0.10, 0.60),
    "ferret": AppProfile("ferret", 0.020, 0.6, 0.10, 0.70),
    "fluidanimate": AppProfile("fluidanimate", 0.014, 0.5, 0.25, 0.70),
    "swaptions": AppProfile("swaptions", 0.006, 0.5, 0.15, 0.85),
    "vips": AppProfile("vips", 0.014, 0.6, 0.12, 0.70),
    "x264": AppProfile("x264", 0.022, 0.8, 0.12, 0.65),
}


def generate_parsec_trace(
    app: str,
    grid: ChipletGrid,
    duration: int,
    *,
    seed: int = 7,
) -> Trace:
    """Generate a Netrace-like trace for one application on a system.

    Cores occupy every node of the grid (the paper evaluates 64-node
    systems for the 64-core traces).  Homes are address-interleaved across
    all nodes; coherence traffic is order-sensitive, so all packets are
    marked ``ordered`` with ``msg_class="coherence"`` for requests and
    ``"data"`` for replies.
    """
    try:
        profile = PARSEC_PROFILES[app]
    except KeyError:
        raise ValueError(
            f"unknown PARSEC app {app!r}; expected one of {sorted(PARSEC_PROFILES)}"
        ) from None
    if duration < 1:
        raise ValueError("duration must be >= 1")
    rng = np.random.default_rng(seed)
    n = grid.n_nodes
    records: list[TraceRecord] = []
    # Two-state Markov burst process per core.
    on = rng.random(n) < profile.duty
    p_exit_on = 1.0 / profile.burst_length
    off_length = profile.burst_length * (1.0 - profile.duty) / max(profile.duty, 1e-9)
    p_exit_off = 1.0 / max(off_length, 1.0)
    coords = [grid.coords(node) for node in range(n)]
    for cycle in range(duration):
        flips = rng.random(n)
        on = np.where(on, flips >= p_exit_on, flips < p_exit_off)
        active = np.flatnonzero(on)
        if active.size == 0:
            continue
        fire = active[rng.random(active.size) < profile.request_rate]
        for src in fire:
            src = int(src)
            home = _pick_home(src, coords, grid, profile, rng)
            if home == src:
                continue  # local access, no network traffic
            if rng.random() < profile.read_fraction:
                records.append(
                    TraceRecord(cycle, src, home, CONTROL_FLITS, "coherence")
                )
                records.append(
                    TraceRecord(
                        cycle + profile.service_delay, home, src, DATA_FLITS, "data"
                    )
                )
            else:
                records.append(TraceRecord(cycle, src, home, DATA_FLITS, "data"))
                records.append(
                    TraceRecord(
                        cycle + profile.service_delay,
                        home,
                        src,
                        CONTROL_FLITS,
                        "coherence",
                    )
                )
    return Trace(records, name=f"parsec-{app}")


def _pick_home(
    src: int,
    coords: list[tuple[int, int]],
    grid: ChipletGrid,
    profile: AppProfile,
    rng: np.random.Generator,
) -> int:
    if rng.random() < profile.locality:
        sx, sy = coords[src]
        dx = int(rng.integers(-profile.radius, profile.radius + 1))
        dy = int(rng.integers(-profile.radius, profile.radius + 1))
        gx = min(max(sx + dx, 0), grid.width - 1)
        gy = min(max(sy + dy, 0), grid.height - 1)
        return grid.node_at(gx, gy)
    return int(rng.integers(grid.n_nodes))
