"""Synthetic traffic patterns (Sec 7.2).

The paper evaluates six patterns: ``uniform`` random, ``uniform-hotspot``
(communication restricted to a random 10% subset of node pairs), and the
four bit-permutations of Dally & Towles [21]:

* bit-shuffle    ``d_i = s_(i-1) mod b``   (rotate the index left)
* bit-complement ``d_i = not s_i``
* bit-transpose  ``d_i = s_(i+b/2) mod b`` (rotate by half the width)
* bit-reverse    ``d_i = s_(b-i-1)``

Permutations are defined on ``b = ceil(log2(N))`` bits; for node counts
that are not a power of two (e.g. the 3136-node system of Fig 14) the
result is reduced mod N, and a self-target falls through to the next node
— the standard extension.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np


class TrafficPattern(Protocol):
    """Maps sources to destinations; may restrict which nodes inject."""

    def dest(self, src: int, rng: np.random.Generator) -> int:
        """Destination node for a packet injected at ``src``."""
        ...

    def sources(self) -> Optional[Sequence[int]]:
        """Injecting nodes, or None when every node injects."""
        ...


class _PatternBase:
    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 2:
            raise ValueError("patterns need at least two nodes")
        self.n_nodes = n_nodes

    def sources(self) -> Optional[Sequence[int]]:
        return None


class UniformRandom(_PatternBase):
    """Independent uniformly random destination per packet."""

    def dest(self, src: int, rng: np.random.Generator) -> int:
        dst = int(rng.integers(self.n_nodes - 1))
        return dst if dst < src else dst + 1  # uniform over nodes != src


class UniformHotspot(_PatternBase):
    """Uniform traffic restricted to a random subset of node pairs.

    A fraction of the nodes (10% by default) is selected once, each paired
    with a random partner; only those nodes inject and each sends to its
    fixed partner.
    """

    def __init__(
        self, n_nodes: int, fraction: float = 0.1, *, seed: int = 0
    ) -> None:
        super().__init__(n_nodes)
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        count = max(2, int(round(n_nodes * fraction)))
        chosen = rng.choice(n_nodes, size=count, replace=False)
        self._sources = [int(x) for x in chosen]
        partners = list(self._sources)
        # Derange the chosen set so nobody talks to itself.
        rng.shuffle(partners)
        for i, (a, b) in enumerate(zip(self._sources, partners)):
            if a == b:
                j = (i + 1) % len(partners)
                partners[i], partners[j] = partners[j], partners[i]
        self._partner = dict(zip(self._sources, partners))

    def sources(self) -> Sequence[int]:
        return self._sources

    def dest(self, src: int, rng: np.random.Generator) -> int:
        try:
            return self._partner[src]
        except KeyError:
            raise ValueError(f"node {src} is not a hotspot participant") from None


class _BitPermutation(_PatternBase):
    """Base for deterministic bit-permutation patterns."""

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes)
        self.bits = max(1, (n_nodes - 1).bit_length())

    def _permute(self, src: int) -> int:
        raise NotImplementedError

    def dest(self, src: int, rng: np.random.Generator) -> int:
        dst = self._permute(src) % self.n_nodes
        if dst == src:
            dst = (dst + 1) % self.n_nodes
        return dst


class BitShuffle(_BitPermutation):
    """d_i = s_(i-1 mod b): rotate the source index left by one bit."""

    def _permute(self, src: int) -> int:
        b = self.bits
        mask = (1 << b) - 1
        return ((src << 1) | (src >> (b - 1))) & mask


class BitComplement(_BitPermutation):
    """d_i = not s_i: invert every bit of the source index."""

    def _permute(self, src: int) -> int:
        return ~src & ((1 << self.bits) - 1)


class BitTranspose(_BitPermutation):
    """d_i = s_(i+b/2 mod b): rotate the source index by half its width."""

    def _permute(self, src: int) -> int:
        b = self.bits
        half = b // 2
        mask = (1 << b) - 1
        return ((src << half) | (src >> (b - half))) & mask


class BitReverse(_BitPermutation):
    """d_i = s_(b-i-1): mirror the bits of the source index."""

    def _permute(self, src: int) -> int:
        result = 0
        src_bits = src
        for _ in range(self.bits):
            result = (result << 1) | (src_bits & 1)
            src_bits >>= 1
        return result


class LocalUniform(_PatternBase):
    """Uniform traffic restricted to ``span x span`` node neighbourhoods.

    Used by the traffic-scale flexibility study (Fig 18): the global mesh
    is partitioned into ``span x span`` tiles and every packet's
    destination is drawn uniformly from the source's own tile.  Tiles are
    offset by half a span from the chiplet grid, so local neighbourhoods
    straddle chiplet boundaries and exercise the die-to-die interfaces the
    way real local traffic does.
    """

    def __init__(self, n_nodes: int, *, grid, span: int) -> None:
        super().__init__(n_nodes)
        if grid.n_nodes != n_nodes:
            raise ValueError("grid size does not match n_nodes")
        if span < 1:
            raise ValueError("span must be >= 1")
        self.grid = grid
        self.span = span
        offset = span // 2 if span < grid.width else 0
        self._offset = offset
        self._tiles: dict[tuple[int, int], list[int]] = {}
        for node in range(n_nodes):
            gx, gy = grid.coords(node)
            key = ((gx + offset) // span, (gy + offset) // span)
            self._tiles.setdefault(key, []).append(node)
        # Nodes in single-node border tiles (possible because of the
        # half-span offset) have no local partner and do not inject.
        self._sources = [
            node
            for nodes in self._tiles.values()
            if len(nodes) >= 2
            for node in nodes
        ]
        if not self._sources:
            raise ValueError(
                f"span {span} produces only single-node tiles on a "
                f"{grid.width}x{grid.height} grid"
            )
        self._sources.sort()

    def sources(self) -> Sequence[int]:
        return self._sources

    def dest(self, src: int, rng: np.random.Generator) -> int:
        gx, gy = self.grid.coords(src)
        key = ((gx + self._offset) // self.span, (gy + self._offset) // self.span)
        tile = self._tiles[key]
        if len(tile) < 2:
            raise ValueError(f"node {src} has no local communication partner")
        dst = tile[int(rng.integers(len(tile)))]
        while dst == src:
            dst = tile[int(rng.integers(len(tile)))]
        return dst


#: Pattern registry keyed by the names used in the paper's figures.
PATTERNS = {
    "uniform": UniformRandom,
    "hotspot": UniformHotspot,
    "shuffle": BitShuffle,
    "complement": BitComplement,
    "transpose": BitTranspose,
    "reverse": BitReverse,
    "local": LocalUniform,
}

#: The six patterns evaluated in Fig 11 / Fig 14, in figure order.
FIGURE_PATTERNS = (
    "uniform",
    "hotspot",
    "shuffle",
    "complement",
    "transpose",
    "reverse",
)


def make_pattern(name: str, n_nodes: int, **kwargs) -> TrafficPattern:
    """Build a traffic pattern by figure name (see :data:`PATTERNS`)."""
    try:
        cls = PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; expected one of {sorted(PATTERNS)}"
        ) from None
    return cls(n_nodes, **kwargs)
