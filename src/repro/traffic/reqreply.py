"""Closed-loop request/reply traffic.

The paper replays traces open-loop ("packets are injected according to the
trace time even if queuing occurs", Sec 7.2).  Real coherence traffic is
closed-loop: a core has a bounded number of outstanding requests (MSHRs)
and the home node's reply depends on the request's *delivery*.  This
workload models that dependency chain:

* each node issues read requests (1 flit) to address-interleaved homes
  while it has MSHR capacity;
* when a request is delivered, the home enqueues the 9-flit data reply
  after a fixed service delay;
* when the reply is delivered, the MSHR is freed and the *transaction*
  latency (request creation to reply delivery) is recorded.

Closed-loop traffic self-throttles: a congested network slows issue
instead of building unbounded source queues, so transaction latency — not
delivered fraction — is the fidelity metric.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

import numpy as np

from repro.noc.flit import Packet
from repro.sim.stats import Stats

#: Netrace packet sizes (Sec 7.2).
REQUEST_FLITS = 1
REPLY_FLITS = 9


class RequestReplyWorkload:
    """Closed-loop cache-style traffic bound to a Stats collector.

    Parameters
    ----------
    stats:
        The run's statistics collector; the workload taps its delivery
        notifications to drive the reply chain.
    n_nodes:
        System size; every node is both a core and a home slice.
    issue_rate:
        Request-issue probability per node per cycle (while MSHRs free).
    mshrs:
        Maximum outstanding transactions per node.
    service_delay:
        Cycles between request delivery and reply injection.
    """

    def __init__(
        self,
        stats: Stats,
        n_nodes: int,
        *,
        issue_rate: float = 0.02,
        mshrs: int = 4,
        service_delay: int = 24,
        until: Optional[int] = None,
        seed: int = 17,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        if not 0 <= issue_rate <= 1:
            raise ValueError("issue_rate must be in [0, 1]")
        if mshrs < 1 or service_delay < 0:
            raise ValueError("mshrs >= 1 and service_delay >= 0 required")
        self.n_nodes = n_nodes
        self.issue_rate = issue_rate
        self.mshrs = mshrs
        self.service_delay = service_delay
        self.until = until
        self.rng = np.random.default_rng(seed)
        self._outstanding = [0] * n_nodes
        # replies scheduled for future injection:
        # (inject_cycle, home, requester, issue_cycle)
        self._pending_replies: list[tuple[int, int, int, int]] = []
        # request pid -> (requester, issue_cycle)
        self._transactions: dict[int, tuple[int, int]] = {}
        # reply pid -> (requester, issue_cycle)
        self._reply_owner: dict[int, tuple[int, int]] = {}
        self.transaction_latencies: list[int] = []
        self.requests_issued = 0
        self.replies_delivered = 0
        self._install_tap(stats)

    def _install_tap(self, stats: Stats) -> None:
        original = stats.note_packet_delivered

        def tap(packet: Packet, now: int) -> None:
            self.on_delivery(packet, now)
            original(packet, now)

        stats.note_packet_delivered = tap

    # -- engine protocol ------------------------------------------------------
    def step(self, now: int) -> Iterable[Packet]:
        packets: list[Packet] = []
        while self._pending_replies and self._pending_replies[0][0] <= now:
            _, home, requester, issue_cycle = heapq.heappop(self._pending_replies)
            reply = Packet(
                home, requester, REPLY_FLITS, now, msg_class="data", ordered=True
            )
            self._reply_owner[reply.pid] = (requester, issue_cycle)
            packets.append(reply)
        if self.until is None or now < self.until:
            draws = self.rng.random(self.n_nodes)
            for node in range(self.n_nodes):
                if self._outstanding[node] >= self.mshrs:
                    continue
                if draws[node] >= self.issue_rate:
                    continue
                home = int(self.rng.integers(self.n_nodes - 1))
                if home >= node:
                    home += 1
                request = Packet(
                    node, home, REQUEST_FLITS, now, msg_class="coherence", ordered=True
                )
                self._outstanding[node] += 1
                self._transactions[request.pid] = (node, now)
                self.requests_issued += 1
                packets.append(request)
        return packets

    def on_delivery(self, packet: Packet, now: int) -> None:
        """Advance the transaction state machine on each delivery."""
        transaction = self._transactions.pop(packet.pid, None)
        if transaction is not None:
            requester, issue_cycle = transaction
            heapq.heappush(
                self._pending_replies,
                (now + self.service_delay, packet.dst, requester, issue_cycle),
            )
            return
        owner = self._reply_owner.pop(packet.pid, None)
        if owner is not None:
            requester, issue_cycle = owner
            self._outstanding[requester] -= 1
            self.replies_delivered += 1
            self.transaction_latencies.append(now - issue_cycle)

    def done(self, now: int) -> bool:
        return (
            self.until is not None
            and now >= self.until
            and not self._transactions
            and not self._reply_owner
            and not self._pending_replies
        )

    # -- metrics -----------------------------------------------------------------
    @property
    def outstanding_total(self) -> int:
        return sum(self._outstanding)

    @property
    def avg_transaction_latency(self) -> float:
        if not self.transaction_latencies:
            return float("nan")
        return sum(self.transaction_latencies) / len(self.transaction_latencies)
