"""Trace format and replay.

A trace is a time-ordered list of packet records.  During replay, packets
are injected at their trace timestamps even if source queueing occurs —
the paper's methodology for the PARSEC and HPC traces (Sec 7.2).  Traces
support time scaling, which is how the latency-vs-injection-scale sweeps
of Fig 13/15 are produced: compressing the timeline raises the offered
load without changing the communication structure.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

from repro.noc.flit import Packet


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One packet of a trace."""

    cycle: int
    src: int
    dst: int
    length: int = 1
    msg_class: str = "data"
    priority: int = 0
    ordered: bool = True

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("cycle must be >= 0")
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")


@dataclass
class Trace:
    """An ordered collection of trace records."""

    records: list[TraceRecord] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        self.records = sorted(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> int:
        """Last injection cycle + 1 (0 for an empty trace)."""
        return self.records[-1].cycle + 1 if self.records else 0

    @property
    def total_flits(self) -> int:
        return sum(r.length for r in self.records)

    def offered_load(self, n_nodes: int) -> float:
        """Average offered load in flits/cycle/node over the trace span."""
        if not self.records or n_nodes <= 0:
            return 0.0
        return self.total_flits / (self.duration * n_nodes)

    def scaled(self, time_scale: float) -> "Trace":
        """Compress (>1) or dilate (<1) the timeline by ``time_scale``.

        Scaling time by ``s`` multiplies the offered injection rate by
        ``s`` while preserving communication structure and ordering.
        """
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        records = [
            replace(r, cycle=int(r.cycle / time_scale)) for r in self.records
        ]
        return Trace(records, name=f"{self.name}@x{time_scale:g}")

    # -- persistence (simple CSV; keeps examples self-contained) -----------
    def save(self, path: str | Path) -> None:
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write("cycle,src,dst,length,msg_class,priority,ordered\n")
            for r in self.records:
                fh.write(
                    f"{r.cycle},{r.src},{r.dst},{r.length},"
                    f"{r.msg_class},{r.priority},{int(r.ordered)}\n"
                )

    @classmethod
    def load(cls, path: str | Path, name: str | None = None) -> "Trace":
        path = Path(path)
        records: list[TraceRecord] = []
        with path.open("r", encoding="utf-8") as fh:
            header = fh.readline()
            if not header.startswith("cycle,"):
                raise ValueError(f"{path} is not a trace file")
            for line in fh:
                cycle, src, dst, length, msg_class, priority, ordered = (
                    line.rstrip("\n").split(",")
                )
                records.append(
                    TraceRecord(
                        int(cycle),
                        int(src),
                        int(dst),
                        int(length),
                        msg_class,
                        int(priority),
                        bool(int(ordered)),
                    )
                )
        return cls(records, name=name or path.stem)


class TraceWorkload:
    """Replays a trace: packets appear exactly at their trace timestamps."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._pos = 0

    def step(self, now: int) -> Iterable[Packet]:
        records = self.trace.records
        pos = self._pos
        end = bisect.bisect_right(records, now, lo=pos, key=lambda r: r.cycle)
        if end == pos:
            return []
        packets = [
            Packet(
                r.src,
                r.dst,
                r.length,
                r.cycle,
                ordered=r.ordered,
                priority=r.priority,
                msg_class=r.msg_class,
            )
            for r in records[pos:end]
        ]
        self._pos = end
        return packets

    def done(self, now: int) -> bool:
        return self._pos >= len(self.trace.records)
