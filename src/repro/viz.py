"""Plain-text visualization helpers.

No plotting stack is assumed: these render topologies, link utilization
and latency curves as text, for examples, debugging and notebook-free
analysis.

* :func:`render_topology` — chiplet floorplan with per-family channel
  legend;
* :func:`utilization_heatmap` — per-node forwarded-flit intensity over a
  finished run;
* :func:`link_utilization_table` — the busiest links with their kinds;
* :func:`timeseries_heatmap` — per-epoch telemetry series (one labelled
  row per link/counter) as a text heatmap;
* :func:`ascii_curve` — a quick y-vs-x line chart for latency curves.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.noc.network import Network
from repro.topology.system import SystemSpec

#: Intensity ramp for heatmaps (low -> high).
RAMP = " .:-=+*#%@"


def render_topology(spec: SystemSpec) -> str:
    """A floorplan sketch of the chiplet grid with its channel census."""
    grid = spec.grid
    lines = [f"{spec.name}: {grid.chiplets_x}x{grid.chiplets_y} chiplets of "
             f"{grid.nodes_x}x{grid.nodes_y} nodes ({grid.n_nodes} nodes)"]
    cell = f"[{grid.nodes_x}x{grid.nodes_y}]"
    for cy in range(grid.chiplets_y - 1, -1, -1):
        lines.append(" -- ".join([cell] * grid.chiplets_x))
        if cy:
            lines.append(("  |" + " " * (len(cell) + 1)) * grid.chiplets_x)
    counts = spec.channels_by_kind()
    legend = ", ".join(
        f"{kind.value}: {count}" for kind, count in sorted(counts.items(), key=lambda kv: kv[0].value)
    )
    lines.append(f"directed channels - {legend}")
    if spec.has_cube:
        lines.append(
            f"hypercube: {spec.n_cube_dims} dimensions, hosts on chiplet perimeters"
        )
    if spec.has_wraparound:
        lines.append("torus wraparounds between the global mesh edges (serial)")
    return "\n".join(lines)


def utilization_heatmap(network: Network, spec: SystemSpec, cycles: int) -> str:
    """Per-node forwarded-traffic heatmap after a run.

    Each cell aggregates the flits carried by the node's outgoing links,
    normalized by the run length, and maps intensity onto :data:`RAMP`.
    """
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    grid = spec.grid
    load = [0.0] * grid.n_nodes
    for link in network.links:
        load[link.src_router.node] += link.flits_carried
    peak = max(load) or 1.0
    lines = [f"per-node forwarded flits over {cycles} cycles (peak "
             f"{peak / cycles:.2f} flits/cycle)"]
    for gy in range(grid.height - 1, -1, -1):
        row = []
        for gx in range(grid.width):
            value = load[grid.node_at(gx, gy)] / peak
            row.append(RAMP[min(len(RAMP) - 1, int(value * (len(RAMP) - 1) + 0.5))])
        lines.append("".join(row))
    return "\n".join(lines)


def link_utilization_table(network: Network, cycles: int, top: int = 10) -> str:
    """The ``top`` busiest links as a plain table."""
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    entries = sorted(
        (
            (link.flits_carried, link)
            for link in network.links
            if link.flits_carried
        ),
        key=lambda e: -e[0],
    )[:top]
    lines = [f"{'link':>12s} {'kind':>10s} {'flits':>8s} {'util':>6s}"]
    for flits, link in entries:
        spec = link.spec
        util = flits / (cycles * spec.total_bandwidth)
        lines.append(
            f"{spec.src:5d}->{spec.dst:<5d} {spec.kind.value:>10s} "
            f"{flits:8d} {util:6.1%}"
        )
    return "\n".join(lines)


def timeseries_heatmap(
    labels: Sequence[str],
    rows: Sequence[Sequence[float]],
    *,
    epoch_length: int | None = None,
    title: str = "",
) -> str:
    """Render per-epoch time series as a text heatmap, one row per label.

    Feed it the ``(labels, rows)`` pair produced by
    :meth:`repro.telemetry.EpochMetrics.link_series` (or any equal-length
    series); each cell maps one epoch's value onto :data:`RAMP`,
    normalized by the global peak so rows stay comparable.
    """
    if len(labels) != len(rows):
        raise ValueError("labels and rows must be equal-length")
    if not labels:
        return (title or "time series") + ": no data"
    n_epochs = len(rows[0])
    if any(len(row) != n_epochs for row in rows):
        raise ValueError("every row must cover the same number of epochs")
    peak = max((value for row in rows for value in row), default=0.0) or 1.0
    width = max(len(label) for label in labels)
    unit = f", epoch = {epoch_length} cycles" if epoch_length else ""
    lines = [
        f"{title or 'per-epoch intensity'} "
        f"({n_epochs} epochs{unit}, peak {peak:.3g})"
    ]
    for label, row in zip(labels, rows):
        cells = "".join(
            RAMP[min(len(RAMP) - 1, int(value / peak * (len(RAMP) - 1) + 0.5))]
            for value in row
        )
        lines.append(f"{label:>{width}s} |{cells}|")
    lines.append(f"{'':{width}s}  epochs 0..{n_epochs - 1}")
    return "\n".join(lines)


def render_path(spec: SystemSpec, nodes: Sequence[int]) -> str:
    """Draw a traced packet path over the node grid.

    Source is ``S``, destination ``D``, intermediate visits ``o``; other
    nodes are dots.  Works with the node sequences produced by
    :meth:`repro.noc.tracing.RouteTracer.nodes_of`.
    """
    if not nodes:
        raise ValueError("empty path")
    grid = spec.grid
    cells = [["."] * grid.width for _ in range(grid.height)]
    for node in nodes[1:-1]:
        gx, gy = grid.coords(node)
        cells[gy][gx] = "o"
    sx, sy = grid.coords(nodes[0])
    cells[sy][sx] = "S"
    if len(nodes) > 1:
        dx, dy = grid.coords(nodes[-1])
        cells[dy][dx] = "D"
    lines = [f"path over {grid.width}x{grid.height} nodes ({len(nodes) - 1} hops)"]
    for gy in range(grid.height - 1, -1, -1):
        lines.append("".join(cells[gy]))
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """A quick text line chart (used by examples for latency curves)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    finite = [(x, y) for x, y in zip(xs, ys) if not math.isnan(y)]
    if not finite:
        return f"{label}: no finite points"
    x_min, x_max = min(x for x, _ in finite), max(x for x, _ in finite)
    y_min, y_max = min(y for _, y in finite), max(y for _, y in finite)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    cells = [[" "] * width for _ in range(height)]
    for x, y in finite:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        cells[height - 1 - row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{y_max:10.1f} +" + "".join(cells[0]))
    for row in cells[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.1f} +" + "".join(cells[-1]))
    lines.append(" " * 12 + f"{x_min:<10.3g}{'':{max(0, width - 20)}}{x_max:>10.3g}")
    return "\n".join(lines)
