"""Plain-text visualization helpers.

No plotting stack is assumed: these render topologies, link utilization
and latency curves as text, for examples, debugging and notebook-free
analysis.

* :func:`render_topology` — chiplet floorplan with per-family channel
  legend;
* :func:`utilization_heatmap` — per-node forwarded-flit intensity over a
  finished run;
* :func:`link_utilization_table` — the busiest links with their kinds;
* :func:`timeseries_heatmap` — per-epoch telemetry series (one labelled
  row per link/counter) as a text heatmap;
* :func:`ascii_curve` — a quick y-vs-x line chart for latency curves;
* :func:`svg_line_chart` — a dependency-free inline-SVG line chart used
  by ``repro dashboard``;
* :func:`svg_stacked_bars` — inline-SVG horizontal stacked bars (the
  dashboard's latency-attribution panel);
* :func:`svg_waitfor_graph` — inline-SVG directed graph on a circular
  layout with the deadlock cycle highlighted (``repro postmortem``);
* :func:`svg_node_heatmap` — inline-SVG per-node occupancy grid
  (``repro postmortem``'s router-occupancy panel);
* :func:`svg_sparkline` — a compact inline trend line (the dashboard's
  health panel).
"""

from __future__ import annotations

import html
import math
from typing import Optional, Sequence

from repro.noc.network import Network
from repro.topology.system import SystemSpec

#: Intensity ramp for heatmaps (low -> high).
RAMP = " .:-=+*#%@"


def render_topology(spec: SystemSpec) -> str:
    """A floorplan sketch of the chiplet grid with its channel census."""
    grid = spec.grid
    lines = [f"{spec.name}: {grid.chiplets_x}x{grid.chiplets_y} chiplets of "
             f"{grid.nodes_x}x{grid.nodes_y} nodes ({grid.n_nodes} nodes)"]
    cell = f"[{grid.nodes_x}x{grid.nodes_y}]"
    for cy in range(grid.chiplets_y - 1, -1, -1):
        lines.append(" -- ".join([cell] * grid.chiplets_x))
        if cy:
            lines.append(("  |" + " " * (len(cell) + 1)) * grid.chiplets_x)
    counts = spec.channels_by_kind()
    legend = ", ".join(
        f"{kind.value}: {count}" for kind, count in sorted(counts.items(), key=lambda kv: kv[0].value)
    )
    lines.append(f"directed channels - {legend}")
    if spec.has_cube:
        lines.append(
            f"hypercube: {spec.n_cube_dims} dimensions, hosts on chiplet perimeters"
        )
    if spec.has_wraparound:
        lines.append("torus wraparounds between the global mesh edges (serial)")
    return "\n".join(lines)


def utilization_heatmap(network: Network, spec: SystemSpec, cycles: int) -> str:
    """Per-node forwarded-traffic heatmap after a run.

    Each cell aggregates the flits carried by the node's outgoing links,
    normalized by the run length, and maps intensity onto :data:`RAMP`.
    """
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    grid = spec.grid
    load = [0.0] * grid.n_nodes
    for link in network.links:
        load[link.src_router.node] += link.flits_carried
    peak = max(load) or 1.0
    lines = [f"per-node forwarded flits over {cycles} cycles (peak "
             f"{peak / cycles:.2f} flits/cycle)"]
    for gy in range(grid.height - 1, -1, -1):
        row = []
        for gx in range(grid.width):
            value = load[grid.node_at(gx, gy)] / peak
            row.append(RAMP[min(len(RAMP) - 1, int(value * (len(RAMP) - 1) + 0.5))])
        lines.append("".join(row))
    return "\n".join(lines)


def link_utilization_table(network: Network, cycles: int, top: int = 10) -> str:
    """The ``top`` busiest links as a plain table."""
    if cycles <= 0:
        raise ValueError("cycles must be > 0")
    entries = sorted(
        (
            (link.flits_carried, link)
            for link in network.links
            if link.flits_carried
        ),
        key=lambda e: -e[0],
    )[:top]
    lines = [f"{'link':>12s} {'kind':>10s} {'flits':>8s} {'util':>6s}"]
    for flits, link in entries:
        spec = link.spec
        util = flits / (cycles * spec.total_bandwidth)
        lines.append(
            f"{spec.src:5d}->{spec.dst:<5d} {spec.kind.value:>10s} "
            f"{flits:8d} {util:6.1%}"
        )
    return "\n".join(lines)


def timeseries_heatmap(
    labels: Sequence[str],
    rows: Sequence[Sequence[float]],
    *,
    epoch_length: int | None = None,
    title: str = "",
) -> str:
    """Render per-epoch time series as a text heatmap, one row per label.

    Feed it the ``(labels, rows)`` pair produced by
    :meth:`repro.telemetry.EpochMetrics.link_series` (or any equal-length
    series); each cell maps one epoch's value onto :data:`RAMP`,
    normalized by the global peak so rows stay comparable.
    """
    if len(labels) != len(rows):
        raise ValueError("labels and rows must be equal-length")
    if not labels:
        return (title or "time series") + ": no data"
    n_epochs = len(rows[0])
    if any(len(row) != n_epochs for row in rows):
        raise ValueError("every row must cover the same number of epochs")
    peak = max((value for row in rows for value in row), default=0.0) or 1.0
    width = max(len(label) for label in labels)
    unit = f", epoch = {epoch_length} cycles" if epoch_length else ""
    lines = [
        f"{title or 'per-epoch intensity'} "
        f"({n_epochs} epochs{unit}, peak {peak:.3g})"
    ]
    for label, row in zip(labels, rows):
        cells = "".join(
            RAMP[min(len(RAMP) - 1, int(value / peak * (len(RAMP) - 1) + 0.5))]
            for value in row
        )
        lines.append(f"{label:>{width}s} |{cells}|")
    lines.append(f"{'':{width}s}  epochs 0..{n_epochs - 1}")
    return "\n".join(lines)


def render_path(spec: SystemSpec, nodes: Sequence[int]) -> str:
    """Draw a traced packet path over the node grid.

    Source is ``S``, destination ``D``, intermediate visits ``o``; other
    nodes are dots.  Works with the node sequences produced by
    :meth:`repro.noc.tracing.RouteTracer.nodes_of`.
    """
    if not nodes:
        raise ValueError("empty path")
    grid = spec.grid
    cells = [["."] * grid.width for _ in range(grid.height)]
    for node in nodes[1:-1]:
        gx, gy = grid.coords(node)
        cells[gy][gx] = "o"
    sx, sy = grid.coords(nodes[0])
    cells[sy][sx] = "S"
    if len(nodes) > 1:
        dx, dy = grid.coords(nodes[-1])
        cells[dy][dx] = "D"
    lines = [f"path over {grid.width}x{grid.height} nodes ({len(nodes) - 1} hops)"]
    for gy in range(grid.height - 1, -1, -1):
        lines.append("".join(cells[gy]))
    return "\n".join(lines)


#: Categorical series colors (fixed assignment order, CVD-validated set);
#: each is emitted as ``var(--series-N, #hex)`` so a hosting page can
#: restyle (e.g. dark mode) through CSS custom properties.
SVG_SERIES_COLORS: tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)


def _svg_ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    span = hi - lo
    if span <= 0:
        return [lo]
    return [lo + span * i / n for i in range(n + 1)]


def _fmt_tick(value: float) -> str:
    return f"{value:,.6g}" if abs(value) < 1e6 else f"{value:,.0f}"


def svg_line_chart(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    width: int = 640,
    height: int = 300,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_zero: bool = False,
) -> str:
    """Render ``[(label, xs, ys), ...]`` as a self-contained SVG string.

    Pure stdlib — the dashboard's chart primitive.  NaN points are
    skipped (a saturated operating point breaks the polyline there);
    colors come from :data:`SVG_SERIES_COLORS` in fixed assignment
    order, referenced as CSS custom properties with hex fallbacks so
    embedding pages can restyle them.  ``y_zero`` pins the y-axis to 0
    (for magnitude series like cycles/second).
    """
    return svg_annotated_line(
        series,
        width=width,
        height=height,
        title=title,
        x_label=x_label,
        y_label=y_label,
        y_zero=y_zero,
    )


def svg_annotated_line(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    annotations: Sequence[tuple[float, str]] = (),
    width: int = 640,
    height: int = 300,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_zero: bool = False,
) -> str:
    """:func:`svg_line_chart` plus vertical event markers.

    ``annotations`` is ``[(x, label), ...]`` — each renders as a dashed
    vertical line in the alarm color with a hoverable tooltip, the
    regression sentinel's changepoint marks on trajectory charts.
    Markers outside the data's x-range are dropped.  With no
    annotations the output is exactly :func:`svg_line_chart`'s.
    """
    if not series:
        raise ValueError("series must be non-empty")
    points_by_series: list[tuple[str, list[tuple[float, float]]]] = []
    for label, xs, ys in series:
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r}: xs and ys must be equal-length")
        finite = [
            (float(x), float(y))
            for x, y in zip(xs, ys)
            if not (math.isnan(float(x)) or math.isnan(float(y)))
        ]
        points_by_series.append((str(label), finite))
    every = [pt for _, pts in points_by_series for pt in pts]
    if not every:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="60" role="img"><text x="8" y="32" '
            f'fill="var(--text-secondary, #52514e)" font-size="13">'
            f"{html.escape(title or 'chart')}: no finite points</text></svg>"
        )
    x_min = min(x for x, _ in every)
    x_max = max(x for x, _ in every)
    y_min = 0.0 if y_zero else min(y for _, y in every)
    y_max = max(y for _, y in every)
    if y_max == y_min:
        y_max = y_min + (abs(y_min) or 1.0)
    if x_max == x_min:
        x_max = x_min + (abs(x_min) or 1.0)
    margin_l, margin_r, margin_t, margin_b = 64, 16, 28 if title else 12, 44
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    def sx(x: float) -> float:
        return margin_l + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return margin_t + plot_h - (y - y_min) / (y_max - y_min) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'font-family="system-ui, sans-serif" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{margin_l}" y="16" font-size="13" font-weight="600" '
            f'fill="var(--text-primary, #0b0b0b)">{html.escape(title)}</text>'
        )
    # Recessive grid + y tick labels.
    for tick in _svg_ticks(y_min, y_max):
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - margin_r}" '
            f'y2="{y:.1f}" stroke="var(--grid, #e6e4df)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
            f'fill="var(--text-secondary, #52514e)">{_fmt_tick(tick)}</text>'
        )
    for tick in _svg_ticks(x_min, x_max):
        x = sx(tick)
        parts.append(
            f'<text x="{x:.1f}" y="{height - margin_b + 16}" text-anchor="middle" '
            f'fill="var(--text-secondary, #52514e)">{_fmt_tick(tick)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.1f}" y="{height - 8}" '
            f'text-anchor="middle" fill="var(--text-secondary, #52514e)">'
            f"{html.escape(x_label)}</text>"
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2:.1f}" text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2:.1f})" '
            f'fill="var(--text-secondary, #52514e)">{html.escape(y_label)}</text>'
        )
    # Changepoint / event markers: dashed verticals in the alarm color,
    # under the data so the series markers stay hoverable.
    alarm = f"var(--series-8, {SVG_SERIES_COLORS[7]})"
    for ax, alabel in annotations:
        ax = float(ax)
        if math.isnan(ax) or not (x_min <= ax <= x_max):
            continue
        x = sx(ax)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
            f'y2="{margin_t + plot_h}" stroke="{alarm}" stroke-width="1.5" '
            f'stroke-dasharray="5 3"><title>{html.escape(str(alabel))}</title></line>'
        )
        parts.append(
            f'<text x="{x + 4:.1f}" y="{margin_t + 10}" font-size="10" '
            f'fill="{alarm}">{html.escape(str(alabel))}</text>'
        )
    # Series: 2px polylines + hoverable markers with native tooltips.
    for index, (label, pts) in enumerate(points_by_series):
        color = (
            f"var(--series-{index + 1}, "
            f"{SVG_SERIES_COLORS[index % len(SVG_SERIES_COLORS)]})"
        )
        if len(pts) > 1:
            path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round"/>'
            )
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1, #fcfcfb)" '
                f'stroke-width="2"><title>'
                f"{html.escape(label)}: ({_fmt_tick(x)}, {_fmt_tick(y)})"
                f"</title></circle>"
            )
    # Legend (color swatch + text in ink, never in series color).
    legend_y = margin_t + 4
    legend_x = margin_l + 8
    for index, (label, _pts) in enumerate(points_by_series):
        color = (
            f"var(--series-{index + 1}, "
            f"{SVG_SERIES_COLORS[index % len(SVG_SERIES_COLORS)]})"
        )
        y = legend_y + index * 16
        parts.append(
            f'<rect x="{legend_x}" y="{y - 8}" width="10" height="10" rx="2" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 16}" y="{y + 1}" '
            f'fill="var(--text-primary, #0b0b0b)">{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def svg_stacked_bars(
    bars: Sequence[tuple[str, Sequence[float]]],
    segments: Sequence[str],
    *,
    width: int = 640,
    title: str = "",
    x_label: str = "",
) -> str:
    """Render ``[(bar label, values per segment), ...]`` as horizontal
    stacked bars (the dashboard's latency-breakdown primitive).

    Pure stdlib, same conventions as :func:`svg_line_chart`: segment
    colors come from :data:`SVG_SERIES_COLORS` in fixed assignment order
    (color follows the segment identity, never its rank), referenced as
    CSS custom properties with hex fallbacks; adjacent fills are
    separated by a 2px surface gap; every segment carries a native
    ``<title>`` tooltip; legend text stays in ink.  Zero-valued segments
    are skipped.
    """
    if not bars:
        raise ValueError("bars must be non-empty")
    for label, values in bars:
        if len(values) != len(segments):
            raise ValueError(
                f"bar {label!r}: expected {len(segments)} segment values, "
                f"got {len(values)}"
            )
    totals = [sum(values) for _, values in bars]
    x_max = max(totals) or 1.0
    margin_l, margin_r, margin_t = 150, 70, 28 if title else 12
    bar_h, bar_gap = 22, 10
    legend_cols = 3
    legend_rows = (len(segments) + legend_cols - 1) // legend_cols
    axis_h = 34 if x_label else 22
    legend_top = margin_t + len(bars) * (bar_h + bar_gap) + axis_h
    height = legend_top + legend_rows * 18 + 6
    plot_w = width - margin_l - margin_r

    def color(index: int) -> str:
        return (
            f"var(--series-{index + 1}, "
            f"{SVG_SERIES_COLORS[index % len(SVG_SERIES_COLORS)]})"
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'font-family="system-ui, sans-serif" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{margin_l}" y="16" font-size="13" font-weight="600" '
            f'fill="var(--text-primary, #0b0b0b)">{html.escape(title)}</text>'
        )
    # Recessive vertical grid + x tick labels.
    axis_y = margin_t + len(bars) * (bar_h + bar_gap)
    for tick in _svg_ticks(0.0, x_max):
        x = margin_l + tick / x_max * plot_w
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
            f'y2="{axis_y - bar_gap + 4}" stroke="var(--grid, #e6e4df)" '
            f'stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 8}" text-anchor="middle" '
            f'fill="var(--text-secondary, #52514e)">{_fmt_tick(tick)}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.1f}" y="{axis_y + 24}" '
            f'text-anchor="middle" fill="var(--text-secondary, #52514e)">'
            f"{html.escape(x_label)}</text>"
        )
    for row, (label, values) in enumerate(bars):
        y = margin_t + row * (bar_h + bar_gap)
        parts.append(
            f'<text x="{margin_l - 8}" y="{y + bar_h / 2 + 4:.1f}" '
            f'text-anchor="end" fill="var(--text-primary, #0b0b0b)">'
            f"{html.escape(label)}</text>"
        )
        total = totals[row]
        cursor = float(margin_l)
        for index, value in enumerate(values):
            if value <= 0:
                continue
            seg_w = value / x_max * plot_w
            # 2px surface gap between adjacent fills (kept visible by
            # clamping very thin segments to 1px).
            draw_w = max(1.0, seg_w - 2.0)
            pct = value / total if total else 0.0
            parts.append(
                f'<rect x="{cursor:.1f}" y="{y}" width="{draw_w:.1f}" '
                f'height="{bar_h}" fill="{color(index)}"><title>'
                f"{html.escape(label)} · {html.escape(str(segments[index]))}: "
                f"{_fmt_tick(value)} ({pct:.1%})</title></rect>"
            )
            cursor += seg_w
        parts.append(
            f'<text x="{cursor + 6:.1f}" y="{y + bar_h / 2 + 4:.1f}" '
            f'fill="var(--text-secondary, #52514e)">{_fmt_tick(total)}</text>'
        )
    # Legend grid: swatch + ink text, fixed segment order.
    col_w = (width - margin_l // 2) // legend_cols
    for index, segment in enumerate(segments):
        x = 16 + (index % legend_cols) * col_w
        y = legend_top + (index // legend_cols) * 18
        parts.append(
            f'<rect x="{x}" y="{y}" width="10" height="10" rx="2" '
            f'fill="{color(index)}"/>'
        )
        parts.append(
            f'<text x="{x + 16}" y="{y + 9}" '
            f'fill="var(--text-primary, #0b0b0b)">'
            f"{html.escape(str(segment))}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def svg_waitfor_graph(
    nodes: Sequence,
    edges: Sequence[tuple],
    *,
    cycle: Sequence = (),
    labels: dict | None = None,
    width: int = 640,
    height: int = 480,
    title: str = "",
) -> str:
    """Render a directed wait-for graph on a circular layout.

    ``nodes`` are hashable vertex identities, ``edges`` are ``(a, b)``
    pairs, ``cycle`` the ordered vertices of the blocking loop (its edges
    — including the wrap-around — and vertices draw in the alarm color).
    Pure stdlib, same conventions as :func:`svg_line_chart`; ``labels``
    maps vertices to display strings (default: ``str(vertex)``).
    """
    if not nodes:
        raise ValueError("nodes must be non-empty")
    labels = labels or {}
    cycle = list(cycle)
    cycle_edges = {
        (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
    }
    cycle_nodes = set(cycle)
    margin_t = 28 if title else 12
    cx, cy = width / 2, margin_t + (height - margin_t) / 2
    radius = min(width, height - margin_t) / 2 - 90
    pos: dict = {}
    for index, node in enumerate(nodes):
        angle = 2 * math.pi * index / len(nodes) - math.pi / 2
        pos[node] = (cx + radius * math.cos(angle), cy + radius * math.sin(angle))
    edge_color = "var(--text-secondary, #52514e)"
    alarm = f"var(--series-8, {SVG_SERIES_COLORS[7]})"
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'font-family="system-ui, sans-serif" font-size="11">',
        # Arrowheads: context-stroke is not universally supported, so one
        # marker per color.
        '<defs>'
        '<marker id="wf-arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto-start-reverse">'
        f'<path d="M 0 0 L 10 5 L 0 10 z" fill="{edge_color}"/></marker>'
        '<marker id="wf-arrow-cycle" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto-start-reverse">'
        f'<path d="M 0 0 L 10 5 L 0 10 z" fill="{alarm}"/></marker>'
        "</defs>",
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="16" text-anchor="middle" '
            f'font-size="13" font-weight="600" '
            f'fill="var(--text-primary, #0b0b0b)">{html.escape(title)}</text>'
        )
    node_r = 7.0
    for a, b in edges:
        if a not in pos or b not in pos or a == b:
            continue
        ax, ay = pos[a]
        bx, by = pos[b]
        length = math.hypot(bx - ax, by - ay) or 1.0
        # Trim both ends so the line meets the node circle, not its center.
        ux, uy = (bx - ax) / length, (by - ay) / length
        x1, y1 = ax + ux * (node_r + 2), ay + uy * (node_r + 2)
        x2, y2 = bx - ux * (node_r + 6), by - uy * (node_r + 6)
        hot = (a, b) in cycle_edges
        dim = "" if hot else ' opacity="0.55"'
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{alarm if hot else edge_color}" '
            f'stroke-width="{2.5 if hot else 1.2}" '
            f'marker-end="url(#wf-arrow{"-cycle" if hot else ""})"{dim}/>'
        )
    for node in nodes:
        x, y = pos[node]
        hot = node in cycle_nodes
        label = str(labels.get(node, node))
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_r}" '
            f'fill="{alarm if hot else f"var(--series-1, {SVG_SERIES_COLORS[0]})"}" '
            f'stroke="var(--surface-1, #fcfcfb)" stroke-width="2">'
            f"<title>{html.escape(label)}</title></circle>"
        )
        # Label outward from the center so text clears the ring.
        dx, dy = x - cx, y - cy
        dist = math.hypot(dx, dy) or 1.0
        lx, ly = x + dx / dist * 14, y + dy / dist * 14
        anchor = "start" if dx > 1 else ("end" if dx < -1 else "middle")
        parts.append(
            f'<text x="{lx:.1f}" y="{ly + 4:.1f}" text-anchor="{anchor}" '
            f'fill="var(--text-primary, #0b0b0b)">{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def svg_node_heatmap(
    occupancy: dict[int, float],
    n_nodes: int,
    *,
    columns: int | None = None,
    title: str = "",
    cell: int = 34,
) -> str:
    """Render per-node values as a square-cell heatmap grid.

    ``occupancy`` maps node id to value (missing nodes read as zero);
    the grid is ``columns`` wide (default: near-square).  Intensity maps
    onto the opacity of one series color, so the chart restyles with the
    page palette; every cell carries a native tooltip.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    columns = columns or max(1, math.ceil(math.sqrt(n_nodes)))
    rows = math.ceil(n_nodes / columns)
    margin_t = 28 if title else 6
    gap = 3
    width = columns * (cell + gap) + 12
    height = margin_t + rows * (cell + gap) + 6
    peak = max((float(v) for v in occupancy.values()), default=0.0) or 1.0
    fill = f"var(--series-2, {SVG_SERIES_COLORS[1]})"
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'font-family="system-ui, sans-serif" font-size="10">'
    ]
    if title:
        parts.append(
            f'<text x="6" y="16" font-size="13" font-weight="600" '
            f'fill="var(--text-primary, #0b0b0b)">{html.escape(title)}</text>'
        )
    for node in range(n_nodes):
        value = float(occupancy.get(node, 0.0))
        x = 6 + (node % columns) * (cell + gap)
        y = margin_t + (node // columns) * (cell + gap)
        if value > 0:
            opacity = 0.15 + 0.85 * value / peak
            body = f'fill="{fill}" fill-opacity="{opacity:.2f}"'
        else:
            body = 'fill="var(--surface-2, #f4f3f1)"'
        parts.append(
            f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" rx="4" '
            f"{body}><title>node {node}: {value:g}</title></rect>"
        )
        parts.append(
            f'<text x="{x + cell / 2:.1f}" y="{y + cell / 2 + 3.5:.1f}" '
            f'text-anchor="middle" fill="var(--text-primary, #0b0b0b)">'
            f"{node}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def svg_sparkline(
    values: Sequence[float],
    *,
    width: int = 180,
    height: int = 36,
    title: str = "",
) -> str:
    """Render a compact inline trend line (no axes, last point dotted).

    The dashboard's health panel uses it for oldest-packet-age series;
    the stroke is one series color via a CSS custom property so the
    sparkline restyles with the page palette.  A native tooltip carries
    ``title`` plus the min/max range.
    """
    finite = [float(v) for v in values if not math.isnan(float(v))]
    stroke = f"var(--series-1, {SVG_SERIES_COLORS[0]})"
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
    )
    if len(finite) < 2:
        label = f"{finite[0]:g}" if finite else "no data"
        return (
            f'{head}<text x="4" y="{height / 2 + 4:.0f}" font-size="11" '
            f'font-family="system-ui, sans-serif" '
            f'fill="var(--text-secondary, #52514e)">{html.escape(label)}'
            f"</text></svg>"
        )
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    pad = 4.0
    step = (width - 2 * pad) / (len(finite) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(finite)
    )
    last_x = pad + (len(finite) - 1) * step
    last_y = height - pad - (finite[-1] - lo) / span * (height - 2 * pad)
    tooltip = html.escape(
        f"{title + ': ' if title else ''}min {lo:g}, max {hi:g}, "
        f"last {finite[-1]:g}"
    )
    return (
        f"{head}<title>{tooltip}</title>"
        f'<polyline points="{points}" fill="none" stroke="{stroke}" '
        f'stroke-width="1.5" stroke-linejoin="round"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
        f'fill="{stroke}"/></svg>'
    )


def svg_progress_bar(
    fraction: Optional[float],
    *,
    width: int = 160,
    height: int = 14,
    title: str = "",
) -> str:
    """Render a compact determinate progress bar.

    The ``repro watch`` fleet view uses it for in-flight run completion;
    track and fill take their colors from the page palette's CSS custom
    properties, matching the other inline charts.  ``fraction`` outside
    [0, 1] is clamped; ``None``/NaN renders the empty track with an
    "n/a" tooltip (horizon unknown — e.g. trace replays).
    """
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
    )
    track = (
        f'<rect x="0" y="0" width="{width}" height="{height}" rx="4" '
        f'fill="var(--surface-2, #f4f3f1)"/>'
    )
    known = fraction is not None and not math.isnan(float(fraction))
    if not known:
        tooltip = html.escape(f"{title + ': ' if title else ''}n/a")
        return f"{head}<title>{tooltip}</title>{track}</svg>"
    clamped = min(1.0, max(0.0, float(fraction)))  # type: ignore[arg-type]
    tooltip = html.escape(f"{title + ': ' if title else ''}{clamped:.0%}")
    fill = ""
    if clamped > 0:
        fill = (
            f'<rect x="0" y="0" width="{clamped * width:.1f}" '
            f'height="{height}" rx="4" '
            f'fill="var(--series-1, {SVG_SERIES_COLORS[0]})"/>'
        )
    return f"{head}<title>{tooltip}</title>{track}{fill}</svg>"


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """A quick text line chart (used by examples for latency curves)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    finite = [(x, y) for x, y in zip(xs, ys) if not math.isnan(y)]
    if not finite:
        return f"{label}: no finite points"
    x_min, x_max = min(x for x, _ in finite), max(x for x, _ in finite)
    y_min, y_max = min(y for _, y in finite), max(y for _, y in finite)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    cells = [[" "] * width for _ in range(height)]
    for x, y in finite:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        cells[height - 1 - row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{y_max:10.1f} +" + "".join(cells[0]))
    for row in cells[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.1f} +" + "".join(cells[-1]))
    lines.append(" " * 12 + f"{x_min:<10.3g}{'':{max(0, width - 20)}}{x_max:>10.3g}")
    return "\n".join(lines)
