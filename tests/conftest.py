"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.build import build_network
from repro.sim.config import SimConfig
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system


@pytest.fixture
def config() -> SimConfig:
    """A fast Table-2 configuration for unit tests."""
    return SimConfig(sim_cycles=2_000, warmup_cycles=200)


@pytest.fixture
def small_grid() -> ChipletGrid:
    """2x2 chiplets of 3x3 nodes (36 nodes, valid for every family)."""
    return ChipletGrid(2, 2, 3, 3)


@pytest.fixture
def mesh_grid() -> ChipletGrid:
    """2x2 chiplets of 4x4 nodes (64 nodes)."""
    return ChipletGrid(2, 2, 4, 4)


def make_network(family: str, grid: ChipletGrid, config: SimConfig, **kwargs):
    """Build (network, stats) for a family; helper used across test files."""
    spec = build_system(family, grid, config)
    stats = Stats(measure_from=config.warmup_cycles)
    network = build_network(spec, stats, **kwargs)
    return spec, network, stats


@pytest.fixture(params=["parallel_mesh", "serial_torus", "hetero_phy_torus",
                        "serial_hypercube", "hetero_channel"])
def family(request) -> str:
    """Parametrized over all five system families."""
    return request.param


@pytest.fixture
def sanitize():
    """Opt-in runtime sanitizer: attach an InvariantChecker to a network.

    Usage::

        checker = sanitize(network)           # before injecting traffic
        engine.run(...)                       # violations raise immediately

    On teardown the fixture asserts that every attached checker actually
    swept the network at least once, so a mis-wired test cannot pass
    vacuously.
    """
    from repro.analysis import InvariantChecker

    checkers = []

    def _attach(network, **kwargs):
        checker = InvariantChecker(network, **kwargs)
        checkers.append(checker)
        return checker

    yield _attach
    for checker in checkers:
        assert checker.checks_run > 0, "sanitized network was never stepped"
