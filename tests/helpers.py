"""Hand-built micro-networks for substrate-level tests.

These bypass the topology builders so link/router behaviour can be
observed in isolation: a unidirectional chain of routers with one channel
between neighbours and a trivial "always forward" routing function.
"""

from __future__ import annotations

from repro.core.phy import HeteroPhyLink
from repro.core.scheduling import make_dispatch_policy
from repro.noc.channel import ChannelKind, ChannelSpec, PhyParams
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.router import Router
from repro.sim.config import SimConfig
from repro.sim.stats import Stats


def forward_routing(router: Router, packet: Packet):
    """Eject locally or forward on the single outgoing channel."""
    if packet.dst == router.node:
        return [(Router.EJECT_PORT, 0, True)]
    return [(1, 0, True)]


def chain_spec(
    src: int,
    dst: int,
    kind: ChannelKind = ChannelKind.ONCHIP,
    *,
    bandwidth: int = 2,
    delay: int = 1,
    n_vcs: int = 2,
    buffer_depth: int = 32,
    serial_bandwidth: int = 4,
    serial_delay: int = 20,
) -> ChannelSpec:
    serial = None
    if kind is ChannelKind.HETERO_PHY:
        serial = PhyParams(serial_bandwidth, serial_delay, 2.4)
    return ChannelSpec(
        src,
        dst,
        kind,
        PhyParams(bandwidth, delay, 1.0),
        serial_phy=serial,
        n_vcs=n_vcs,
        buffer_depth=buffer_depth,
    )


def build_chain(
    n_nodes: int = 2,
    kind: ChannelKind = ChannelKind.ONCHIP,
    *,
    policy: str = "performance",
    config: SimConfig | None = None,
    **spec_kwargs,
) -> tuple[Network, Stats]:
    """A unidirectional chain 0 -> 1 -> ... with identical channels."""
    config = config or SimConfig()
    stats = Stats()
    network = Network(n_nodes, stats)

    def factory(spec: ChannelSpec):
        if spec.kind is ChannelKind.HETERO_PHY:
            return HeteroPhyLink(
                spec,
                make_dispatch_policy(policy, config),
                tx_fifo_depth=config.tx_fifo_depth,
            )
        from repro.noc.link import PipelinedLink

        return PipelinedLink(spec)

    for node in range(n_nodes - 1):
        network.add_channel(chain_spec(node, node + 1, kind, **spec_kwargs), factory)
    network.set_routing(forward_routing)
    network.finalize()
    return network, stats


def run_cycles(network: Network, cycles: int, start: int = 0) -> int:
    """Step the network for a number of cycles; returns the next cycle."""
    for now in range(start, start + cycles):
        network.stats.now = now
        network.step(now)
    return start + cycles
