"""Tests for the stage-explicit adapter pipeline (Fig 7b)."""

import pytest

from repro.core.adapter import TxAdapterPipeline
from repro.core.scheduling import (
    ApplicationAwarePolicy,
    BalancedPolicy,
    EnergyEfficientPolicy,
    PerformanceFirstPolicy,
)
from repro.noc.flit import Packet


def flits(n, **kwargs):
    packet = Packet(0, 1, n, 0, **kwargs)
    return packet.make_flits()


def drain(pipe, start=0, max_cycles=100):
    """Tick until empty; return list of (cycle, IssueRecord)."""
    out = []
    for now in range(start, start + max_cycles):
        for record in pipe.tick(now):
            out.append((now, record))
        if pipe.drained():
            break
    return out


def test_three_cycle_traversal():
    pipe = TxAdapterPipeline(PerformanceFirstPolicy())
    flit = flits(1)[0]
    pipe.fetch(flit, vc=0)
    assert pipe.tick(0) == []  # fetch -> decode
    assert pipe.tick(1) == []  # decode -> dispatch queue
    issued = pipe.tick(2)  # issue
    assert len(issued) == 1
    assert issued[0].cycle == 2
    assert pipe.drained()


def test_fetch_width_enforced():
    pipe = TxAdapterPipeline(PerformanceFirstPolicy(), fetch_width=2)
    for flit in flits(2):
        pipe.fetch(flit, vc=0)
    with pytest.raises(OverflowError):
        pipe.fetch(flits(1)[0], vc=1)


def test_fetch_budget_tracks_occupancy():
    pipe = TxAdapterPipeline(PerformanceFirstPolicy(), fetch_width=4, queue_depth=6)
    assert pipe.fetch_budget() == 4
    for flit in flits(4):
        pipe.fetch(flit, vc=0)
    assert pipe.fetch_budget() == 0  # fetch latch full this cycle
    pipe.tick(0)
    assert pipe.fetch_budget() == 2  # queue_depth 6 - 4 in flight


def test_performance_policy_uses_both_phys():
    pipe = TxAdapterPipeline(
        PerformanceFirstPolicy(), parallel_width=2, serial_width=4
    )
    pending = flits(12)
    now = 0
    while pending:
        while pending and pipe.fetch_budget() > 0:
            pipe.fetch(pending.pop(0), vc=0)
        pipe.tick(now)
        now += 1
    records = drain(pipe, start=now)
    phys = {record.phy for _now, record in records}
    assert phys == {"P", "S"}
    assert pipe.stats.issued_parallel > 0
    assert pipe.stats.issued_serial > 0


def test_energy_efficient_only_parallel():
    pipe = TxAdapterPipeline(EnergyEfficientPolicy(), parallel_width=2, fetch_width=6)
    for flit in flits(6):
        pipe.fetch(flit, vc=0)
    records = drain(pipe, start=1)
    assert all(record.phy == "P" for _now, record in records)
    assert pipe.stats.issued_serial == 0


def test_balanced_threshold_behaviour():
    pipe = TxAdapterPipeline(
        BalancedPolicy(threshold=4), parallel_width=1, serial_width=2
    )
    for batch_start in range(0, 6, 3):
        for flit in flits(3):
            pipe.fetch(flit, vc=0)
        pipe.tick(batch_start)
    records = drain(pipe, start=10)
    # queue exceeded the threshold at some point -> serial engaged
    assert pipe.stats.issued_serial > 0


def test_sequence_numbers_monotone_per_vc():
    pipe = TxAdapterPipeline(PerformanceFirstPolicy(), fetch_width=8)
    a = flits(4)
    b = flits(4)
    for fa, fb in zip(a, b):
        pipe.fetch(fa, vc=0)
        pipe.fetch(fb, vc=1)
    records = drain(pipe)
    sns = {0: [], 1: []}
    for _now, record in records:
        sns[record.vc].append(record.sequence_number)
    assert sns[0] == list(range(4))
    assert sns[1] == list(range(4))


def test_priority_waits_for_parallel_and_stalls_pipeline():
    """An application-aware priority flit never takes the serial PHY."""
    pipe = TxAdapterPipeline(
        ApplicationAwarePolicy(), parallel_width=1, serial_width=4, fetch_width=8
    )
    urgent = flits(6, priority=3)
    for flit in urgent:
        pipe.fetch(flit, vc=0)
    records = drain(pipe)
    assert all(record.phy == "P" for _now, record in records)
    # one flit per cycle through the single parallel lane
    cycles = [now for now, _record in records]
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == 6


def test_stats_and_peak_tracking():
    pipe = TxAdapterPipeline(PerformanceFirstPolicy(), fetch_width=6)
    for flit in flits(6):
        pipe.fetch(flit, vc=0)
    drain(pipe)
    assert pipe.stats.fetched == 6
    assert pipe.stats.decoded == 6
    assert pipe.stats.issued_parallel + pipe.stats.issued_serial == 6
    assert pipe.stats.peak_dispatch_queue >= 1


def test_validation():
    with pytest.raises(ValueError):
        TxAdapterPipeline(PerformanceFirstPolicy(), fetch_width=0)
