"""Static verification: CDG modes, livelock bounds, linter, reports.

The positive direction — every registered family verifies cleanly under
virtual cut-through — is the same property ``repro check --all`` gates in
CI.  The negative direction injects known-bad configurations (cyclic
escape routing, ping-pong adaptive routing, undersized reorder buffers,
malformed candidates) and requires the analyses to flag each one.
"""

import pytest

from repro.analysis import (
    MODES,
    Report,
    Severity,
    analyse_livelock,
    build_cdg,
    lint_spec,
    split_candidates,
    verify_all,
    verify_family,
    verify_network,
)
from repro.routing.dimension_order import DimensionOrderRouting
from repro.sim.config import SimConfig
from repro.topology.grid import ChipletGrid
from repro.topology.system import FAMILIES

from .conftest import make_network


# -- positive: every family is clean under the VCT discipline ----------------


def test_family_verifies_clean_vct(family):
    report = verify_family(family)
    assert report.ok, report.render(verbose=True)
    assert report.passes == ["lint", "deadlock", "livelock"]
    assert report.metrics["escape_channels"] > 0
    assert report.metrics["direct_deps"] > 0
    assert report.metrics["max_hops_bound"] > 0
    assert report.metrics["max_misroute"] >= 0


def test_verify_all_covers_every_family():
    reports = verify_all()
    assert [r.system for r in reports] == [
        verify_family(f).system for f in FAMILIES
    ]
    assert all(r.ok for r in reports)


def test_verify_family_rejects_unknown_family_and_mode():
    with pytest.raises(ValueError):
        verify_family("ring_of_rings")
    with pytest.raises(ValueError):
        verify_family("parallel_mesh", mode="store_and_forward")


# -- CDG: direct vs. extended dependencies ------------------------------------


def test_cdg_modes_constant():
    assert MODES == ("vct", "wormhole")


def test_split_candidates_returns_both_classes():
    config = SimConfig()
    _, network, _ = make_network("serial_torus", ChipletGrid(2, 2, 3, 3), config)
    escape, adaptive = split_candidates(network, 0, network.n_nodes - 1)
    assert escape, "adaptive families always offer an escape candidate"
    assert adaptive, "corner-to-corner traffic should see adaptive choices"
    assert all(isinstance(link, int) and isinstance(vc, int) for link, vc in escape)


def test_wormhole_mode_adds_indirect_dependencies():
    config = SimConfig()
    _, network, _ = make_network("serial_torus", ChipletGrid(2, 2, 3, 3), config)
    direct = build_cdg(network, "vct")
    extended = build_cdg(network, "wormhole")
    assert direct.n_indirect == 0
    assert extended.n_indirect > 0
    assert extended.n_direct == direct.n_direct
    assert extended.n_channels == direct.n_channels


def test_adaptive_family_has_extended_cycle_under_wormhole():
    """The paper's escape argument needs VCT: under plain wormhole the
    negative-first escape + minimal adaptive routing acquires an indirect
    dependency cycle (docs/routing.md), which the extended CDG exposes."""
    report = verify_family("serial_torus", mode="wormhole")
    assert not report.ok
    assert "CDG-CYCLE-EXTENDED" in report.codes()
    assert report.metrics["indirect_deps"] > 0


def test_hypercube_family_is_wormhole_clean():
    """Minus-first hypercube routing restricts adaptivity enough that even
    the extended dependency graph stays acyclic."""
    report = verify_family("serial_hypercube", mode="wormhole")
    assert report.ok, report.render(verbose=True)


def test_deterministic_xy_is_wormhole_clean():
    """Escape-only XY routing has no adaptive channels, hence no indirect
    dependencies: it must verify even under the wormhole assumption."""
    config = SimConfig()
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 2, 3, 3), config
    )
    network.set_routing(DimensionOrderRouting(spec))
    report = verify_network(spec, network, mode="wormhole")
    assert report.ok, report.render(verbose=True)
    assert report.metrics["indirect_deps"] == 0


def test_build_cdg_rejects_unknown_mode():
    config = SimConfig()
    _, network, _ = make_network("parallel_mesh", ChipletGrid(2, 1, 2, 2), config)
    with pytest.raises(ValueError):
        build_cdg(network, "cut_through")


# -- negative: deliberately broken routing must be flagged --------------------


def _ring_routing(router, packet):
    """Textbook-deadlocking eastward ring routing on a torus row."""
    if packet.dst == router.node:
        return [(0, 0, True)]
    by_tag = router.out_port_by_tag
    port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
    if port is None:
        port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
    return [(port, 0, True)]


def test_cyclic_escape_routing_is_flagged():
    config = SimConfig()
    spec, network, _ = make_network("serial_torus", ChipletGrid(2, 1, 2, 2), config)
    network.set_routing(_ring_routing)
    report = verify_network(spec, network)
    assert not report.ok
    assert "CDG-CYCLE" in report.codes()


def test_pingpong_adaptive_routing_is_flagged_as_livelock():
    config = SimConfig()
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), config
    )
    grid = spec.grid

    def pingpong(router, packet):
        # Adaptive (non-escape) east/west shuttling: never banned, never
        # progressing -- the routing state graph must contain a cycle.
        if packet.dst == router.node:
            return [(0, 0, True)]
        by_tag = router.out_port_by_tag
        x, _y = grid.coords(router.node)
        direction = "E" if x % 2 == 0 else "W"
        port = by_tag.get(("mesh", direction))
        if port is None:
            port = next(iter(by_tag.values()))
        return [(port, 0, False)]

    network.set_routing(pingpong)
    analysis = analyse_livelock(network)
    assert not analysis.bounded
    assert analysis.cycle
    report = verify_network(spec, network)
    assert "LIVELOCK-CYCLE" in report.codes()
    assert not report.ok


def test_livelock_bound_matches_minimal_routing():
    """Fully minimal families (mesh) never misroute: bound == shortest."""
    report = verify_family("parallel_mesh")
    assert report.metrics["max_misroute"] == 0


def test_misrouting_family_reports_positive_slack():
    """Torus chiplet-first routing detours around wraps: slack > 0."""
    report = verify_family("serial_torus")
    assert report.metrics["max_misroute"] > 0


# -- linter -------------------------------------------------------------------


def test_lint_flags_undersized_rob():
    report = verify_family("hetero_phy_torus", config=SimConfig(rob_capacity=1))
    assert not report.ok
    assert "ROB-UNDERSIZED" in report.codes()


def test_lint_flags_sub_packet_buffers():
    from repro.topology.system import build_system

    config = SimConfig()
    bad = config.replace(onchip_buffer=8)  # < 16-flit packets
    spec = build_system("parallel_mesh", ChipletGrid(2, 1, 2, 2), bad)
    report = Report(system=spec.name)
    lint_spec(spec, report)
    assert "VCT-BUFFER" in report.codes()
    assert not report.ok


def test_lint_flags_malformed_candidates():
    config = SimConfig()
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), config
    )

    def bad_vc_routing(router, packet):
        if packet.dst == router.node:
            return [(0, 0, True)]
        port = next(iter(router.out_port_by_tag.values()))
        return [(port, 99, True)]  # VC 99 does not exist

    network.set_routing(bad_vc_routing)
    report = Report(system=spec.name)
    from repro.analysis import lint_network

    lint_network(spec, network, report)
    assert "CAND-VC" in report.codes()


def test_lint_flags_empty_and_raising_routing():
    config = SimConfig()
    spec, network, _ = make_network(
        "parallel_mesh", ChipletGrid(2, 1, 2, 2), config
    )
    network.set_routing(lambda router, packet: [])
    report = Report(system=spec.name)
    from repro.analysis import lint_network

    lint_network(spec, network, report)
    assert "ROUTE-EMPTY" in report.codes()

    def raising(router, packet):
        raise KeyError("no route")

    network.set_routing(raising)
    report = Report(system=spec.name)
    lint_network(spec, network, report)
    assert "ROUTE-RAISES" in report.codes()


# -- report plumbing ----------------------------------------------------------


def test_report_ok_gates_on_errors_only():
    report = Report(system="unit")
    assert report.ok
    report.info("NOTE", "x", "just a note")
    report.warning("WARN", "y", "a warning")
    assert report.ok
    report.error("BOOM", "z", "an error")
    assert not report.ok
    assert report.codes() == {"NOTE", "WARN", "BOOM"}
    assert [f.severity for f in report.findings] == [
        Severity.INFO,
        Severity.WARNING,
        Severity.ERROR,
    ]


def test_report_render_shows_verdict_and_metrics():
    report = Report(system="unit", mode="wormhole")
    report.metrics["escape_channels"] = 12
    text = report.render()
    assert "PASS" in text and "unit" in text and "wormhole" in text
    assert "escape_channels=12" in text
    report.error("BOOM", "z", "an error")
    assert "FAIL" in report.render()
