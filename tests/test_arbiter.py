"""Tests for arbitration helpers."""

import pytest

from repro.noc.arbiter import RoundRobin, rotate


def test_round_robin_initial_order():
    rr = RoundRobin(4)
    assert list(rr.order()) == [0, 1, 2, 3]


def test_round_robin_grant_rotates_priority():
    rr = RoundRobin(4)
    rr.grant(1)
    assert list(rr.order()) == [2, 3, 0, 1]


def test_round_robin_wraps():
    rr = RoundRobin(3)
    rr.grant(2)
    assert list(rr.order()) == [0, 1, 2]


def test_round_robin_fairness_over_rounds():
    rr = RoundRobin(3)
    winners = []
    for _ in range(9):
        winner = next(iter(rr.order()))
        winners.append(winner)
        rr.grant(winner)
    assert winners == [0, 1, 2] * 3


def test_round_robin_validation():
    with pytest.raises(ValueError):
        RoundRobin(0)
    rr = RoundRobin(2)
    with pytest.raises(ValueError):
        rr.grant(2)


def test_rotate_basic():
    assert rotate([1, 2, 3, 4], 1) == [2, 3, 4, 1]
    assert rotate([1, 2, 3], 0) == [1, 2, 3]


def test_rotate_wraps_start():
    assert rotate([1, 2, 3], 5) == [3, 1, 2]


def test_rotate_empty():
    assert rotate([], 3) == []
