"""Tests for per-packet latency attribution (``repro.telemetry.attribution``).

The load-bearing property is the conservation invariant: every measured
packet's stage cycles sum exactly to its measured latency, across every
interface family and dispatch policy.  The sweep tests below would fail
with an :class:`AttributionError` at the first packet whose timeline
leaks or double-counts a cycle.
"""

import csv
import math

import pytest

from repro.noc.channel import ChannelKind
from repro.noc.flit import Packet
from repro.noc.link import TRAVERSAL_STAGES
from repro.sim.config import SimConfig
from repro.sim.experiment import run_synthetic
from repro.telemetry import (
    EVENT_NAMES,
    STAGES,
    AttributionError,
    LatencyLedger,
    TelemetryConfig,
    render_breakdown,
)
from repro.topology.system import build_system

from .helpers import build_chain, run_cycles


def run_with_ledger(family, grid, *, rate, policy=None, seed=3,
                    cycles=2_000, warmup=200):
    spec = build_system(family, grid, SimConfig(
        sim_cycles=cycles, warmup_cycles=warmup
    ))
    result = run_synthetic(
        spec, "uniform", rate, policy=policy, seed=seed,
        telemetry=TelemetryConfig(latency_breakdown=True),
    )
    return result, result.telemetry.ledger


# -- taxonomy consistency ----------------------------------------------------
def test_link_traversal_stages_match_ledger_taxonomy():
    # Every channel kind maps to a ledger stage (None: hetero-PHY, whose
    # traversal is split into the phy_* / rob stages by the ledger).
    assert set(TRAVERSAL_STAGES) == set(ChannelKind)
    for kind, stage in TRAVERSAL_STAGES.items():
        if kind is ChannelKind.HETERO_PHY:
            assert stage is None
        else:
            assert stage in STAGES
    assert len(set(STAGES)) == len(STAGES)


def test_ledger_subscribes_and_detach_restores_fast_path():
    network, _stats = build_chain(2)
    ledger = LatencyLedger(network)
    subscribed = {
        name for name in EVENT_NAMES
        if getattr(network.telemetry, name) is not None
    }
    assert "route_compute" in subscribed and "vc_alloc" in subscribed
    ledger.detach()
    for name in EVENT_NAMES:
        assert getattr(network.telemetry, name) is None
    ledger.detach()  # idempotent


# -- exact attribution on hand-built chains ----------------------------------
def test_single_packet_onchip_chain_exact_stages():
    network, stats = build_chain(2)
    ledger = LatencyLedger(network)
    network.inject(Packet(0, 1, 4, 0))
    run_cycles(network, 40)
    assert ledger.packets == 1 and ledger.in_flight == 0
    totals = ledger.stage_totals()
    # Idle chain, bandwidth 2: the tail leaves two cycles after creation
    # (switch serialization) and crosses one 1-cycle on-chip channel.
    assert {k: v for k, v in totals.items() if v} == {
        "switch_wait": 2, "link_onchip": 1,
    }
    assert sum(totals.values()) == sum(stats.latencies) == 3
    [(msg_class, profile, stages, total)] = ledger._packets
    assert msg_class == "data" and profile == "onchip"
    assert sum(stages) == total == 3


def test_single_packet_hetero_chain_uses_phy_stages():
    network, stats = build_chain(2, ChannelKind.HETERO_PHY)
    ledger = LatencyLedger(network)
    network.inject(Packet(0, 1, 4, 0))
    run_cycles(network, 80)
    assert ledger.packets == 1
    totals = ledger.stage_totals()
    assert sum(totals.values()) == sum(stats.latencies)
    # Hetero-PHY traversal is decomposed into adapter stages, never the
    # pipelined link_* buckets.
    assert totals["phy_tx_queue"] + totals["phy_parallel"] + totals["phy_serial"] > 0
    assert totals["link_onchip"] == totals["link_parallel"] == totals["link_serial"] == 0
    [(_cls, profile, _stages, _total)] = ledger._packets
    assert profile == "hetero_phy"


def test_single_packet_serial_chain_profile_and_stage():
    network, stats = build_chain(2, ChannelKind.SERIAL)
    ledger = LatencyLedger(network)
    network.inject(Packet(0, 1, 4, 0))
    run_cycles(network, 80)
    totals = ledger.stage_totals()
    assert totals["link_serial"] > 0 and totals["link_onchip"] == 0
    assert sum(totals.values()) == sum(stats.latencies)
    [(_cls, profile, _stages, _total)] = ledger._packets
    assert profile == "serial"


def test_measure_from_excludes_warmup_packets():
    network, _stats = build_chain(2)
    ledger = LatencyLedger(network, measure_from=10)
    network.inject(Packet(0, 1, 4, 0))     # warm-up: ignored entirely
    run_cycles(network, 20)
    network.inject(Packet(0, 1, 4, 20))    # measured
    run_cycles(network, 20, start=20)
    assert ledger.packets == 1
    assert ledger.in_flight == 0


# -- conservation invariant across families and policies ---------------------
@pytest.mark.parametrize("family,policy,rate", [
    ("parallel_mesh", None, 0.05),
    ("parallel_mesh", None, 0.30),
    ("hetero_phy_torus", "performance", 0.05),
    ("hetero_phy_torus", "performance", 0.30),
    ("hetero_phy_torus", "energy_efficient", 0.30),
    ("serial_torus", None, 0.20),
])
def test_conservation_across_families(family, policy, rate, small_grid):
    result, ledger = run_with_ledger(family, small_grid, rate=rate, policy=policy)
    stats = result.stats
    assert ledger.packets == stats.packets_delivered > 0
    # Aggregate conservation: attributed cycles == measured latency cycles.
    assert sum(ledger.stage_totals().values()) == sum(stats.latencies)
    assert ledger.total_cycles == sum(stats.latencies)
    # Per-packet conservation (the eject handler also enforces this live).
    for _cls, _profile, stages, total in ledger._packets:
        assert sum(stages) == total


def test_runresult_breakdown_properties(small_grid):
    result, ledger = run_with_ledger(
        "hetero_phy_torus", small_grid, rate=0.1, policy="performance"
    )
    assert result.stage_totals == ledger.stage_totals()
    breakdown = result.latency_breakdown
    assert breakdown["packets"] == ledger.packets
    assert breakdown["avg_latency"] == pytest.approx(result.avg_latency)
    # Interface-profile grouping covers every measured packet.
    assert sum(
        group["packets"] for group in breakdown["by_interface"].values()
    ) == ledger.packets
    # The session detached the ledger: the bus is back to the fast path.
    for name in EVENT_NAMES:
        assert getattr(result.telemetry.network.telemetry, name) is None


def test_disabled_by_default_attaches_no_ledger(small_grid):
    spec = build_system("parallel_mesh", small_grid, SimConfig(
        sim_cycles=600, warmup_cycles=60
    ))
    result = run_synthetic(spec, "uniform", 0.05, telemetry=TelemetryConfig())
    assert result.telemetry.ledger is None
    assert result.stage_totals is None
    assert result.latency_breakdown is None


def test_ledger_is_a_passive_observer(small_grid):
    # Attaching the ledger must not perturb the simulation: identical
    # seeds produce identical statistics with and without it.
    spec = build_system("hetero_phy_torus", small_grid, SimConfig(
        sim_cycles=1_000, warmup_cycles=100
    ))
    plain = run_synthetic(spec, "uniform", 0.15, policy="performance", seed=5)
    observed = run_synthetic(
        spec, "uniform", 0.15, policy="performance", seed=5,
        telemetry=TelemetryConfig(latency_breakdown=True),
    )
    assert plain.stats.summary() == observed.stats.summary()


# -- invariant violations raise, loudly --------------------------------------
def test_timeline_gap_raises_attribution_error():
    network, _stats = build_chain(2)
    ledger = LatencyLedger(network)
    packet = Packet(0, 1, 1, 0)
    network.telemetry.packet_inject(network, packet)
    with pytest.raises(AttributionError, match="timeline ends at cycle 0"):
        network.telemetry.packet_eject(network.routers[1], packet, 5)
    assert ledger.packets == 0


def test_stage_sum_mismatch_raises_attribution_error():
    network, _stats = build_chain(2)
    ledger = LatencyLedger(network)
    packet = Packet(0, 1, 1, 0)
    network.telemetry.packet_inject(network, packet)
    state = ledger._live[packet.pid]
    state.t_last = 7  # timeline reaches the eject cycle, but no stage does
    with pytest.raises(AttributionError, match="attributed 0 cycles"):
        network.telemetry.packet_eject(network.routers[1], packet, 7)


# -- bottleneck attribution ---------------------------------------------------
def test_bottleneck_tables_rank_congested_links(small_grid):
    result, ledger = run_with_ledger("serial_torus", small_grid, rate=0.30)
    links = ledger.bottleneck_links(top=5)
    assert 0 < len(links) <= 5
    queues = [entry["queue_cycles"] for entry in links]
    assert queues == sorted(queues, reverse=True)
    for entry in links:
        spec = result.telemetry.network.links[entry["link"]].spec
        assert (entry["src"], entry["dst"]) == (spec.src, spec.dst)
        assert entry["kind"] == spec.kind.value
        assert entry["packets"] >= 0 and entry["stall_cycles"] >= 0
    routers = ledger.bottleneck_routers(top=5)
    assert routers and routers[0]["queue_cycles"] >= routers[-1]["queue_cycles"]
    # top=0 means unbounded.
    assert len(ledger.bottleneck_links(top=0)) >= len(links)


def test_bottleneck_queue_cycles_are_covered_by_queueing_stages(small_grid):
    _result, ledger = run_with_ledger(
        "hetero_phy_torus", small_grid, rate=0.30, policy="performance"
    )
    totals = ledger.stage_totals()
    queueing = (
        totals["va_wait"] + totals["credit_stall"] + totals["switch_wait"]
        + totals["ejection"] + totals["phy_tx_queue"] + totals["rob_wait"]
    )
    attributed = sum(
        entry["queue_cycles"] for entry in ledger.bottleneck_links(top=0)
    ) + sum(
        entry["queue_cycles"] for entry in ledger.bottleneck_routers(top=0)
    )
    # Router-side queueing is double-listed (per link AND per router), and
    # ejection-port waits land on routers only — but nothing outside the
    # queueing stages ever reaches a bottleneck table.
    assert attributed <= 2 * queueing
    assert attributed > 0


# -- summary / CSV / rendering ------------------------------------------------
def test_summary_and_record_summary_shape(small_grid):
    _result, ledger = run_with_ledger(
        "hetero_phy_torus", small_grid, rate=0.1, policy="performance"
    )
    summary = ledger.summary()
    assert set(summary) == {
        "packets", "avg_latency", "total_cycles", "stages", "by_class",
        "by_interface", "bottleneck_links", "bottleneck_routers",
    }
    assert set(summary["stages"]) == set(STAGES)
    for cell in summary["stages"].values():
        assert set(cell) == {"total", "share", "mean", "p50", "p95", "p99"}
    shares = sum(cell["share"] for cell in summary["stages"].values())
    assert shares == pytest.approx(1.0)
    record = ledger.record_summary()
    assert set(record) == {"packets", "avg_latency", "stages", "bottleneck_links"}
    assert record["stages"] == summary["stages"]


def test_empty_ledger_summary_is_sane():
    network, _stats = build_chain(2)
    ledger = LatencyLedger(network)
    summary = ledger.summary()
    assert summary["packets"] == 0 and summary["avg_latency"] == 0.0
    assert all(math.isnan(cell["p50"]) for cell in summary["stages"].values())
    assert summary["bottleneck_links"] == []
    text = render_breakdown(summary)
    assert "0 packets" in text


def test_write_csv_scopes_and_columns(tmp_path, small_grid):
    _result, ledger = run_with_ledger(
        "hetero_phy_torus", small_grid, rate=0.1, policy="performance"
    )
    path = ledger.write_csv(tmp_path / "nested" / "breakdown.csv")
    with path.open(newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert rows, "CSV must contain stage rows"
    header = list(rows[0])
    assert header == ["scope", "packets", "stage", "total_cycles", "share",
                      "mean", "p50", "p95", "p99"]
    scopes = {row["scope"] for row in rows}
    assert "all" in scopes
    assert any(scope.startswith("iface:") for scope in scopes)
    all_rows = [row for row in rows if row["scope"] == "all"]
    assert [row["stage"] for row in all_rows] == list(STAGES)
    assert sum(int(row["total_cycles"]) for row in all_rows) == ledger.total_cycles


def test_render_breakdown_text(small_grid):
    _result, ledger = run_with_ledger("serial_torus", small_grid, rate=0.20)
    text = render_breakdown(ledger.summary())
    assert "latency breakdown" in text
    assert "link_serial" in text
    assert "top bottleneck links" in text
    assert "top bottleneck routers" in text
    # Zero stages are hidden unless asked for.
    assert "phy_tx_queue" not in text
    assert "phy_tx_queue" in render_breakdown(ledger.summary(), show_zero=True)
