"""Tests for the perf bench suite and the noise-aware comparison."""

import json
import math

import pytest

from repro.telemetry.bench import (
    BENCH_SCHEMA_VERSION,
    CASES,
    bench_files,
    load_bench,
    next_bench_path,
    render_bench,
    run_bench,
    write_bench,
)
from repro.telemetry.compare import (
    chain_report,
    classify,
    compare_bench,
    compare_chain,
    compare_paths,
    compare_records,
    load_comparable,
    regressions,
    render_chain,
    render_comparison,
)
from .test_runstore import make_record


def make_case(cps_median=5_000.0, cps_iqr=100.0, wall=0.4, events=None):
    return {
        "family": "hetero_phy_torus",
        "cps": {"median": cps_median, "iqr": cps_iqr, "samples": [cps_median]},
        "wall_s": {"median": wall, "iqr": 0.01, "samples": [wall]},
        "events": dict(events or {"flit_send": 1_000, "rob_insert": 50}),
        "stats": {"avg_latency": 25.0},
    }


def make_bench_doc(**cases):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "created": "2026-01-01T00:00:00+00:00",
        "git_rev": "cafef00d",
        "scale": "tiny",
        "reps": 3,
        "seed": 1,
        "cases": cases,
    }


# -- verdict logic -----------------------------------------------------------
def test_classify_noise_within_floor():
    v = classify("c", "m", 100.0, 103.0, higher_is_better=True)
    assert v.verdict == "noise"
    assert v.rel_delta == pytest.approx(0.03)


def test_classify_improved_and_regressed():
    up = classify("c", "cps", 100.0, 120.0, higher_is_better=True)
    down = classify("c", "cps", 100.0, 80.0, higher_is_better=True)
    assert (up.verdict, down.verdict) == ("improved", "regressed")
    # For lower-is-better metrics the directions flip.
    lat_up = classify("c", "latency", 100.0, 120.0, higher_is_better=False)
    assert lat_up.verdict == "regressed"


def test_classify_iqr_widens_threshold():
    # 10% delta: past the 5% floor, but within 1.5x a wide IQR.
    v = classify("c", "m", 100.0, 110.0, higher_is_better=True, iqr=20.0)
    assert v.verdict == "noise"
    assert v.threshold == pytest.approx(30.0)


def test_classify_nan_is_not_applicable():
    v = classify("c", "m", float("nan"), 1.0, higher_is_better=True)
    assert v.verdict == "n/a"
    assert math.isnan(v.threshold)


# -- bench-vs-bench ----------------------------------------------------------
def test_compare_bench_flags_event_drift_not_timing_noise():
    a = make_bench_doc(fig11=make_case(cps_median=5_000.0, cps_iqr=400.0))
    b = make_bench_doc(
        fig11=make_case(
            cps_median=4_800.0,  # within 1.5 * IQR: noise
            cps_iqr=400.0,
            events={"flit_send": 1_200, "rob_insert": 50},  # +20%: real
        )
    )
    verdicts = compare_bench(a, b)
    by_metric = {v.metric: v.verdict for v in verdicts}
    assert by_metric["cycles_per_second"] == "noise"
    assert by_metric["events.flit_send"] == "regressed"
    assert by_metric["events.rob_insert"] == "noise"
    assert [v.metric for v in regressions(verdicts)] == ["events.flit_send"]


def test_compare_bench_skips_non_overlapping_cases():
    a = make_bench_doc(only_in_a=make_case())
    b = make_bench_doc(only_in_b=make_case())
    assert compare_bench(a, b) == []
    assert "no overlapping" in render_comparison([])


def test_render_comparison_table():
    a = make_bench_doc(fig11=make_case(cps_median=5_000.0, cps_iqr=0.0))
    b = make_bench_doc(fig11=make_case(cps_median=6_000.0, cps_iqr=0.0))
    text = render_comparison(compare_bench(a, b), label_a="old", label_b="new")
    assert "cycles_per_second" in text
    assert "+ improved" in text
    assert "regression(s)" in text


def make_mem_block(peak=200_000):
    return {
        "schema_version": 1,
        "top_n": 10,
        "peak_bytes": peak,
        "current_bytes": peak // 2,
        "ru_maxrss_bytes": None,
        "phases": {"other": peak},
        "top_sites": [],
    }


def test_compare_bench_covers_mem_peak():
    a = make_bench_doc(fig11={**make_case(), "mem": make_mem_block(200_000)})
    worse = make_bench_doc(fig11={**make_case(), "mem": make_mem_block(300_000)})
    close = make_bench_doc(fig11={**make_case(), "mem": make_mem_block(210_000)})
    by = {v.metric: v.verdict for v in compare_bench(a, worse)}
    assert by["mem.peak_bytes"] == "regressed"  # +50% past the 10% floor
    by = {v.metric: v.verdict for v in compare_bench(a, close)}
    assert by["mem.peak_bytes"] == "noise"  # +5% inside the floor


def test_compare_bench_pre_mem_artifacts_read_na():
    old = make_bench_doc(fig11=make_case())  # no mem block at all
    new = make_bench_doc(fig11={**make_case(), "mem": make_mem_block()})
    for pair in ((old, new), (new, old), (old, old)):
        [verdict] = [v for v in compare_bench(*pair) if v.metric == "mem.peak_bytes"]
        assert verdict.verdict == "n/a"
        assert math.isnan(verdict.threshold)


# -- N-way chains ------------------------------------------------------------
def _write_chain(tmp_path, *cps_values):
    paths = []
    for index, cps in enumerate(cps_values):
        path = tmp_path / f"BENCH_{index}.json"
        path.write_text(
            json.dumps(make_bench_doc(fig11=make_case(cps_median=cps, cps_iqr=0.0)))
        )
        paths.append(path)
    return paths


def test_compare_chain_adjacent_pairs(tmp_path):
    paths = _write_chain(tmp_path, 5_000.0, 5_050.0, 3_000.0)
    steps = compare_chain(paths)
    assert [(a, b) for a, b, _ in steps] == [
        ("BENCH_0.json", "BENCH_1.json"),
        ("BENCH_1.json", "BENCH_2.json"),
    ]
    first = {v.metric: v.verdict for v in steps[0][2]}
    second = {v.metric: v.verdict for v in steps[1][2]}
    assert first["cycles_per_second"] == "noise"
    assert second["cycles_per_second"] == "regressed"

    text = render_chain(steps)
    assert "step 1/2: BENCH_0.json -> BENCH_1.json" in text
    assert "chain total: 1 regression(s) across 2 step(s)" in text


def test_render_chain_single_step_keeps_two_operand_output(tmp_path):
    paths = _write_chain(tmp_path, 5_000.0, 3_000.0)
    steps = compare_chain(paths)
    [(label_a, label_b, verdicts)] = steps
    assert render_chain(steps) == render_comparison(
        verdicts, label_a=label_a, label_b=label_b
    )
    assert "step 1/1" not in render_chain(steps)


def test_compare_chain_validates_operands(tmp_path):
    with pytest.raises(ValueError, match="at least two"):
        compare_chain([tmp_path / "only.json"])
    [bench] = _write_chain(tmp_path, 5_000.0)
    record_path = tmp_path / "record.json"
    record_path.write_text(json.dumps(make_record().to_dict()))
    with pytest.raises(ValueError, match="mixed kinds"):
        compare_chain([bench, record_path])


def test_chain_report_is_json_safe(tmp_path):
    paths = _write_chain(tmp_path, 5_000.0, 3_000.0, 3_000.0)
    doc = chain_report(compare_chain(paths), gate=["cycles_per_second"])
    assert doc["kind"] == "compare"
    assert doc["regressions"] == 1
    assert [s["regressions"] for s in doc["steps"]] == [1, 0]
    json.dumps(doc)  # NaN-free (n/a verdicts serialize as null)
    metrics = {v["metric"] for v in doc["steps"][0]["verdicts"]}
    assert "mem.peak_bytes" in metrics  # pre-mem docs still report the row


# -- record-vs-record --------------------------------------------------------
def test_compare_records_metrics():
    a = make_record(cycles_per_second=4_000.0, stats={"avg_latency": 20.0})
    b = make_record(cycles_per_second=3_000.0, stats={"avg_latency": 20.2})
    by_metric = {v.metric: v.verdict for v in compare_records(a, b)}
    assert by_metric["cycles_per_second"] == "regressed"
    assert by_metric["stats.avg_latency"] == "noise"
    assert by_metric["stats.avg_energy_pj"] == "n/a"  # absent on both sides


# -- file-level dispatch -----------------------------------------------------
def test_load_comparable_dispatches_on_content(tmp_path):
    bench_path = write_bench(make_bench_doc(fig11=make_case()), tmp_path)
    kind, doc = load_comparable(bench_path)
    assert kind == "bench" and "fig11" in doc["cases"]

    record = make_record()
    record_path = tmp_path / "one.json"
    record_path.write_text(json.dumps(record.to_dict()))
    kind, loaded = load_comparable(record_path)
    assert kind == "record" and loaded == record

    from repro.telemetry.runstore import RunStore

    store = RunStore(tmp_path / "runs")
    store.append(make_record(label="older"))
    store.append(record)
    kind, latest = load_comparable(store.path)
    assert kind == "record" and latest.run_id == record.run_id

    with pytest.raises(FileNotFoundError):
        load_comparable(tmp_path / "nope.json")
    junk = tmp_path / "junk.json"
    junk.write_text('{"neither": true}')
    with pytest.raises(ValueError, match="neither"):
        load_comparable(junk)


def test_compare_paths_rejects_mixed_kinds(tmp_path):
    bench_path = write_bench(make_bench_doc(fig11=make_case()), tmp_path)
    record_path = tmp_path / "one.json"
    record_path.write_text(json.dumps(make_record().to_dict()))
    with pytest.raises(ValueError, match="cannot compare"):
        compare_paths(bench_path, record_path)


# -- BENCH_<n>.json plumbing -------------------------------------------------
def test_bench_files_number_and_sort(tmp_path):
    doc = make_bench_doc(fig11=make_case())
    assert next_bench_path(tmp_path).name == "BENCH_0.json"
    first = write_bench(doc, tmp_path)
    assert first.name == "BENCH_0.json"
    (tmp_path / "BENCH_10.json").write_text(json.dumps(doc))
    second = write_bench(doc, tmp_path)
    assert second.name == "BENCH_11.json"
    (tmp_path / "BENCH_2.json").write_text(json.dumps(doc))
    (tmp_path / "BENCH_baseline.json").write_text(json.dumps(doc))  # no index
    names = [p.name for p in bench_files(tmp_path)]
    assert names == ["BENCH_0.json", "BENCH_2.json", "BENCH_10.json", "BENCH_11.json"]


def test_load_bench_rejects_foreign_schema(tmp_path):
    doc = make_bench_doc(fig11=make_case())
    doc["schema_version"] = BENCH_SCHEMA_VERSION + 1
    path = tmp_path / "BENCH_0.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="not supported"):
        load_bench(path)


# -- the suite itself --------------------------------------------------------
def test_run_bench_single_case_smoke():
    case = CASES[1]  # fig14_hetero_channel: the smallest system of the canon
    doc = run_bench(scale="tiny", reps=1, seed=1, cases=[case], git_rev="cafef00d")
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert doc["git_rev"] == "cafef00d"
    assert list(doc["cases"]) == [case.name]
    measured = doc["cases"][case.name]
    assert measured["cps"]["median"] > 0
    assert len(measured["cps"]["samples"]) == 1  # warm-up rep discarded
    assert measured["events"]["flit_send"] > 0
    assert measured["events"]["packet_inject"] > 0
    # The census tracks the full taxonomy, including the pipeline events
    # added for latency attribution.
    assert measured["events"]["route_compute"] > 0
    assert measured["events"]["vc_alloc"] > 0
    assert math.isfinite(measured["stats"]["avg_latency"])
    assert len(measured["config_hash"]) == 12
    text = render_bench(doc)
    assert case.name in text and "cyc/s" in text


def test_run_bench_validates_arguments():
    with pytest.raises(ValueError, match="scale"):
        run_bench(scale="huge")
    with pytest.raises(ValueError, match="reps"):
        run_bench(reps=0)
