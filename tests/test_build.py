"""Tests for network assembly (sim.build)."""

import pytest

from repro.core.phy import HeteroPhyLink
from repro.core.scheduling import BalancedPolicy, EnergyEfficientPolicy
from repro.noc.channel import ChannelKind
from repro.sim.build import build_network, routing_cost_model
from repro.sim.config import SimConfig
from repro.sim.stats import Stats
from repro.topology.grid import ChipletGrid
from repro.topology.system import build_system

GRID = ChipletGrid(2, 2, 3, 3)


def test_vct_requires_whole_packet_buffers():
    config = SimConfig(packet_length=64)  # larger than the 32-flit buffers
    spec = build_system("parallel_mesh", GRID, config)
    with pytest.raises(ValueError, match="virtual cut-through"):
        build_network(spec, Stats())


def test_interface_buffer_validated_too():
    config = SimConfig(packet_length=48, onchip_buffer=64, interface_buffer=32)
    spec = build_system("parallel_mesh", GRID, config)
    with pytest.raises(ValueError, match="interface buffers"):
        build_network(spec, Stats())


def test_hetero_links_get_adapters():
    spec = build_system("hetero_phy_torus", GRID, SimConfig())
    network = build_network(spec, Stats())
    hetero = [l for l in network.links if isinstance(l, HeteroPhyLink)]
    plain = [l for l in network.links if not isinstance(l, HeteroPhyLink)]
    assert hetero and plain
    assert all(l.spec.kind is ChannelKind.HETERO_PHY for l in hetero)


def test_policy_name_selects_dispatch_policy():
    spec = build_system("hetero_phy_torus", GRID, SimConfig())
    network = build_network(spec, Stats(), policy="energy_efficient")
    link = next(l for l in network.links if isinstance(l, HeteroPhyLink))
    assert isinstance(link.policy, EnergyEfficientPolicy)


def test_dispatch_policy_factory_overrides_name():
    spec = build_system("hetero_phy_torus", GRID, SimConfig())
    network = build_network(
        spec,
        Stats(),
        policy="energy_efficient",
        dispatch_policy_factory=lambda: BalancedPolicy(threshold=3),
    )
    link = next(l for l in network.links if isinstance(l, HeteroPhyLink))
    assert isinstance(link.policy, BalancedPolicy)
    assert link.policy.threshold == 3


def test_each_hetero_link_gets_its_own_policy():
    spec = build_system("hetero_phy_torus", GRID, SimConfig())
    network = build_network(spec, Stats())
    policies = [
        l.policy for l in network.links if isinstance(l, HeteroPhyLink)
    ]
    assert len({id(p) for p in policies}) == len(policies)


def test_rob_capacity_override_plumbs_through():
    config = SimConfig(rob_capacity=99)
    spec = build_system("hetero_phy_torus", GRID, config)
    network = build_network(spec, Stats())
    link = next(l for l in network.links if isinstance(l, HeteroPhyLink))
    assert link.rob.capacity == 99


def test_routing_cost_model_mapping():
    spec = build_system("hetero_phy_torus", GRID, SimConfig())
    perf = routing_cost_model(spec, "balanced")
    assert perf.gamma == 0.0  # balanced dispatch still routes for latency
    energy = routing_cost_model(spec, "energy_efficient")
    assert energy.gamma > 0
    with pytest.raises(ValueError):
        routing_cost_model(spec, "quantum")


def test_exclusive_mode_policies_accepted():
    spec = build_system("hetero_channel", GRID, SimConfig())
    for policy in ("mesh", "cube"):
        network = build_network(spec, Stats(), policy=policy)
        assert network is not None


def test_unknown_policy_rejected():
    spec = build_system("hetero_phy_torus", GRID, SimConfig())
    with pytest.raises(ValueError):
        build_network(spec, Stats(), policy="teleport")
