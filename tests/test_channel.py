"""Unit tests for channel specifications."""

import pytest

from repro.noc.channel import (
    INTERFACE_KINDS,
    KIND_IDS,
    KINDS_BY_ID,
    ChannelKind,
    ChannelSpec,
    PhyParams,
)


def _phy(bw=2, delay=5, energy=1.0) -> PhyParams:
    return PhyParams(bw, delay, energy)


def test_phy_params_validation():
    with pytest.raises(ValueError):
        PhyParams(0, 1, 1.0)
    with pytest.raises(ValueError):
        PhyParams(1, -1, 1.0)


def test_channel_rejects_self_loop():
    with pytest.raises(ValueError):
        ChannelSpec(1, 1, ChannelKind.ONCHIP, _phy())


def test_channel_requires_serial_phy_iff_hetero():
    with pytest.raises(ValueError):
        ChannelSpec(0, 1, ChannelKind.HETERO_PHY, _phy())
    with pytest.raises(ValueError):
        ChannelSpec(0, 1, ChannelKind.PARALLEL, _phy(), serial_phy=_phy())


def test_channel_vc_and_buffer_validation():
    with pytest.raises(ValueError):
        ChannelSpec(0, 1, ChannelKind.ONCHIP, _phy(), n_vcs=0)
    with pytest.raises(ValueError):
        ChannelSpec(0, 1, ChannelKind.ONCHIP, _phy(), buffer_depth=0)


def test_interface_classification():
    onchip = ChannelSpec(0, 1, ChannelKind.ONCHIP, _phy())
    parallel = ChannelSpec(0, 1, ChannelKind.PARALLEL, _phy())
    assert not onchip.is_interface
    assert parallel.is_interface
    assert ChannelKind.ONCHIP not in INTERFACE_KINDS
    assert ChannelKind.HETERO_PHY in INTERFACE_KINDS


def test_hetero_aggregates_bandwidth_and_delays():
    spec = ChannelSpec(
        0,
        1,
        ChannelKind.HETERO_PHY,
        _phy(bw=2, delay=5),
        serial_phy=_phy(bw=4, delay=20, energy=2.4),
    )
    assert spec.total_bandwidth == 6
    assert spec.min_delay == 5
    assert spec.max_delay == 20


def test_plain_channel_bandwidth_and_delays():
    spec = ChannelSpec(0, 1, ChannelKind.SERIAL, _phy(bw=4, delay=20))
    assert spec.total_bandwidth == 4
    assert spec.min_delay == spec.max_delay == 20


def test_kind_ids_bijective():
    assert sorted(KIND_IDS.values()) == list(range(len(ChannelKind)))
    for kind, kid in KIND_IDS.items():
        assert KINDS_BY_ID[kid] is kind


def test_tag_defaults_none():
    spec = ChannelSpec(0, 1, ChannelKind.ONCHIP, _phy())
    assert spec.tag is None
