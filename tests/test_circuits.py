"""Tests for the behavioural circuit models and the synthesis estimator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.fifo import MultiWidthFifo, PortBudgetError
from repro.circuits.reorder_rx import RxReorderFifo
from repro.circuits.synthesis import (
    TABLE4_PAPER,
    synthesize_adapter_rx,
    synthesize_adapter_tx,
    synthesize_hetero_router,
    synthesize_router,
    table4,
)

# -- multi-width FIFO ------------------------------------------------------


def test_fifo_order_preserved():
    fifo = MultiWidthFifo(depth=16, read_ports=3, write_ports=3)
    fifo.push("a")
    fifo.push("b")
    fifo.push("c")
    assert [fifo.pop(), fifo.pop(), fifo.pop()] == ["a", "b", "c"]


def test_fifo_port_budget_enforced():
    fifo = MultiWidthFifo(depth=16, read_ports=2, write_ports=2)
    fifo.push(1)
    fifo.push(2)
    with pytest.raises(PortBudgetError):
        fifo.push(3)
    fifo.tick()
    fifo.push(3)  # budget refreshed


def test_fifo_overflow_and_underflow():
    fifo = MultiWidthFifo(depth=2, read_ports=3, write_ports=3)
    fifo.push(1)
    fifo.push(2)
    with pytest.raises(OverflowError):
        fifo.push(3)
    fifo.pop()
    fifo.pop()
    with pytest.raises(IndexError):
        fifo.pop()


def test_fifo_half_full_threshold():
    fifo = MultiWidthFifo(depth=4)
    assert not fifo.half_full
    fifo.push(1)
    fifo.push(2)
    assert fifo.half_full


def test_balanced_read_count_rule():
    """Sec 7.3: half-full -> read 3 flits (1 parallel + 2 serial), else 1."""
    fifo = MultiWidthFifo(depth=16, read_ports=3, write_ports=3)
    for i in range(3):
        fifo.push(i)
    assert fifo.balanced_read_count() == 1  # below threshold
    fifo.tick()
    for i in range(5):
        fifo.push(i) if i < 3 else None
    fifo.tick()
    while fifo.occupancy < 8:
        fifo.push(0)
        fifo.tick()
    assert fifo.half_full
    assert fifo.balanced_read_count() == 3


def test_fifo_front_peek():
    fifo = MultiWidthFifo()
    fifo.push("x")
    assert fifo.front() == "x"
    assert fifo.occupancy == 1
    with pytest.raises(IndexError):
        MultiWidthFifo().front()


@given(st.lists(st.integers(), min_size=1, max_size=40))
def test_fifo_property_order(items):
    fifo = MultiWidthFifo(depth=64, read_ports=64, write_ports=64)
    for item in items:
        fifo.push(item)
    out = [fifo.pop() for _ in items]
    assert out == items
    assert fifo.max_occupancy == len(items)


# -- RX reorder stage ---------------------------------------------------------


def test_rx_reorder_in_order():
    rx = RxReorderFifo(depth=16)
    rx.push_parallel(0, "p0", now=0)
    rx.push_serial(1, "s1", now=0)
    assert rx.pop_ready(now=0) is None  # one-cycle forwarding delay
    assert rx.pop_ready(now=1) == "p0"
    assert rx.pop_ready(now=1) == "s1"
    assert rx.pop_ready(now=1) is None


def test_rx_reorder_waits_for_gap():
    rx = RxReorderFifo()
    rx.push_parallel(1, "p1", now=0)
    assert rx.pop_ready(now=5) is None  # SN 0 missing
    rx.push_serial(0, "s0", now=5)
    assert rx.pop_ready(now=6) == "s0"
    assert rx.pop_ready(now=6) == "p1"
    assert rx.expected_sn == 2


def test_rx_reorder_rejects_duplicates_and_stale():
    rx = RxReorderFifo()
    rx.push_parallel(0, "a", now=0)
    with pytest.raises(ValueError):
        rx.push_serial(0, "b", now=0)
    assert rx.pop_ready(now=1) == "a"
    with pytest.raises(ValueError):
        rx.push_parallel(0, "late", now=2)


def test_rx_reorder_overflow():
    rx = RxReorderFifo(depth=2)
    rx.push_parallel(1, "x", now=0)
    rx.push_parallel(2, "y", now=0)
    with pytest.raises(OverflowError):
        rx.push_parallel(3, "z", now=0)


@given(st.permutations(list(range(10))))
def test_rx_reorder_property(order):
    rx = RxReorderFifo(depth=10)
    out = []
    now = 0
    for sn in order:
        rx.push_parallel(sn, sn, now)
        now += 1
        while (item := rx.pop_ready(now)) is not None:
            out.append(item)
    now += 1
    while (item := rx.pop_ready(now)) is not None:
        out.append(item)
    assert out == list(range(10))


# -- synthesis estimator --------------------------------------------------------


@pytest.mark.parametrize("name", sorted(TABLE4_PAPER))
def test_estimates_close_to_paper(name):
    result = table4()[name]
    paper = TABLE4_PAPER[name]
    assert result.area_um2 == pytest.approx(paper["area_um2"], rel=0.15)
    assert result.power_mw == pytest.approx(paper["power_mw"], rel=0.15)
    assert result.critical_path_ns == pytest.approx(
        paper["critical_path_ns"], rel=0.15
    )


def test_hetero_router_overhead_ratios():
    """The paper's headline overheads: +45% area, +33% power (Sec 8.2)."""
    regular = synthesize_router()
    hetero = synthesize_hetero_router()
    assert hetero.area_um2 / regular.area_um2 == pytest.approx(1.45, abs=0.08)
    assert hetero.power_mw / regular.power_mw == pytest.approx(1.33, abs=0.08)
    # frequency barely affected (paper: 1.20 -> 1.16 GHz)
    assert hetero.fmax_ghz < regular.fmax_ghz
    assert hetero.fmax_ghz / regular.fmax_ghz > 0.9


def test_area_scales_with_structure():
    small = synthesize_router(radix=5, buffer_depth=4)
    large = synthesize_router(radix=5, buffer_depth=16)
    assert large.area_um2 > small.area_um2
    wider = synthesize_adapter_tx(ports=6)
    assert wider.area_um2 > synthesize_adapter_tx(ports=3).area_um2


def test_adapter_energy_per_bit_order_of_magnitude():
    """Paper reports ~3.2-3.3 fJ/bit for the adapters."""
    rx = synthesize_adapter_rx()
    assert 1.0 < rx.energy_fj_per_bit < 10.0


def test_router_validation():
    with pytest.raises(ValueError):
        synthesize_router(radix=1)
