"""Tests for the command-line interface."""

import json
import re

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig11", "table3", "table4", "fig18"):
        assert name in out


def test_run_table4(capsys):
    assert main(["run", "table4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "hetero_router" in out
    assert "paper" in out


def test_run_csv_output(capsys):
    assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("interface,")
    assert "SerDes" in out


def test_run_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_simulate_smoke(capsys):
    code = main(
        [
            "simulate",
            "--family",
            "hetero_phy_torus",
            "--chiplets",
            "2x2",
            "--nodes",
            "3x3",
            "--cycles",
            "1500",
            "--rate",
            "0.1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "avg_latency" in out
    assert "hetero-phy-torus-2x2(3x3)" in out


def test_simulate_bad_geometry():
    with pytest.raises(SystemExit):
        main(["simulate", "--chiplets", "four-by-four"])


SIM_ARGS = [
    "simulate",
    "--family",
    "hetero_phy_torus",
    "--chiplets",
    "2x2",
    "--nodes",
    "3x3",
    "--cycles",
    "1500",
    "--rate",
    "0.1",
]


def test_simulate_integer_counters_print_as_integers(capsys):
    assert main(SIM_ARGS) == 0
    out = capsys.readouterr().out
    match = re.search(r"packets_delivered\s*: (\S+)", out)
    assert match, out
    assert re.fullmatch(r"\d+", match.group(1)), "counter printed as float"
    assert re.search(r"avg_latency\s*: \d+\.\d{3}", out)


def test_simulate_seed_is_plumbed_and_reproducible(capsys):
    assert main([*SIM_ARGS, "--seed", "11"]) == 0
    first = capsys.readouterr().out
    assert "seed     : 11" in first
    assert main([*SIM_ARGS, "--seed", "11"]) == 0
    assert capsys.readouterr().out == first
    assert main([*SIM_ARGS, "--seed", "12"]) == 0
    other = capsys.readouterr().out
    assert other != first


def test_simulate_telemetry_flags(tmp_path, capsys):
    metrics_dir = tmp_path / "metrics"
    trace_path = tmp_path / "trace.json"
    code = main(
        [
            *SIM_ARGS,
            "--seed",
            "7",
            "--epoch",
            "300",
            "--metrics",
            str(metrics_dir),
            "--trace",
            str(trace_path),
            "--profile",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert (metrics_dir / "epochs.csv").is_file()
    assert (metrics_dir / "metrics.json").is_file()
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    assert out.count("wrote ") >= 8  # 7 metric files + the trace
    assert "function calls" in out  # cProfile report printed


def test_check_single_family_passes(capsys):
    assert main(["check", "--family", "parallel_mesh"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "parallel-mesh-2x2(3x3)" in out


def test_check_all_families_pass(capsys):
    assert main(["check", "--all"]) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == 5
    assert "FAIL" not in out


def test_check_wormhole_mode_flags_adaptive_family(capsys):
    assert main(["check", "--family", "serial_torus", "--mode", "wormhole"]) == 1
    out = capsys.readouterr().out
    assert "CDG-CYCLE-EXTENDED" in out
    assert "FAILED verification" in out


def test_check_wormhole_mode_passes_hypercube(capsys):
    assert main(["check", "--family", "serial_hypercube", "--mode", "wormhole"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_check_exits_nonzero_on_injected_cycle(capsys, monkeypatch):
    """Replace the routing factory with a deadlocking ring: the genuine
    `repro check` path must report the cycle and exit 1."""

    def ring_factory(spec, **_kwargs):
        def ring_routing(router, packet):
            if packet.dst == router.node:
                return [(0, 0, True)]
            by_tag = router.out_port_by_tag
            port = by_tag.get(("mesh", "E"), by_tag.get(("wrap", "E")))
            if port is None:
                port = by_tag.get(("mesh", "N"), by_tag.get(("mesh", "S")))
            return [(port, 0, True)]

        return ring_routing

    monkeypatch.setattr("repro.sim.build.make_routing", ring_factory)
    assert main(["check", "--family", "serial_torus"]) == 1
    out = capsys.readouterr().out
    assert "CDG-CYCLE" in out
    assert "FAIL" in out


def test_check_requires_family_or_all():
    with pytest.raises(SystemExit):
        main(["check"])
